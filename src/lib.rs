//! Kaleidoscope — a crowdsourcing testing tool for Web Quality of Experience.
//!
//! This facade crate re-exports the whole workspace under one roof. See the
//! individual crates for details:
//!
//! * [`core`] — the paper's contribution: test parameters, aggregator,
//!   quality control, analysis, and the campaign orchestrator.
//! * [`html`] / [`singlefile`] / [`pageload`] — the web substrate: DOM,
//!   single-file compression, and page-load replay with visual metrics.
//! * [`store`] / [`server`] — persistence (document DB + file store) and the
//!   HTTP core server.
//! * [`crowd`] / [`browser`] — the simulated crowdsourcing platform and the
//!   virtual browser/extension testers run in.
//! * [`stats`] — significance tests, ECDFs, and ranking aggregation.
//! * [`abtest`] — the live-site A/B testing baseline Kaleidoscope is
//!   compared against.
//! * [`telemetry`] — lock-free metrics (counters, gauges, latency
//!   histograms) and the structured-event ring behind `GET /metrics`,
//!   `GET /healthz`, and `kscope snapshot`.

#![forbid(unsafe_code)]

pub use kscope_abtest as abtest;
pub use kscope_browser as browser;
pub use kscope_core as core;
pub use kscope_crowd as crowd;
pub use kscope_html as html;
pub use kscope_pageload as pageload;
pub use kscope_server as server;
pub use kscope_singlefile as singlefile;
pub use kscope_stats as stats;
pub use kscope_store as store;
pub use kscope_telemetry as telemetry;
