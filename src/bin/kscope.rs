//! The `kscope` command-line tool: validate test parameters, prepare tests
//! from saved webpage folders, run simulated campaigns, and serve the core
//! server — the operational surface a Web developer would actually touch.
//!
//! ```text
//! kscope validate params.json
//! kscope prepare params.json --pages ./saved-pages --out ./kscope-data
//! kscope demo font --participants 60 --seed 7
//! kscope serve --data ./kscope-data --addr 127.0.0.1:8080
//! ```

use kaleidoscope::core::corpus;
use kaleidoscope::core::supervisor::{CampaignSupervisor, SupervisorConfig, SupervisorHook};
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind, TestParams};
use kaleidoscope::crowd::faults::FaultModel;
use kaleidoscope::crowd::platform::{Channel, JobSpec, Platform};
use kaleidoscope::server::api::CoreServerApi;
use kaleidoscope::server::HttpServer;
use kaleidoscope::singlefile::ResourceStore;
use kaleidoscope::store::{
    spawn_compactor, CompactionConfig, Database, GridStore, DEFAULT_COMPACT_WAL_BYTES,
};
use kscope_telemetry::Registry;
use rand::{rngs::StdRng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("init") => cmd_init(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("prepare") => cmd_prepare(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try `kscope help`)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn print_usage() {
    println!(
        "kscope — crowdsourced Web-QoE testing (Kaleidoscope reproduction)\n\n\
         USAGE:\n  \
         kscope init [--versions N] [--participants N] [--out params.json] [--sample-pages <dir>]\n  \
         kscope validate <params.json>\n  \
         kscope prepare <params.json> --pages <dir> --out <dir> [--seed N] [--threads N]\n  \
         kscope demo <font|expand|uplt|ads> [--participants N] [--seed N] [--in-lab] [--json]\n  \
         kscope snapshot <font|expand|uplt|ads> [--participants N] [--seed N] [--in-lab]\n  \
         kscope serve --data <dir> [--addr HOST:PORT] [--workers N] [--shards N]\n         \
                      [--scan-poller] [--checkpoint-secs N] [--group-commit-us N]\n         \
                      [--compact-wal-bytes N] [--resume]\n\n\
         `demo`/`snapshot` supervision options (fault-tolerant campaign):\n  \
         --supervised              lease sessions, recover abandonment, refill quota\n  \
         --abandon R               total abandonment probability (default 0.2)\n  \
         --duplicate R             duplicate-upload probability (default 0.1)\n  \
         --straggler R             never-returning probability (default abandon/5)\n  \
         --target-kept N           QC-kept sessions to aim for (default participants/2)\n  \
         --deadline-hours H        campaign deadline in virtual hours\n  \
         --budget USD              hard spend cap (payments + fees)\n  \
         --reward-escalation X     reward multiplier per refill round (default 1.15)\n\n\
         crash-only campaign options (require --supervised):\n  \
         --data <dir>              run against a durable database in <dir>; the\n                            \
         campaign ledger and every session survive kill -9\n  \
         --resume                  resume the interrupted campaign recorded in the\n                            \
         ledger at --data (same seed, identical outcome)\n\n\
         `snapshot` runs a demo with telemetry attached and prints the\n\
         metric registry (counters, gauges, latency quantiles, events).\n\
         `serve` exposes the same registry at GET /metrics (Prometheus\n\
         text format) and GET /healthz.\n"
    );
}

/// Reads `--flag value` style options.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Generates a Table-I parameter template — the paper's "Web interface to
/// help users generate such format test parameters", as a CLI.
fn cmd_init(args: &[String]) -> CliResult {
    let versions: usize = opt(args, "--versions").unwrap_or("2").parse()?;
    if versions < 2 {
        return Err("a comparison test needs at least two versions".into());
    }
    let participants: usize = opt(args, "--participants").unwrap_or("100").parse()?;
    let out = opt(args, "--out").unwrap_or("params.json");
    // --sample-pages writes the paper's font-size study (five versions of
    // the same article) to disk along with a matching params file, giving
    // a corpus that `kscope prepare` can run on immediately.
    if let Some(dir) = opt(args, "--sample-pages") {
        let (store, params) = kaleidoscope::core::corpus::font_size_study(participants);
        let root = Path::new(dir);
        for path in store.paths().map(str::to_string).collect::<Vec<_>>() {
            let resource = store.get(&path).expect("listed path resolves");
            let file = root.join(&path);
            if let Some(parent) = file.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(file, &resource.data)?;
        }
        std::fs::write(out, params.to_json())?;
        println!(
            "wrote the font-size-study sample ({} resources) to {dir} and its params to {out}",
            store.len()
        );
        println!("next: kscope prepare {out} --pages {dir} --out ./kscope-data");
        return Ok(());
    }
    let webpages: Vec<kaleidoscope::core::WebpageSpec> = (0..versions)
        .map(|i| {
            kaleidoscope::core::WebpageSpec::new(&format!("pages/version-{i}"), "index.html", 3000)
                .with_description(&format!("describe version {i} here"))
        })
        .collect();
    let params =
        TestParams::new("my-test", participants, vec!["Which version do you prefer?"], webpages);
    std::fs::write(out, params.to_json())?;
    println!("wrote a template for {versions} versions and {participants} participants to {out}");
    println!("edit the test_id, question, and web_path fields, then:");
    println!("  kscope validate {out}");
    println!("  kscope prepare {out} --pages <dir-with-saved-pages> --out ./kscope-data");
    Ok(())
}

fn cmd_validate(args: &[String]) -> CliResult {
    let path = args.first().ok_or("usage: kscope validate <params.json>")?;
    let json = std::fs::read_to_string(path)?;
    let params = TestParams::from_json(&json)?;
    println!("OK: test '{}' is valid", params.test_id);
    println!("  versions:          {}", params.webpage_num);
    println!("  integrated pages:  {} (C(N,2))", params.integrated_page_count());
    println!("  questions:         {}", params.question.len());
    println!("  participants:      {}", params.participant_num);
    for (i, w) in params.webpages.iter().enumerate() {
        println!(
            "  webpage {i}: {} ({}), load = {}",
            w.web_path,
            if w.web_description.is_empty() { "no description" } else { &w.web_description },
            w.load_spec().expect("validated")
        );
    }
    Ok(())
}

/// Loads a directory tree into a [`ResourceStore`], guessing MIME types
/// from extensions, exactly the shape of a "save page as" folder.
fn load_pages_dir(root: &Path) -> std::io::Result<ResourceStore> {
    fn walk(store: &mut ResourceStore, root: &Path, dir: &Path) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                walk(store, root, &path)?;
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("walked paths live under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                let mime = kaleidoscope::singlefile::store::guess_mime(&rel);
                store.insert(&rel, mime, std::fs::read(&path)?);
            }
        }
        Ok(())
    }
    let mut store = ResourceStore::new();
    walk(&mut store, root, root)?;
    Ok(store)
}

fn cmd_prepare(args: &[String]) -> CliResult {
    let params_path =
        args.first().ok_or("usage: kscope prepare <params.json> --pages <dir> --out <dir>")?;
    let pages_dir = opt(args, "--pages").ok_or("--pages <dir> is required")?;
    let out_dir = opt(args, "--out").ok_or("--out <dir> is required")?;
    let seed: u64 = opt(args, "--seed").unwrap_or("0").parse()?;
    // 0 = machine default. Artifacts are byte-identical for any value.
    let threads: usize = opt(args, "--threads").unwrap_or("0").parse()?;

    let params = TestParams::from_json(&std::fs::read_to_string(params_path)?)?;
    let store = load_pages_dir(Path::new(pages_dir))?;
    println!("loaded {} resources ({} bytes) from {pages_dir}", store.len(), store.total_bytes());

    // Prepare straight into a durable database: every insert is
    // WAL-logged, and the final checkpoint leaves a clean snapshot.
    // `prepare` *replaces* any previous dataset at --out — clear the
    // database directory first, or the durable open would import the old
    // checkpoint/WAL and merge the new run on top of it.
    let out = PathBuf::from(out_dir);
    let db_dir = out.join("db");
    if db_dir.exists() {
        std::fs::remove_dir_all(&db_dir)?;
    }
    let (db, _report) = Database::open_durable(&db_dir)?;
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let aggregator = Aggregator::new(db.clone(), grid.clone()).with_threads(threads);
    let prepared = aggregator.prepare(&params, &store, &mut rng)?;
    println!(
        "prepared test '{}': {} integrated pages ({} real pairs + 2 control) on {} threads",
        prepared.test_id,
        prepared.pages.len(),
        prepared.real_pairs().len(),
        aggregator.threads()
    );
    let cache = aggregator.cache().stats();
    println!(
        "asset cache: {} unique blobs, {} hits / {} misses ({:.0}% hit ratio), {} bytes spared",
        cache.entries,
        cache.hits,
        cache.misses,
        100.0 * cache.hit_ratio(),
        cache.saved_bytes
    );

    let stats = db.checkpoint()?;
    grid.save_to_dir(&out.join("files"))?;
    println!("stored database ({stats}) and page files under {out_dir}");
    println!("next: kscope serve --data {out_dir}");
    Ok(())
}

fn cmd_demo(args: &[String]) -> CliResult {
    run_demo(args, None)
}

/// Runs a demo campaign with telemetry attached, then prints the
/// human-readable registry snapshot — operation counts, latency quantiles,
/// campaign progress, quality-control accounting, and recent events.
fn cmd_snapshot(args: &[String]) -> CliResult {
    let registry = Arc::new(Registry::new());
    run_demo(args, Some(Arc::clone(&registry)))?;
    println!("\n=== telemetry snapshot ===");
    print!("{}", registry.render_human());
    Ok(())
}

fn run_demo(args: &[String], telemetry: Option<Arc<Registry>>) -> CliResult {
    let which = args.first().map(String::as_str).unwrap_or("font");
    let participants: usize = opt(args, "--participants").unwrap_or("60").parse()?;
    let seed: u64 = opt(args, "--seed").unwrap_or("42").parse()?;
    let in_lab = has_flag(args, "--in-lab");

    let (store, params, kinds): (_, _, Vec<(&str, QuestionKind)>) = match which {
        "font" => {
            let (s, p) = corpus::font_size_study(participants);
            (
                s,
                p,
                vec![(
                    "Which webpage's font size is more suitable (easier) for reading?",
                    QuestionKind::FontReadability,
                )],
            )
        }
        "expand" => {
            let (s, p) = corpus::expand_button_study(participants);
            (
                s,
                p,
                vec![
                    ("Which webpage is graphically more appealing?", QuestionKind::Appeal),
                    (
                        "Which version of the 'Expand' button looks better?",
                        QuestionKind::StyleBetter,
                    ),
                    (
                        "Which version of the 'Expand' button is more visible?",
                        QuestionKind::Visibility,
                    ),
                ],
            )
        }
        "uplt" => {
            let (s, p) = corpus::uplt_case_study(participants);
            (
                s,
                p,
                vec![(
                    "Which version of the webpage seems ready to use first?",
                    QuestionKind::ReadyToUse,
                )],
            )
        }
        "ads" => {
            let (s, p) = corpus::ads_study(participants);
            (s, p, vec![("Which webpage is more pleasant to read?", QuestionKind::AdClutter)])
        }
        other => return Err(format!("unknown demo '{other}' (font|expand|uplt|ads)").into()),
    };

    // Crash-only mode: --data runs the supervised campaign against a
    // durable database so a kill -9 at any instant loses nothing, and
    // --resume restarts the interrupted campaign from its ledger.
    let durable_dir = opt(args, "--data").map(PathBuf::from);
    let resume = has_flag(args, "--resume");
    if (durable_dir.is_some() || resume) && !has_flag(args, "--supervised") {
        return Err("--data/--resume drive crash-only campaigns; add --supervised".into());
    }
    if resume && durable_dir.is_none() {
        return Err("--resume needs --data <dir> — the ledger lives in the durable database".into());
    }

    // In durable mode the aggregator prepares into a scratch in-memory
    // database: page rows are derivable artifacts, and re-preparing on
    // every (re)start against the durable store would duplicate them.
    let (mut db, prep_db) = match &durable_dir {
        Some(dir) => {
            let (db, report) = Database::open_durable(dir)?;
            println!(
                "KSCOPE-RECOVERY clean={} checkpoint_seq={} replayed_records={} \
                 dropped_records={}",
                report.clean(),
                report.checkpoint_seq,
                report.replayed_records,
                report.dropped_records
            );
            (db, Database::new())
        }
        None => {
            let db = Database::new();
            (db.clone(), db)
        }
    };
    if let Some(registry) = &telemetry {
        db = db.with_telemetry(registry);
    }
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aggregator = Aggregator::new(prep_db, grid.clone());
    if let Some(registry) = &telemetry {
        aggregator = aggregator.with_telemetry(Arc::clone(registry));
    }
    let prepared = aggregator.prepare(&params, &store, &mut rng)?;

    if has_flag(args, "--supervised") {
        if in_lab {
            return Err("--supervised applies to platform recruitment, not --in-lab".into());
        }
        let mut campaign = Campaign::new(db.clone(), grid.clone());
        if let Some(registry) = &telemetry {
            campaign = campaign.with_telemetry(Arc::clone(registry));
        }
        for (q, k) in &kinds {
            campaign = campaign.with_question(q, *k);
        }
        let abandon: f64 = opt(args, "--abandon").unwrap_or("0.2").parse()?;
        let duplicate: f64 = opt(args, "--duplicate").unwrap_or("0.1").parse()?;
        let straggler: f64 = match opt(args, "--straggler") {
            Some(v) => v.parse()?,
            None => abandon * 0.2,
        };
        let faults = FaultModel {
            abandon_mid_page: abandon * 0.5,
            abandon_mid_questionnaire: abandon * 0.3,
            straggler,
            skip_question: 0.02,
            disconnect_retry: duplicate,
            duplicate_upload: 1.0,
        };
        let target_kept: usize = match opt(args, "--target-kept") {
            Some(v) => v.parse()?,
            None => (participants / 2).max(1),
        };
        let mut config = SupervisorConfig::new(target_kept);
        config.reward_escalation = opt(args, "--reward-escalation").unwrap_or("1.15").parse()?;
        if let Some(h) = opt(args, "--deadline-hours") {
            config.deadline_ms = Some((h.parse::<f64>()? * 3.6e6).round() as u64);
        }
        if let Some(b) = opt(args, "--budget") {
            config.budget_cap_usd = Some(b.parse()?);
        }
        let spec =
            JobSpec::new(&params.test_id, 0.11, participants, Channel::HistoricallyTrustworthy);
        let mut sup = CampaignSupervisor::new(&campaign, config).with_faults(faults);
        if durable_dir.is_some() {
            if let Some(doc) = CampaignSupervisor::ledger(&db, &params.test_id) {
                println!(
                    "KSCOPE-LEDGER test={} state={} rounds_completed={} resumed_count={}",
                    params.test_id,
                    doc.get("state").and_then(serde_json::Value::as_str).unwrap_or("?"),
                    doc.get("rounds_completed").and_then(serde_json::Value::as_u64).unwrap_or(0),
                    doc.get("resumed_count").and_then(serde_json::Value::as_u64).unwrap_or(0)
                );
            }
            // Beacons give the process-chaos harness deterministic kill
            // instants. The sweep checkpoint only bounds WAL replay time —
            // the WAL alone already makes every instant crash-safe.
            let beacon_db = db.clone();
            let hook: SupervisorHook = Arc::new(move |phase: &str, n: u64| {
                println!("KSCOPE-BEACON phase={phase} n={n}");
                let _ = std::io::Write::flush(&mut std::io::stdout());
                if phase == "sweep" && beacon_db.checkpoint().is_ok() {
                    println!("KSCOPE-BEACON phase=checkpoint n={n}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                }
            });
            sup = sup.with_hook(hook);
        }
        let supervised = if resume {
            sup.resume(&params, &prepared, &spec)?
        } else if durable_dir.is_some() {
            sup.run_durable(&params, &prepared, &spec, seed)?
        } else {
            sup.run(&params, &prepared, &spec, &mut rng)?
        };
        if durable_dir.is_some() {
            db.checkpoint()?;
        }

        if has_flag(args, "--json") {
            let mut report = supervised.outcome.to_report_json(&params.question);
            if let Some(obj) = report.as_object_mut() {
                obj.insert("health".to_string(), supervised.health.to_json());
            }
            println!("{}", serde_json::to_string_pretty(&report)?);
            return Ok(());
        }
        println!("{}", supervised.health);
        if supervised.health.deadline_hit {
            println!("  !! campaign deadline hit — concluded with partial results");
        }
        if supervised.health.budget_hit {
            println!("  !! budget cap hit — refill stopped, concluded with partial results");
        }
        if supervised.health.rounds_exhausted {
            println!("  !! refill rounds exhausted — concluded with partial results");
        }
        for q in &params.question {
            let qa = supervised.outcome.question_analysis(q.text(), true);
            match qa.two_version_votes() {
                Some(v) => {
                    let (a, same, b) = v.percentages();
                    println!(
                        "  {:<58} A {a:.0}% / Same {same:.0}% / B {b:.0}%  (p = {:.2e})",
                        q.text(),
                        v.significance().p_value
                    );
                }
                None => {
                    println!("  {:<58} ranking: {:?}", q.text(), qa.ranking());
                }
            }
        }
        return Ok(());
    }

    let recruitment = if in_lab {
        kaleidoscope::crowd::platform::InLabRecruiter::new(participants, 7.0).recruit(&mut rng)
    } else {
        Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, participants, Channel::HistoricallyTrustworthy),
            &mut rng,
        )
    };
    let mut campaign = Campaign::new(db, grid);
    if let Some(registry) = &telemetry {
        campaign = campaign.with_telemetry(Arc::clone(registry));
    }
    for (q, k) in &kinds {
        campaign = campaign.with_question(q, *k);
    }
    if in_lab {
        campaign = campaign.in_lab();
    }
    let outcome = campaign.run(&params, &prepared, &recruitment, &mut rng)?;

    if has_flag(args, "--json") {
        let report = outcome.to_report_json(&params.question);
        println!("{}", serde_json::to_string_pretty(&report)?);
        return Ok(());
    }
    println!(
        "demo '{which}': {} sessions, {} kept after quality control, cost ${:.2}, {:.1} h wall time",
        outcome.sessions.len(),
        outcome.quality.kept.len(),
        outcome.cost.total_usd(),
        outcome.duration_ms() as f64 / 3.6e6
    );
    for q in &params.question {
        let qa = outcome.question_analysis(q.text(), true);
        match qa.two_version_votes() {
            Some(v) => {
                let (a, same, b) = v.percentages();
                println!(
                    "  {:<58} A {a:.0}% / Same {same:.0}% / B {b:.0}%  (p = {:.2e})",
                    q.text(),
                    v.significance().p_value
                );
            }
            None => {
                println!("  {:<58} ranking: {:?}", q.text(), qa.ranking());
            }
        }
    }
    Ok(())
}

/// Set by the SIGINT/SIGTERM handler; the serve loop polls it so Ctrl-C
/// drains in-flight requests and takes a final checkpoint instead of the
/// default disposition killing the process mid-write.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the handler must stay async-signal-safe.
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler: extern "C" fn(i32) = on_signal;
    unsafe {
        signal(SIGINT, handler as usize);
        signal(SIGTERM, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

fn cmd_serve(args: &[String]) -> CliResult {
    let data_dir = opt(args, "--data").ok_or("--data <dir> is required")?;
    let addr = opt(args, "--addr").unwrap_or("127.0.0.1:8080");
    let workers: usize = opt(args, "--workers").unwrap_or("4").parse()?;
    // 0 = auto-size reactor shards from available parallelism.
    let shards: usize = opt(args, "--shards").unwrap_or("0").parse()?;
    let scan_poller = has_flag(args, "--scan-poller");
    let checkpoint_secs: u64 = opt(args, "--checkpoint-secs").unwrap_or("60").parse()?;
    // WAL group-commit window: concurrent intake commits arriving within
    // this many µs coalesce into one fsync. 0 = one fsync per commit.
    let group_commit_us: u64 = opt(args, "--group-commit-us").unwrap_or("250").parse()?;
    // Background compaction threshold; 0 disables the compactor thread.
    let compact_wal_bytes: u64 = match opt(args, "--compact-wal-bytes") {
        Some(v) => v.parse()?,
        None => DEFAULT_COMPACT_WAL_BYTES,
    };
    let resume = has_flag(args, "--resume");
    let data = PathBuf::from(data_dir);

    // Crash-safe open: latest checkpoint + WAL replay, tolerating a torn
    // tail from a previous crash. Legacy plain-JSONL snapshots import
    // transparently and get checkpointed on the first cycle.
    let registry = Arc::new(Registry::new());
    // Register the campaign-resume counter up front so /metrics always
    // carries the series (campaigns sharing this registry bump it).
    let _ = registry.counter("core.campaign_resumed_total");
    let (db, report) = Database::open_durable(data.join("db"))?;
    let db = db.with_telemetry(&registry);
    if report.clean() {
        println!("database recovered: {report}");
    } else {
        eprintln!("warning: database recovered with losses: {report}");
    }
    // Surface campaigns the last incarnation left mid-flight: their
    // ledgers record everything a restart needs, but the restart has to
    // come from the campaign driver, not the server.
    for doc in db.collection("campaign_ledger").all() {
        if doc.get("state").and_then(serde_json::Value::as_str) == Some("running") {
            println!(
                "KSCOPE-RECOVERY interrupted campaign test={} rounds_completed={} \
                 resumed_count={} — restart it with `kscope demo --supervised --data <dir> \
                 --resume`",
                doc.get("test_id").and_then(serde_json::Value::as_str).unwrap_or("?"),
                doc.get("rounds_completed").and_then(serde_json::Value::as_u64).unwrap_or(0),
                doc.get("resumed_count").and_then(serde_json::Value::as_u64).unwrap_or(0)
            );
        }
    }
    if resume {
        // Fold the replayed WAL into a fresh snapshot before serving so
        // the next crash recovers from the post-resume state directly.
        let stats = db.checkpoint()?;
        println!("start-up checkpoint folded recovered WAL: {stats}");
    }
    let grid = GridStore::load_from_dir(&data.join("files"))?;
    println!(
        "loaded {} collections and {} test folders from {data_dir}",
        db.collection_names().len(),
        grid.test_ids().len()
    );
    if group_commit_us > 0 {
        db.set_group_commit_window(std::time::Duration::from_micros(group_commit_us));
        println!(
            "WAL group commit armed: {group_commit_us}µs window (--group-commit-us 0 to disable)"
        );
    }
    let mut compactor = if compact_wal_bytes > 0 {
        let handle = spawn_compactor(
            &db,
            CompactionConfig {
                wal_bytes_threshold: compact_wal_bytes,
                ..CompactionConfig::default()
            },
        )?;
        println!(
            "background compactor armed: checkpoint at {compact_wal_bytes} WAL bytes \
             (--compact-wal-bytes 0 to disable)"
        );
        Some(handle)
    } else {
        None
    };
    let api = CoreServerApi::new(db.clone(), grid).with_telemetry(Arc::clone(&registry));
    let mut config = kaleidoscope::server::ServerConfig::with_workers(workers);
    config.reactor_shards = shards;
    config.force_scan_poller = scan_poller;
    let mut server = HttpServer::bind_with_config(addr, api.into_router(), config, Some(registry))?;
    // Final checkpoint once the last in-flight request has drained.
    let drain_db = db.clone();
    server.set_drain_hook(move || match drain_db.checkpoint() {
        Ok(stats) => println!("drain checkpoint: {stats}"),
        Err(e) => eprintln!("drain checkpoint failed (WAL still covers all writes): {e}"),
    });
    install_shutdown_handler();
    println!("core server on http://{} — Ctrl-C to stop", server.local_addr());
    println!("metrics at GET /metrics (Prometheus text), health at GET /healthz");
    println!("checkpointing every {checkpoint_secs}s (--checkpoint-secs to change)");
    // Periodic checkpoints bound WAL growth and recovery time; between
    // them every write is already durable in the WAL.
    let interval = std::time::Duration::from_secs(checkpoint_secs.max(1));
    let mut last_checkpoint = std::time::Instant::now();
    while !SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if last_checkpoint.elapsed() >= interval {
            match db.checkpoint() {
                Ok(stats) => println!("{stats}"),
                Err(e) => eprintln!("checkpoint failed (WAL still covers all writes): {e}"),
            }
            last_checkpoint = std::time::Instant::now();
        }
    }
    println!("signal received: draining connections…");
    if let Some(handle) = compactor.as_mut() {
        handle.stop();
    }
    // shutdown() joins the workers and fires the drain hook — the final
    // checkpoint — after the last in-flight request has landed.
    let report = server.shutdown();
    println!(
        "drained {}/{} workers in {:?}{}",
        report.workers_joined,
        report.workers_total,
        report.duration,
        if report.completed { "" } else { " (deadline hit; stragglers abandoned)" }
    );
    Ok(())
}
