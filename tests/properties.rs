//! Property-based tests over cross-crate invariants.

use kaleidoscope::html::parse_document;
use kaleidoscope::pageload::{Layout, LoadSpec, PaintTimeline, RevealPlan, Viewport};
use kaleidoscope::singlefile::{normalize_path, resolve_relative, Inliner, ResourceStore};
use kaleidoscope::stats::rank::{borda_ranking, PairwiseMatrix, Preference};
use kaleidoscope::stats::Ecdf;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// A generator of small well-formed-ish HTML fragments.
fn html_fragment() -> impl Strategy<Value = String> {
    let text = "[a-zA-Z0-9 ]{0,20}";
    let leaf = prop_oneof![
        text.prop_map(|t| t),
        text.prop_map(|t| format!("<p>{t}</p>")),
        text.prop_map(|t| format!("<span class=\"x\">{t}</span>")),
        Just("<br>".to_string()),
        Just("<img src=\"pic.png\">".to_string()),
    ];
    prop::collection::vec(leaf, 0..6)
        .prop_map(|parts| format!("<div id=\"root\">{}</div>", parts.join("")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → serialize → parse is a fixed point (structure stability).
    #[test]
    fn html_serialization_is_stable(src in html_fragment()) {
        let once = parse_document(&src).to_html();
        let twice = parse_document(&once).to_html();
        prop_assert_eq!(once, twice);
    }

    /// Text content survives the round-trip.
    #[test]
    fn html_text_content_preserved(src in html_fragment()) {
        let doc = parse_document(&src);
        let text1 = doc.text_content(doc.root());
        let doc2 = parse_document(&doc.to_html());
        prop_assert_eq!(text1, doc2.text_content(doc2.root()));
    }

    /// Path normalization is idempotent.
    #[test]
    fn normalize_path_idempotent(path in "[a-z./]{0,30}") {
        let once = normalize_path(&path);
        prop_assert_eq!(normalize_path(&once), once);
    }

    /// Resolving a normalized name against a base stays inside the root
    /// (no escaping via ..).
    #[test]
    fn resolve_relative_never_escapes(base in "[a-z]{1,8}/[a-z]{1,8}\\.html",
                                       href in "(\\.\\./){0,4}[a-z]{1,8}\\.css") {
        let resolved = resolve_relative(&base, &href);
        prop_assert!(!resolved.contains(".."));
        prop_assert!(!resolved.starts_with('/'));
    }

    /// Reveal plans never schedule beyond the spec duration, and the paint
    /// timeline ends exactly at the last reveal.
    #[test]
    fn reveal_plan_bounded_by_spec(window in 0u64..5000, seed in 0u64..1000) {
        let doc = parse_document(
            "<div><p>alpha</p><p>beta</p><img><section><p>gamma</p></section></div>");
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(window), &mut rng);
        prop_assert!(plan.completion_ms() <= window);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        prop_assert_eq!(tl.last_paint_ms(), plan.completion_ms());
        // Completeness is monotone and ends at 1.
        let mut prev = -1.0;
        for s in tl.samples() {
            prop_assert!(s.completeness >= prev);
            prev = s.completeness;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
    }

    /// The single-file inliner is idempotent: inlining its own output finds
    /// nothing more to do.
    #[test]
    fn singlefile_idempotent(css in "[a-z]{1,10}", img_bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut store = ResourceStore::new();
        store.insert(
            "p/i.html",
            "text/html",
            "<link rel=\"stylesheet\" href=\"s.css\"><img src=\"i.png\">".to_string()
                .into_bytes(),
        );
        store.insert("p/s.css", "text/css", format!(".{css} {{ color: red }}").into_bytes());
        store.insert("p/i.png", "image/png", img_bytes);
        let out = Inliner::new(&store).inline("p/i.html").unwrap();
        prop_assert!(out.report.missing.is_empty());

        let mut store2 = ResourceStore::new();
        store2.insert("p/i.html", "text/html", out.html.clone().into_bytes());
        let again = Inliner::new(&store2).inline("p/i.html").unwrap();
        prop_assert_eq!(again.report.inlined, 0);
        prop_assert!(again.report.missing.is_empty());
        prop_assert_eq!(again.html, out.html);
    }

    /// Borda ranking is always a permutation, and reversing every
    /// preference reverses the winner/loser relationship.
    #[test]
    fn borda_is_permutation_and_antisymmetric(
        prefs in prop::collection::vec((0usize..4, 0usize..4, 0u8..3), 0..30),
    ) {
        let mut m = PairwiseMatrix::new(4);
        let mut flipped = PairwiseMatrix::new(4);
        for (a, b, p) in prefs {
            if a == b { continue; }
            let pref = match p { 0 => Preference::Left, 1 => Preference::Right, _ => Preference::Same };
            m.record(a, b, pref);
            flipped.record(a, b, pref.flipped());
        }
        let r = borda_ranking(&m);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Scores of flipped matrix are mirrored: sum stays constant per pair.
        let s: f64 = m.borda_scores().iter().sum();
        let sf: f64 = flipped.borda_scores().iter().sum();
        prop_assert!((s - sf).abs() < 1e-9);
    }

    /// ECDF evaluation is monotone and hits 0/1 at the extremes.
    #[test]
    fn ecdf_monotone(sample in prop::collection::vec(-1000.0f64..1000.0, 1..50)) {
        let e = Ecdf::new(sample.clone());
        prop_assert_eq!(e.eval(e.min() - 1.0), 0.0);
        prop_assert_eq!(e.eval(e.max()), 1.0);
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = i as f64 * 100.0;
            let y = e.eval(x);
            prop_assert!(y >= prev);
            prev = y;
        }
    }

    /// LoadSpec JSON round-trips for arbitrary selector maps.
    #[test]
    fn load_spec_roundtrip(entries in prop::collection::btree_map("#[a-z]{1,6}", 0u64..10_000, 0..5)) {
        let json = serde_json::to_value(&entries).unwrap();
        let spec = LoadSpec::from_json(&json).unwrap();
        let back = LoadSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(spec, back);
    }
}
