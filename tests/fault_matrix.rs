//! Fault-matrix end-to-end tests: a supervised campaign over an
//! open-channel population with injected abandonment, stragglers, and
//! duplicate uploads must still converge to the expected ranking while
//! accounting for every recruited worker.
//!
//! The fault intensities are environment knobs so CI can sweep a matrix:
//!
//! * `KSCOPE_FAULT_ABANDON` — total abandonment probability (default 0.25)
//! * `KSCOPE_FAULT_DUPLICATE` — duplicate-upload probability (default 0.15)

use kaleidoscope::core::corpus;
use kaleidoscope::core::supervisor::{CampaignSupervisor, SupervisorConfig};
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind};
use kaleidoscope::crowd::faults::FaultModel;
use kaleidoscope::crowd::platform::{Channel, JobSpec};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

const FONT_Q: &str = "Which webpage's font size is more suitable (easier) for reading?";

fn knob(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// The fault model under test, scaled by the environment knobs.
fn matrix_faults() -> FaultModel {
    let abandon = knob("KSCOPE_FAULT_ABANDON", 0.25);
    let duplicate = knob("KSCOPE_FAULT_DUPLICATE", 0.15);
    FaultModel {
        abandon_mid_page: abandon * 0.45,
        abandon_mid_questionnaire: abandon * 0.35,
        straggler: abandon * 0.20,
        skip_question: 0.02,
        disconnect_retry: duplicate,
        duplicate_upload: 1.0,
    }
}

struct Supervised {
    db: Database,
    outcome: kaleidoscope::core::supervisor::SupervisedOutcome,
}

fn supervised_font_campaign(target_kept: usize, quota: usize, seed: u64) -> Supervised {
    let (store, params) = corpus::font_size_study(quota);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let campaign = Campaign::new(db.clone(), grid)
        .with_question(params.question[0].text(), QuestionKind::FontReadability);
    let spec = JobSpec::new(&params.test_id, 0.11, quota, Channel::Open);
    let outcome = CampaignSupervisor::new(&campaign, SupervisorConfig::new(target_kept))
        .with_faults(matrix_faults())
        .run(&params, &prepared, &spec, &mut rng)
        .expect("a faulty population must not error the supervisor");
    Supervised { db, outcome }
}

#[test]
fn supervised_open_channel_converges_under_faults() {
    let run = supervised_font_campaign(20, 30, 42);
    let health = &run.outcome.health;

    // Every recruited worker ends in exactly one bucket.
    assert!(health.accounted(), "accounting must balance: {health}");
    assert!(health.reached_target(), "refill must reach the QC target: {health}");
    assert!(health.abandoned > 0, "a ≥20% abandonment model must produce abandonments: {health}");

    // Zero duplicate rows survive intake.
    let rows = run.db.collection("responses").all();
    let mut keys: Vec<String> = rows
        .iter()
        .map(|d| {
            format!(
                "{}|{}",
                d["contributor_id"].as_str().unwrap(),
                d["submission_id"].as_str().unwrap()
            )
        })
        .collect();
    let total = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), total, "duplicate uploads must be deduplicated at intake");
    assert_eq!(
        total,
        health.completed + health.deduped,
        "each completed session stores exactly one row"
    );

    // Only completed sessions are paid.
    assert!(run.outcome.outcome.cost.total_usd() > 0.0);
    let paid = health.completed + health.deduped;
    let base_per_session = 0.11 * 1.2;
    assert!(
        run.outcome.outcome.cost.total_usd() >= base_per_session * paid as f64 - 1e-9,
        "every completed session is paid at least the base reward"
    );
    assert!(
        run.outcome.outcome.cost.total_usd() < base_per_session * 10.0 * paid as f64,
        "abandoned workers must not be paid"
    );

    // Despite the faults, the consensus still lands on the readable
    // middle of the font range (12 or 14 pt) and 22 pt still loses.
    let ranking = run.outcome.outcome.question_analysis(FONT_Q, true).ranking();
    assert!(
        ranking[0] == 1 || ranking[0] == 2,
        "winner must be 12 or 14pt despite faults: {ranking:?}"
    );
    assert_eq!(*ranking.last().unwrap(), 4, "22pt must lose despite faults: {ranking:?}");
}

#[test]
fn twelve_point_wins_most_seeds_under_faults() {
    let mut twelve_wins = 0;
    for seed in [3u64, 17, 29] {
        let run = supervised_font_campaign(18, 25, seed);
        assert!(run.outcome.health.accounted(), "seed {seed}: {}", run.outcome.health);
        let ranking = run.outcome.outcome.question_analysis(FONT_Q, true).ranking();
        if ranking[0] == 1 {
            twelve_wins += 1;
        }
    }
    assert!(twelve_wins >= 2, "12pt should win most seeds under faults, won {twelve_wins}/3");
}

#[test]
fn accounting_balances_across_fault_grid() {
    // A small in-test matrix independent of the environment knobs: the
    // invariant must hold at every corner, including the fault-free one.
    for (abandon, duplicate) in [(0.0, 0.0), (0.0, 0.3), (0.35, 0.0), (0.35, 0.3)] {
        let (store, params) = corpus::font_size_study(15);
        let db = Database::new();
        let grid = GridStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let campaign = Campaign::new(db.clone(), grid)
            .with_question(params.question[0].text(), QuestionKind::FontReadability);
        let faults = FaultModel {
            abandon_mid_page: abandon * 0.5,
            abandon_mid_questionnaire: abandon * 0.3,
            straggler: abandon * 0.2,
            skip_question: 0.0,
            disconnect_retry: duplicate,
            duplicate_upload: 1.0,
        };
        let spec = JobSpec::new(&params.test_id, 0.11, 15, Channel::Open);
        let out = CampaignSupervisor::new(&campaign, SupervisorConfig::new(10))
            .with_faults(faults)
            .run(&params, &prepared, &spec, &mut rng)
            .expect("no fault corner may error");
        let health = &out.health;
        assert!(health.accounted(), "corner ({abandon}, {duplicate}) must balance: {health}");
        if abandon == 0.0 {
            assert_eq!(health.abandoned, 0, "corner ({abandon}, {duplicate}): {health}");
        }
        if duplicate == 0.0 {
            assert_eq!(health.deduped, 0, "corner ({abandon}, {duplicate}): {health}");
        }
        assert_eq!(
            db.collection("responses").len(),
            health.completed + health.deduped,
            "corner ({abandon}, {duplicate}) row count: {health}"
        );
    }
}
