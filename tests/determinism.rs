//! Bit-reproducibility of parallel aggregation: prepare with 1 worker and
//! with 8 workers must emit byte-identical GridStore artifacts and equal
//! `PreparedTest` metadata for the same campaign seed, cold or warm cache.

use kaleidoscope::core::corpus;
use kaleidoscope::core::Aggregator;
use kaleidoscope::singlefile::{AssetCache, Inliner};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn prepare_with(
    threads: usize,
    seed: u64,
    cache: Option<Arc<AssetCache>>,
) -> (Aggregator, kaleidoscope::core::PreparedTest, String) {
    let (store, params) = corpus::font_size_study(40);
    let mut agg = Aggregator::new(Database::new(), GridStore::new()).with_threads(threads);
    if let Some(cache) = cache {
        agg = agg.with_shared_cache(cache);
    }
    let prepared = agg.prepare(&params, &store, &mut StdRng::seed_from_u64(seed)).unwrap();
    (agg, prepared, params.test_id)
}

/// Every artifact byte of `a` equals `b`'s, with identical file listings.
fn assert_identical_grids(a: &Aggregator, b: &Aggregator, test_id: &str) {
    let files = a.grid().list(test_id);
    assert_eq!(files, b.grid().list(test_id), "file sets must match");
    assert!(!files.is_empty(), "prepare stored artifacts");
    for f in &files {
        assert_eq!(
            a.grid().get(test_id, f),
            b.grid().get(test_id, f),
            "{f} must be byte-identical"
        );
    }
}

#[test]
fn one_thread_and_eight_threads_emit_identical_artifacts() {
    let (seq, seq_prepared, test_id) = prepare_with(1, 2024, None);
    let (par, par_prepared, _) = prepare_with(8, 2024, None);
    assert_eq!(seq_prepared, par_prepared, "PreparedTest metadata must be equal");
    assert_identical_grids(&seq, &par, &test_id);
}

#[test]
fn different_seeds_differ_but_each_reproduces() {
    let (a7, p7, test_id) = prepare_with(8, 7, None);
    let (b7, q7, _) = prepare_with(8, 7, None);
    assert_eq!(p7, q7);
    assert_identical_grids(&a7, &b7, &test_id);
    // A different seed yields different reveal scheduling in at least one
    // version file (the uniform load spec draws per-element delays).
    let (a8, _, _) = prepare_with(8, 8, None);
    let differs = a7
        .grid()
        .list(&test_id)
        .iter()
        .any(|f| a7.grid().get(&test_id, f) != a8.grid().get(&test_id, f));
    assert!(differs, "seed must influence the artifacts");
}

#[test]
fn warm_cache_reprepare_matches_cold_across_thread_counts() {
    let cache = Arc::new(AssetCache::new());
    let (cold, cold_prepared, test_id) = prepare_with(8, 99, Some(Arc::clone(&cache)));
    let entries_after_cold = cache.stats().entries;
    assert!(entries_after_cold > 0, "cold run populated the cache");
    // Warm, single-threaded: same bytes as the cold 8-thread run.
    let (warm, warm_prepared, _) = prepare_with(1, 99, Some(Arc::clone(&cache)));
    assert_eq!(cold_prepared, warm_prepared);
    assert_identical_grids(&cold, &warm, &test_id);
    assert_eq!(cache.stats().entries, entries_after_cold, "warm run encoded no new blobs");
}

#[test]
fn streaming_rewriter_matrix_threads_by_cache_state_is_byte_identical() {
    // Version compression now runs the streaming single-pass rewriter;
    // the full 2×2 matrix — {1 thread, 8 threads} × {cold, warm cache} —
    // must emit byte-identical artifacts for the same campaign seed.
    let cache_seq = Arc::new(AssetCache::new());
    let cache_par = Arc::new(AssetCache::new());
    let (cold_seq, p_cold_seq, test_id) = prepare_with(1, 4242, Some(Arc::clone(&cache_seq)));
    let (warm_seq, p_warm_seq, _) = prepare_with(1, 4242, Some(cache_seq));
    let (cold_par, p_cold_par, _) = prepare_with(8, 4242, Some(Arc::clone(&cache_par)));
    let (warm_par, p_warm_par, _) = prepare_with(8, 4242, Some(cache_par));
    assert_eq!(p_cold_seq, p_warm_seq);
    assert_eq!(p_cold_seq, p_cold_par);
    assert_eq!(p_cold_seq, p_warm_par);
    assert_identical_grids(&cold_seq, &warm_seq, &test_id);
    assert_identical_grids(&cold_seq, &cold_par, &test_id);
    assert_identical_grids(&cold_seq, &warm_par, &test_id);
}

#[test]
fn streaming_inliner_is_deterministic_under_concurrent_use() {
    // The inliner itself (shared cache + css memo) must hand back the
    // same bytes whether called once or raced from eight workers.
    let (store, params) = corpus::font_size_study(8);
    let cache = AssetCache::new();
    let inliner = Inliner::new(&store).with_cache(&cache);
    let mains: Vec<String> = params.webpages.iter().map(|w| w.main_file_path()).collect();
    let reference: Vec<String> = mains.iter().map(|m| inliner.inline(m).unwrap().html).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    mains.iter().map(|m| inliner.inline(m).unwrap().html).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference, "concurrent inline diverged");
        }
    });
}

#[test]
fn shared_corpus_assets_are_encoded_once() {
    // The font study saves byte-identical images under each of the five
    // version folders; the content-addressed cache must base64-encode each
    // unique blob exactly once no matter how many versions reference it.
    let (agg, _, _) = prepare_with(8, 5, None);
    let stats = agg.cache().stats();
    assert!(stats.hits > 0, "shared assets must be served from cache: {stats:?}");
    assert!(
        (stats.entries as u64) < stats.hits + stats.misses,
        "fewer unique blobs than references: {stats:?}"
    );
}
