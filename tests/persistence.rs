//! Storage durability: a campaign's artifacts survive a save/load cycle,
//! like the paper's MongoDB + file-store deployment surviving a restart.

use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind};
use kaleidoscope::crowd::platform::{Channel, JobSpec, Platform};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::json;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kscope-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn campaign_artifacts_survive_restart() {
    let (store, params) = corpus::expand_button_study(6);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(4);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 6, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let _ = Campaign::new(db.clone(), grid.clone())
        .with_question(params.question[0].text(), QuestionKind::Appeal)
        .with_question(params.question[1].text(), QuestionKind::StyleBetter)
        .with_question(params.question[2].text(), QuestionKind::Visibility)
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap();

    // Save both stores.
    let db_dir = tempdir("db");
    let grid_dir = tempdir("grid");
    db.save_to_dir(&db_dir).unwrap();
    grid.save_to_dir(&grid_dir).unwrap();

    // "Restart": load fresh instances.
    let db2 = Database::load_from_dir(&db_dir).unwrap();
    let grid2 = GridStore::load_from_dir(&grid_dir).unwrap();

    // Responses, test info, and every integrated page must be intact.
    assert_eq!(db2.collection("responses").len(), 6);
    assert_eq!(db2.collection("tests").count(&json!({"test_id": params.test_id})), 1);
    assert_eq!(grid2.list(&params.test_id), grid.list(&params.test_id));
    for name in grid.list(&params.test_id) {
        assert_eq!(
            grid2.get(&params.test_id, &name),
            grid.get(&params.test_id, &name),
            "file {name} corrupted by round-trip"
        );
    }

    // The reloaded pages still drive a virtual browser: same paint curve.
    let html = grid2.get_text(&params.test_id, "version-0.html").expect("page reloaded");
    let page = kaleidoscope::browser::LoadedPage::from_html(&html);
    // The 3-second uniform reveal plan survived the round-trip: the last
    // paint falls inside the window, not at t = 0.
    let last = page.timeline().last_paint_ms();
    assert!(last > 0 && last <= 3000, "reveal plan survived, last paint {last}");

    std::fs::remove_dir_all(&db_dir).unwrap();
    std::fs::remove_dir_all(&grid_dir).unwrap();
}

/// The durable path: a whole campaign runs against a WAL-backed database,
/// the process "crashes" (handle dropped, no checkpoint, no save), and a
/// restart recovers every response by WAL replay alone.
#[test]
fn campaign_survives_crash_without_checkpoint() {
    let dir = tempdir("durable-crash");
    let (store, params) = corpus::font_size_study(6);
    let grid = GridStore::new();
    {
        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(report.clean());
        let mut rng = StdRng::seed_from_u64(11);
        let prepared =
            Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
        let recruitment = Platform.post_job(
            &JobSpec::new(&params.test_id, 0.11, 6, Channel::HistoricallyTrustworthy),
            &mut rng,
        );
        let _ = Campaign::new(db.clone(), grid.clone())
            .with_question(params.question[0].text(), QuestionKind::FontReadability)
            .run(&params, &prepared, &recruitment, &mut rng)
            .unwrap();
        assert_eq!(db.collection("responses").len(), 6);
        // Crash: no checkpoint, no save_to_dir.
    }

    let (db2, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean(), "clean WAL tail after an orderly crash");
    assert!(report.replayed_records > 0, "state came from WAL replay");
    assert_eq!(db2.collection("responses").len(), 6);
    assert_eq!(db2.collection("tests").count(&json!({"test_id": params.test_id})), 1);

    // A checkpoint folds the WAL, and a third restart loads from it.
    let stats = db2.checkpoint().unwrap();
    assert!(stats.documents > 0);
    drop(db2);
    let (db3, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, stats.seq);
    assert_eq!(report.replayed_records, 0, "everything came from the checkpoint");
    assert_eq!(db3.collection("responses").len(), 6);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A directory written by the legacy `save_to_dir` snapshot path opens
/// durably: old `kscope prepare` output keeps working.
#[test]
fn legacy_snapshot_opens_durably() {
    let dir = tempdir("durable-legacy");
    let db = Database::new();
    db.collection("tests").insert_one(json!({"test_id": "t-legacy"}));
    db.save_to_dir(&dir).unwrap();

    let (db2, report) = Database::open_durable(&dir).unwrap();
    assert!(report.legacy_import);
    assert_eq!(db2.collection("tests").count(&json!({"test_id": "t-legacy"})), 1);
    db2.collection("responses").insert_one(json!({"worker": "w1"}));
    drop(db2);

    let (db3, _) = Database::open_durable(&dir).unwrap();
    assert_eq!(db3.collection("responses").len(), 1, "new writes persisted over the import");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn database_queries_work_after_reload() {
    let db = Database::new();
    let responses = db.collection("responses");
    for i in 0..20 {
        responses.insert_one(json!({
            "test_id": "t",
            "contributor_id": format!("w{i}"),
            "created_tabs": i,
        }));
    }
    let dir = tempdir("queries");
    db.save_to_dir(&dir).unwrap();
    let db2 = Database::load_from_dir(&dir).unwrap();
    let heavy = db2.collection("responses").find(&json!({"created_tabs": {"$gte": 15}}));
    assert_eq!(heavy.len(), 5);
    // Updates still work post-reload.
    let n = db2
        .collection("responses")
        .update_many(&json!({"created_tabs": {"$lt": 3}}), &json!({"$set": {"flagged": true}}));
    assert_eq!(n, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}
