//! Span-passthrough invariant of the streaming rewriter, pinned against
//! the seed sample corpus: a visitor that keeps every tag must reproduce
//! each corpus page byte-for-byte — no re-escaping, no attribute
//! normalization, no whitespace drift. This is the property that makes
//! the single-pass inliner safe: anything it does not explicitly rewrite
//! is guaranteed untouched.

use kaleidoscope::core::corpus;
use kaleidoscope::html::{parse_document, rewrite_start_tags, Action};
use kaleidoscope::singlefile::{AssetCache, Inliner};

/// All saved-page stores the seed corpus can generate.
fn corpus_stores() -> Vec<kaleidoscope::singlefile::ResourceStore> {
    vec![
        corpus::font_size_study(10).0,
        corpus::uplt_case_study(10).0,
        corpus::expand_button_study(10).0,
        corpus::ads_study(10).0,
    ]
}

#[test]
fn keep_all_round_trips_every_corpus_page_byte_for_byte() {
    let mut pages = 0;
    for store in &corpus_stores() {
        let paths: Vec<String> =
            store.paths().filter(|p| p.ends_with(".html")).map(str::to_string).collect();
        for path in &paths {
            let src = store.get_str(path).expect("listed path resolves");
            let out = rewrite_start_tags(&src, |_, _| Action::Keep);
            assert_eq!(out, *src, "passthrough must be byte-identical for {path}");
            pages += 1;
        }
    }
    assert!(pages >= 10, "corpus should contribute a real sample, got {pages} pages");
}

#[test]
fn streaming_inline_agrees_with_dom_reference_on_the_corpus() {
    // The escaping audit as an executable check: for every corpus page,
    // the streaming inliner's output must normalize (one parse →
    // serialize round trip) to exactly what the DOM reference
    // implementation produces — raw-text bodies verbatim, attribute
    // quoting escaped, everything else equivalent.
    for store in &corpus_stores() {
        let paths: Vec<String> =
            store.paths().filter(|p| p.ends_with("index.html")).map(str::to_string).collect();
        for path in &paths {
            let cache = AssetCache::new();
            let inliner = Inliner::new(store).with_cache(&cache);
            let stream = inliner.inline(path).expect("stream inline");
            let dom = inliner.inline_dom(path).expect("dom inline");
            assert_eq!(
                parse_document(&stream.html).to_html(),
                parse_document(&dom.html).to_html(),
                "streaming vs DOM divergence on {path}"
            );
            assert_eq!(stream.report.inlined, dom.report.inlined, "inline count on {path}");
        }
    }
}
