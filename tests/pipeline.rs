//! Cross-crate invariants of the full Kaleidoscope pipeline.

use kaleidoscope::core::analysis::parse_preference;
use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, Campaign, CampaignOutcome, QuestionKind};
use kaleidoscope::crowd::platform::{Channel, InLabRecruiter, JobSpec, Platform};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn font_campaign(n: usize, seed: u64) -> CampaignOutcome {
    let (store, params) = corpus::font_size_study(n);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, n, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::FontReadability)
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap()
}

const FONT_Q: &str = "Which webpage's font size is more suitable (easier) for reading?";

#[test]
fn same_seed_same_outcome() {
    let a = font_campaign(20, 5);
    let b = font_campaign(20, 5);
    assert_eq!(a.quality.kept, b.quality.kept);
    let ra: Vec<_> = a.raw_records().iter().map(|r| r.to_json()).collect();
    let rb: Vec<_> = b.raw_records().iter().map(|r| r.to_json()).collect();
    assert_eq!(ra, rb, "campaigns must be bit-reproducible from the seed");
}

#[test]
fn different_seeds_differ() {
    let a = font_campaign(20, 5);
    let b = font_campaign(20, 6);
    let ra: Vec<_> = a.raw_records().iter().map(|r| r.to_json()).collect();
    let rb: Vec<_> = b.raw_records().iter().map(|r| r.to_json()).collect();
    assert_ne!(ra, rb);
}

#[test]
fn every_answer_is_a_valid_label() {
    let outcome = font_campaign(25, 11);
    for rec in outcome.raw_records() {
        for page in &rec.pages {
            for answer in page.answers.values() {
                assert!(parse_preference(answer).is_some(), "invalid answer label {answer}");
            }
        }
    }
}

#[test]
fn quality_control_never_invents_sessions() {
    let outcome = font_campaign(30, 13);
    let total = outcome.sessions.len();
    assert_eq!(outcome.quality.kept.len() + outcome.quality.dropped.len(), total);
    // Indices are unique and in range.
    let mut all: Vec<usize> = outcome
        .quality
        .kept
        .iter()
        .copied()
        .chain(outcome.quality.dropped.iter().map(|(i, _)| *i))
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), total);
    assert!(all.iter().all(|&i| i < total));
}

#[test]
fn consensus_is_stable_across_seeds() {
    // The headline result must not be a seed artifact: 22pt always loses,
    // the winner is always in the CHI-consensus band (12 or 14 pt), and
    // 12pt takes the majority of runs — the 12-vs-14 margin is genuinely
    // narrow, as in the literature the paper cites.
    let mut twelve_wins = 0;
    for seed in [1u64, 2, 3, 4, 5] {
        let outcome = font_campaign(60, seed);
        let ranking = outcome.question_analysis(FONT_Q, true).ranking();
        assert!(
            ranking[0] == 1 || ranking[0] == 2,
            "winner must be 12 or 14pt under seed {seed}: {ranking:?}"
        );
        if ranking[0] == 1 {
            twelve_wins += 1;
        }
        assert_eq!(*ranking.last().unwrap(), 4, "22pt must lose under seed {seed}: {ranking:?}");
    }
    assert!(twelve_wins >= 3, "12pt should win most seeds, won {twelve_wins}/5");
}

#[test]
fn in_lab_and_crowd_agree_on_the_winner() {
    let crowd = font_campaign(60, 21);
    let (store, params) = corpus::font_size_study(30);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(22);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let lab_recruitment = InLabRecruiter::new(30, 7.0).recruit(&mut rng);
    let lab = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::FontReadability)
        .in_lab()
        .run(&params, &prepared, &lab_recruitment, &mut rng)
        .unwrap();
    let crowd_rank = crowd.question_analysis(FONT_Q, true).ranking();
    let lab_rank = lab.question_analysis(FONT_Q, true).ranking();
    // Both cohorts crown a winner in the CHI-consensus band (12 or 14 pt) —
    // the 12-vs-14 margin is within sampling noise at these sizes, exactly
    // as in the literature the paper cites.
    assert!(matches!(crowd_rank[0], 1 | 2), "crowd winner {crowd_rank:?}");
    assert!(matches!(lab_rank[0], 1 | 2), "lab winner {lab_rank:?}");
    // The full rankings correlate strongly (the paper's Fig. 4 claim).
    let tau = kaleidoscope::stats::kendall_tau(&crowd_rank, &lab_rank);
    assert!(tau >= 0.6, "rankings should agree, tau = {tau}");
}

#[test]
fn behaviour_telemetry_present_in_all_sessions() {
    let outcome = font_campaign(15, 31);
    for s in &outcome.sessions {
        assert!(s.record.created_tabs >= 1);
        assert!(s.record.active_tab_switches >= s.record.created_tabs);
        assert!(s.record.total_duration_ms() > 0);
        assert_eq!(s.record.pages.len(), outcome.prepared.pages.len());
    }
}

#[test]
fn responses_persisted_in_database() {
    let (store, params) = corpus::font_size_study(6);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 6, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let _ = Campaign::new(db.clone(), grid)
        .with_question(params.question[0].text(), QuestionKind::FontReadability)
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap();
    assert_eq!(db.collection("responses").len(), 6);
    assert_eq!(db.collection("tests").len(), 1);
}
