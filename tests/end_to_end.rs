//! End-to-end integration: the aggregator prepares a test, the core server
//! serves it over real loopback HTTP, a simulated extension performs the
//! Fig. 3 flow against the wire protocol, and the server concludes results.

use kaleidoscope::browser::{ExtensionClient, TestFlow};
use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, QuestionKind};
use kaleidoscope::server::api::CoreServerApi;
use kaleidoscope::server::{client, HttpServer};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::json;

#[test]
fn extension_session_over_real_http() {
    // 1. Prepare the expand-button test.
    let (store, params) = corpus::expand_button_study(10);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let prepared = Aggregator::new(db.clone(), grid.clone())
        .prepare(&params, &store, &mut rng)
        .expect("prepare");

    // 2. Start the core server.
    let api = CoreServerApi::new(db.clone(), grid.clone());
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 4).expect("bind");
    let addr = server.local_addr();

    // 3. The extension simulator speaks to the server over one keep-alive
    // connection for the whole session, like the real extension's browser
    // would.
    let mut ext = ExtensionClient::connect(addr);
    let info = ext.test_info(&prepared.test_id).unwrap();
    assert_eq!(info["test_id"], json!(prepared.test_id));
    // The pair metadata lives in its own collection, served separately.
    let pairs = client::get(addr, &format!("/api/tests/{}/pairs", prepared.test_id)).unwrap();
    assert_eq!(pairs.json_body().unwrap()["pairs"].as_array().unwrap().len(), prepared.pages.len());
    let pages = ext.page_names(&prepared.test_id).unwrap();
    assert!(pages.iter().any(|p| p.starts_with("integrated-")));

    // 4. Run one extension session, downloading every page over HTTP.
    let questions: Vec<String> = params.question.iter().map(|q| q.text().to_string()).collect();
    let page_names = prepared.page_names();
    let mut flow = TestFlow::register(
        &prepared.test_id,
        "contributor-77",
        json!({"age": "25-34"}),
        questions.clone(),
        page_names.clone(),
    );
    while let Some(name) = flow.current_page_name().map(str::to_string) {
        let page = ext.fetch_page(&prepared.test_id, &name).unwrap();
        assert_eq!(page.iframe_refs().len(), 2, "integrated page has two panes");
        flow.visit(page, 20_000).unwrap();
        for q in &questions {
            flow.answer(q, "Same").unwrap();
        }
        flow.next_page().unwrap();
    }
    let record = flow.upload().unwrap();

    // 5. Upload the session and read back the concluded results.
    ext.upload(&record).unwrap();

    // The whole session — info, listing, pages, upload — rode keep-alive
    // sockets: almost every request reused the previous connection.
    let stats = ext.stats();
    assert!(stats.requests >= 4);
    assert!(
        stats.reuses >= stats.requests - stats.connects,
        "keep-alive reuse must dominate: {stats:?}"
    );
    assert!(stats.connects < stats.requests, "one socket must serve many requests: {stats:?}");

    let results = client::get(addr, &format!("/api/tests/{}/results", prepared.test_id)).unwrap();
    let body = results.json_body().unwrap();
    assert_eq!(body["total"], json!(1));
    // Responses are keyed under "answers" per page; the server-side
    // summary aggregates by question across pages.
    server.shutdown();
}

#[test]
fn server_round_trip_matches_database_contents() {
    let db = Database::new();
    let grid = GridStore::new();
    grid.put("t-x", "integrated-000.html", b"<html><body>x</body></html>".to_vec());
    db.collection("tests").insert_one(json!({"test_id": "t-x"}));

    let api = CoreServerApi::new(db.clone(), grid.clone());
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
    let addr = server.local_addr();

    // Post a job the way the core server hands the task to FigureEight.
    let job = client::post_json(
        addr,
        "/api/platform/jobs",
        &json!({"test_id": "t-x", "reward_usd": 0.11, "quota": 100}),
    )
    .unwrap();
    assert_eq!(job.status.0, 201);
    assert_eq!(db.collection("jobs").len(), 1);

    // Responses posted over HTTP appear in the shared database.
    for i in 0..5 {
        let r = client::post_json(
            addr,
            "/api/tests/t-x/responses",
            &json!({"contributor_id": format!("w{i}"), "answers": {"q": "Left"}}),
        )
        .unwrap();
        assert_eq!(r.status.0, 201);
    }
    assert_eq!(db.collection("responses").count(&json!({"test_id": "t-x"})), 5);
    server.shutdown();
}

#[test]
fn campaign_results_retrievable_through_server() {
    // Run a whole simulated campaign, then serve its stored responses.
    let (store, params) = corpus::uplt_case_study(8);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(9);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment = kaleidoscope::crowd::platform::Platform.post_job(
        &kaleidoscope::crowd::platform::JobSpec::new(
            &params.test_id,
            0.11,
            8,
            kaleidoscope::crowd::platform::Channel::HistoricallyTrustworthy,
        ),
        &mut rng,
    );
    let outcome = kaleidoscope::core::Campaign::new(db.clone(), grid.clone())
        .with_question(params.question[0].text(), QuestionKind::ReadyToUse)
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap();
    assert_eq!(outcome.sessions.len(), 8);

    let api = CoreServerApi::new(db, grid);
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
    let resp =
        client::get(server.local_addr(), &format!("/api/tests/{}/responses", prepared.test_id))
            .unwrap();
    let stored = resp.json_body().unwrap();
    assert_eq!(stored["total"], serde_json::json!(8));
    assert_eq!(stored["responses"].as_array().unwrap().len(), 8);
    server.shutdown();
}
