//! Process-chaos integration test: the real `kscope` binary SIGKILLed
//! mid-campaign and resumed with `--resume` must conclude with exactly
//! the outcome an undisturbed run produces (DESIGN.md §16).
//!
//! The bench harness (`kscope_bench::crash`) does the driving; this test
//! pins the invariant into the tier-1 suite with the quick kill matrix.

use kscope_bench::crash::{run_crash_matrix, CrashConfig};
use std::path::PathBuf;

#[test]
fn sigkill_matrix_cannot_change_the_campaign_outcome() {
    let scratch = std::env::temp_dir().join(format!("kscope-crash-chaos-{}", std::process::id()));
    let config =
        CrashConfig::quick(PathBuf::from(env!("CARGO_BIN_EXE_kscope")), scratch.clone(), 42);
    let report = run_crash_matrix(&config).expect("crash matrix runs");
    let _ = std::fs::remove_dir_all(&scratch);

    assert!(report.kills_fired >= 1, "at least one SIGKILL must land: {report:?}");
    assert!(report.report_match, "final report diverged after crashes: {report:?}");
    assert!(report.keys_match, "stored response sets diverged after crashes");
    assert!(
        report.budget_cents_disturbed <= report.budget_cents_undisturbed,
        "crashes repaid work: {}¢ disturbed vs {}¢ undisturbed",
        report.budget_cents_disturbed,
        report.budget_cents_undisturbed
    );
    assert_eq!(
        report.resumed_count, report.kills_fired as u64,
        "every kill must be followed by exactly one counted resume"
    );
}
