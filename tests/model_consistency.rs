//! Cross-model consistency: the analytical uPLT model (pageload crate) and
//! the simulated crowd (crowd + core crates) must tell the same story on
//! the paper's case study — two independent implementations of "when does
//! this page feel ready" agreeing is strong evidence neither is rigged.

use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind};
use kaleidoscope::crowd::platform::InLabRecruiter;
use kaleidoscope::html::parse_document;
use kaleidoscope::pageload::metrics::UpltWeights;
use kaleidoscope::pageload::{Layout, PaintTimeline, RevealPlan, Viewport};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn uplt_model_predicts_crowd_majority() {
    // Analytical side: reader-default weights on the two versions.
    let (store, params) = corpus::uplt_case_study(60);
    let mut uplts = Vec::new();
    for spec in &params.webpages {
        let html = store.get_text(&spec.main_file_path()).unwrap();
        let doc = parse_document(&html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(0);
        let plan = RevealPlan::build(&doc, &layout, &spec.load_spec().unwrap(), &mut rng);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        uplts.push(UpltWeights::reader_defaults().uplt_ms(&tl, &layout));
    }
    let model_prefers_b = uplts[1] < uplts[0];

    // Crowd side: a trusted in-lab cohort votes.
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(77);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment = InLabRecruiter::new(60, 7.0).recruit(&mut rng);
    let outcome = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::ReadyToUse)
        .in_lab()
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap();
    let votes =
        outcome.question_analysis(params.question[0].text(), true).two_version_votes().unwrap();
    let crowd_prefers_b = votes.right > votes.left;

    assert!(model_prefers_b, "analytical uPLT must favour the text-first version");
    assert_eq!(
        model_prefers_b, crowd_prefers_b,
        "model and crowd must agree: uplts {uplts:?}, votes {votes:?}"
    );
}

#[test]
fn visibility_utilities_predict_question_c_direction() {
    // The button metrics' visibility gap and the crowd's question-C verdict
    // must point the same way.
    use kaleidoscope::core::corpus::ExpandButtonMetrics;
    let (store, params) = corpus::expand_button_study(60);
    let doc_a = parse_document(&store.get_text("pages/group-a/index.html").unwrap());
    let doc_b = parse_document(&store.get_text("pages/group-b/index.html").unwrap());
    let ua = ExpandButtonMetrics::extract(&doc_a).unwrap().visibility_utility();
    let ub = ExpandButtonMetrics::extract(&doc_b).unwrap().visibility_utility();
    assert!(ub > ua);

    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(31);
    let prepared =
        Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng).unwrap();
    let recruitment = InLabRecruiter::new(60, 7.0).recruit(&mut rng);
    let outcome = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::Appeal)
        .with_question(params.question[1].text(), QuestionKind::StyleBetter)
        .with_question(params.question[2].text(), QuestionKind::Visibility)
        .in_lab()
        .run(&params, &prepared, &recruitment, &mut rng)
        .unwrap();
    let votes =
        outcome.question_analysis(params.question[2].text(), true).two_version_votes().unwrap();
    assert!(votes.right > votes.left, "B must win visibility: {votes:?}");
}
