//! Page-load replay without any crowd: build a page, schedule its parts,
//! execute the injected reveal script in the virtual browser, compute the
//! visual metrics, and round-trip a "recorded" load back into a spec —
//! the §III-B machinery in isolation.
//!
//! ```text
//! cargo run --example page_load_replay
//! ```

use kaleidoscope::browser::LoadedPage;
use kaleidoscope::html::parse_document;
use kaleidoscope::pageload::metrics::UpltWeights;
use kaleidoscope::pageload::{recorder, Layout, LoadSpec, RevealPlan, Viewport};
use kaleidoscope::singlefile::ResourceStore;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small saved webpage.
    let mut store = ResourceStore::new();
    kaleidoscope::core::corpus::write_wikipedia_article(&mut store, "page", 12.0);
    let single = kaleidoscope::singlefile::Inliner::new(&store).inline("page/index.html")?;
    println!(
        "single-file compression: {} resources inlined, {} -> {} bytes",
        single.report.inlined, single.report.bytes_before, single.report.bytes_after
    );

    // Schedule: navigation at 1 s, everything else at 3 s — the paper's
    // per-locator form of `web_page_load`.
    let spec = LoadSpec::from_json(&serde_json::json!({
        "#mw-navigation": 1000,
        "#content": 3000,
        "#footer": 3000,
    }))?;
    let mut doc = parse_document(&single.html);
    let layout = Layout::compute(&doc, Viewport::desktop());
    let mut rng = StdRng::seed_from_u64(1);
    let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
    plan.inject(&mut doc);
    let final_html = doc.to_html();
    println!("reveal script injected ({} scheduled elements)", plan.len());

    // The virtual browser executes the page's own script.
    let page = LoadedPage::from_html(&final_html);
    let m = page.metrics();
    println!("\nvisual metrics of the replayed load:");
    println!("  time to first paint: {} ms", m.ttfp_ms);
    println!("  above-the-fold time: {} ms", m.atf_ms);
    println!("  speed index:         {:.0} ms", m.speed_index_ms);
    println!("  visual completion:   {} ms", m.plt_ms);
    let uplt = UpltWeights::reader_defaults().uplt_ms(page.timeline(), page.layout());
    println!("  uPLT (reader model): {uplt} ms");

    // Record the observed load back into a replayable spec, as from a
    // filmstrip at 10 fps.
    let recorded = recorder::record_spec(page.document(), page.plan(), 100);
    println!("\nrecorded spec (quantized to 100 ms frames): {recorded}");
    Ok(())
}
