//! The paper's §IV-A experiment: "What is the best font size for online
//! reading?" — five versions of a text-heavy article (10–22 pt), paid crowd
//! vs trusted in-lab participants, with and without quality control.
//!
//! ```text
//! cargo run --release --example font_size_study
//! ```

use kaleidoscope::core::corpus::{self, FONT_STUDY_SIZES};
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind};
use kaleidoscope::crowd::platform::{Channel, InLabRecruiter, JobSpec, Platform};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let question = "Which webpage's font size is more suitable (easier) for reading?";

    // Crowd arm: 100 historically-trustworthy workers at $0.11.
    let (store, params) = corpus::font_size_study(100);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(52);
    let prepared = Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng)?;
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 100, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let crowd = Campaign::new(db, grid)
        .with_question(question, QuestionKind::FontReadability)
        .run(&params, &prepared, &recruitment, &mut rng)?;

    // In-lab arm: 50 friends and colleagues over one week.
    let (store2, params2) = corpus::font_size_study(50);
    let db2 = Database::new();
    let grid2 = GridStore::new();
    let mut rng2 = StdRng::seed_from_u64(47);
    let prepared2 =
        Aggregator::new(db2.clone(), grid2.clone()).prepare(&params2, &store2, &mut rng2)?;
    let lab_recruitment = InLabRecruiter::new(50, 7.0).recruit(&mut rng2);
    let lab = Campaign::new(db2, grid2)
        .with_question(question, QuestionKind::FontReadability)
        .in_lab()
        .run(&params2, &prepared2, &lab_recruitment, &mut rng2)?;

    for (label, outcome, filtered) in [
        ("Kaleidoscope (raw)", &crowd, false),
        ("Kaleidoscope (quality control)", &crowd, true),
        ("In-lab", &lab, true),
    ] {
        let dist = outcome.rank_distribution(question, filtered);
        let order = dist.order_by_top_votes();
        println!(
            "{label:<32} best-font votes: {}",
            order
                .iter()
                .map(|&v| format!("{:.0}pt {:.0}%", FONT_STUDY_SIZES[v], dist.percentage(v, 0)))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }

    println!(
        "\ncrowd kept {}/{} after QC; crowd cost ${:.2} vs in-lab $0 (+ a week of labour)",
        crowd.quality.kept.len(),
        crowd.sessions.len(),
        crowd.cost.total_usd()
    );
    let crowd_rank = crowd.question_analysis(question, true).ranking();
    let lab_rank = lab.question_analysis(question, true).ranking();
    let tau = kaleidoscope::stats::kendall_tau(&crowd_rank, &lab_rank);
    println!("Kendall tau between crowd and in-lab rankings: {tau:.2}");
    Ok(())
}
