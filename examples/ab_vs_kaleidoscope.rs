//! The paper's §IV-B head-to-head: testing an "Expand" button redesign via
//! live A/B testing vs Kaleidoscope, with the same 100-person budget.
//!
//! ```text
//! cargo run --release --example ab_vs_kaleidoscope
//! ```

use kaleidoscope::abtest::{AbTest, Variant};
use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind};
use kaleidoscope::crowd::platform::{Channel, JobSpec, Platform};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Arm 1: classic A/B on the live site -----------------------------
    // ~8.3 visitors/day; click probabilities calibrated to the paper's
    // observed 3/51 vs 6/49.
    let ab = AbTest::new(Variant::new("A", 0.059), Variant::new("B", 0.122), 100.0 / 12.0);
    let mut rng = StdRng::seed_from_u64(361);
    let run = ab.run_until_visitors(100, &mut rng);
    let (a, b) = (run.control_counts(), run.variation_counts());
    println!("A/B testing after {:.1} days:", run.days_elapsed());
    println!(
        "  A: {}/{} clicks ({:.1}%)   B: {}/{} clicks ({:.1}%)",
        a.clicks,
        a.visitors,
        100.0 * a.conversion(),
        b.clicks,
        b.visitors,
        100.0 * b.conversion()
    );
    println!("  p = {:.3} -> inconclusive", run.significance().p_value);

    // --- Arm 2: Kaleidoscope, asking the question directly ---------------
    let (store, params) = corpus::expand_button_study(100);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(42);
    let prepared = Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng)?;
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 100, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let outcome = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::Appeal)
        .with_question(params.question[1].text(), QuestionKind::StyleBetter)
        .with_question(params.question[2].text(), QuestionKind::Visibility)
        .run(&params, &prepared, &recruitment, &mut rng)?;

    println!(
        "\nKaleidoscope after {:.1} hours (cost ${:.2}):",
        outcome.duration_ms() as f64 / 3.6e6,
        outcome.cost.total_usd()
    );
    for q in &params.question {
        let votes =
            outcome.question_analysis(q.text(), false).two_version_votes().expect("two versions");
        let (va, same, vb) = votes.percentages();
        println!(
            "  {:<55} A {va:>3.0}%  Same {same:>3.0}%  B {vb:>3.0}%  (p = {:.1e})",
            q.text(),
            votes.significance().p_value
        );
    }
    println!(
        "\nsame budget, ~{:.0}x faster, and the visibility question is settled decisively.",
        run.days_elapsed() * 24.0 / (outcome.duration_ms() as f64 / 3.6e6)
    );
    Ok(())
}
