//! Replay the same page under five network profiles and compare what each
//! audience would experience — Kaleidoscope's "controlled testing
//! environment" applied to connectivity instead of style.
//!
//! ```text
//! cargo run --example network_profiles
//! ```

use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind, TestParams, WebpageSpec};
use kaleidoscope::crowd::platform::{Channel, JobSpec, Platform};
use kaleidoscope::pageload::network::{article_resources, NetworkProfile, Waterfall};
use kaleidoscope::singlefile::ResourceStore;
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One article, two simulated connections: which version "seems ready
    // to use first" when one loads over cable and the other over 3G?
    let mut store = ResourceStore::new();
    corpus::write_wikipedia_article(&mut store, "pages/cable", 12.0);
    corpus::write_wikipedia_article(&mut store, "pages/slow3g", 12.0);

    let resources = article_resources(
        store.get("pages/cable/index.html").expect("corpus page").data.len(),
        store.get("pages/cable/style.css").expect("corpus css").data.len(),
        &[("#infobox img".to_string(), 140_000)],
    );
    let cable = Waterfall::simulate(&NetworkProfile::cable(), &resources).to_load_spec();
    let slow = Waterfall::simulate(&NetworkProfile::three_g(), &resources).to_load_spec();
    println!("cable schedule:  {cable}");
    println!("3G schedule:     {slow}\n");

    let params = TestParams::new(
        "network-profile-study",
        40,
        vec!["Which version of the webpage seems ready to use first?"],
        vec![
            WebpageSpec::new("pages/cable", "index.html", 0)
                .with_page_load(&cable)
                .with_description("cable waterfall"),
            WebpageSpec::new("pages/slow3g", "index.html", 0)
                .with_page_load(&slow)
                .with_description("3G waterfall"),
        ],
    );

    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let prepared = Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng)?;
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 40, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let outcome = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::ReadyToUse)
        .run(&params, &prepared, &recruitment, &mut rng)?;

    let votes = outcome
        .question_analysis(params.question[0].text(), true)
        .two_version_votes()
        .expect("two versions");
    let (cable_pref, same, slow_pref) = votes.percentages();
    println!(
        "testers say ready first: cable {cable_pref:.0}%  same {same:.0}%  3G {slow_pref:.0}%"
    );
    println!("one-tailed p (3G wins): {:.2e}", votes.significance().p_value);
    println!(
        "\n(unsurprising verdict — the point is that every tester saw the *same*\n\
      simulated connections, wherever they really were.)"
    );
    Ok(())
}
