//! The abstract's opening example: testing a page "with vs without ads"
//! without touching the live site's ad revenue.
//!
//! A/B testing this question on a real site costs real money (the test
//! traffic sees no ads); Kaleidoscope runs it on stored copies, so "it
//! does not impact websites' revenues and normal operations".
//!
//! ```text
//! cargo run --release --example ads_study
//! ```

use kaleidoscope::core::corpus;
use kaleidoscope::core::{Aggregator, Campaign, QuestionKind};
use kaleidoscope::crowd::platform::{Channel, JobSpec, Platform};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (store, params) = corpus::ads_study(80);
    let question = params.question[0].text().to_string();

    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(23);
    let prepared = Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng)?;
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 80, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let outcome = Campaign::new(db, grid).with_question(&question, QuestionKind::AdClutter).run(
        &params,
        &prepared,
        &recruitment,
        &mut rng,
    )?;

    let votes =
        outcome.question_analysis(&question, true).two_version_votes().expect("two versions");
    let (with_ads, same, ad_free) = votes.percentages();
    println!("\"{question}\"");
    println!(
        "  with ads: {with_ads:.0}%   same: {same:.0}%   ad-free: {ad_free:.0}%   (p = {:.1e})",
        votes.significance().p_value
    );
    println!(
        "\nkept {}/{} sessions; total cost ${:.2}; zero impact on the live site's ad revenue.",
        outcome.quality.kept.len(),
        outcome.sessions.len(),
        outcome.cost.total_usd()
    );

    // The per-segment view: do text-focused readers mind more?
    let records = outcome.kept_records();
    let breakdown = kaleidoscope::core::DemographicBreakdown::split(
        &records,
        &outcome.prepared,
        &question,
        "age",
    );
    println!("\nby age bracket:");
    for (facet, v) in &breakdown.segments {
        if v.total() == 0 {
            continue;
        }
        let (_, _, b) = v.percentages();
        println!("  {facet:<12} ad-free preferred by {b:.0}% of {} votes", v.total());
    }
    Ok(())
}
