//! Run the Kaleidoscope core server for real: prepares a test, binds the
//! HTTP API on an ephemeral port, and exercises it with the built-in
//! keep-alive client — the wire-level view of Fig. 2.
//!
//! ```text
//! cargo run --example live_server
//! ```

use kaleidoscope::core::corpus;
use kaleidoscope::core::Aggregator;
use kaleidoscope::server::api::CoreServerApi;
use kaleidoscope::server::{HttpServer, Session};
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (store, params) = corpus::expand_button_study(10);
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let prepared = Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng)?;

    let api = CoreServerApi::new(db, grid);
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 4)?;
    let addr = server.local_addr();
    println!("core server listening on http://{addr}");

    // One keep-alive session carries the whole conversation below.
    let mut session = Session::new(addr);

    // Health check.
    let health = session.get("/healthz")?;
    println!("GET /healthz -> {}", health.text());

    // What the crowdsourcing platform receives.
    let job = session.post_json(
        "/api/platform/jobs",
        &json!({"test_id": prepared.test_id, "reward_usd": 0.11, "quota": 100}),
    )?;
    println!("POST /api/platform/jobs -> {}", job.text());

    // What the browser extension downloads.
    let pages = session.get(&format!("/api/tests/{}/pages", prepared.test_id))?;
    println!(
        "GET /api/tests/{}/pages -> {} pages",
        prepared.test_id,
        pages.json_body()?["pages"].as_array().map(Vec::len).unwrap_or(0)
    );
    let first =
        session.get(&format!("/api/tests/{}/pages/integrated-000.html", prepared.test_id))?;
    println!("GET integrated-000.html -> {} bytes of HTML", first.body.len());

    // What a participant uploads.
    let upload = session.post_json(
        &format!("/api/tests/{}/responses", prepared.test_id),
        &json!({
            "contributor_id": "demo-worker",
            "answers": { params.question[2].text(): "Right" },
            "pages": [],
        }),
    )?;
    println!("POST responses -> {}", upload.text());

    // The concluded results.
    let results = session.get(&format!("/api/tests/{}/results", prepared.test_id))?;
    println!("GET results -> {}", results.text());

    let stats = session.stats();
    println!(
        "session stats: {} requests over {} connection(s), {} keep-alive reuses",
        stats.requests, stats.connects, stats.reuses
    );

    let report = server.shutdown();
    println!(
        "server drained in {:?} ({} of {} workers joined)",
        report.duration, report.workers_joined, report.workers_total
    );
    Ok(())
}
