//! Quickstart: test two versions of a webpage with a simulated crowd in
//! under a minute of code.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kaleidoscope::core::{Aggregator, Campaign, QuestionKind, TestParams, WebpageSpec};
use kaleidoscope::crowd::platform::{Channel, JobSpec, Platform};
use kaleidoscope::singlefile::ResourceStore;
use kaleidoscope::store::{Database, GridStore};
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Your test webpages: saved folders in a (virtual) directory. Here,
    //    the same landing page with a small vs large main font.
    let mut store = ResourceStore::new();
    for (folder, pt) in [("pages/small", 11.0), ("pages/large", 16.0)] {
        kaleidoscope::core::corpus::write_wikipedia_article(&mut store, folder, pt);
    }

    // 2. The Table-I test parameters: versions, question, headcount.
    let params = TestParams::new(
        "quickstart",
        30,
        vec!["Which webpage's font size is more suitable (easier) for reading?"],
        vec![
            WebpageSpec::new("pages/small", "index.html", 2000).with_description("11pt body text"),
            WebpageSpec::new("pages/large", "index.html", 2000).with_description("16pt body text"),
        ],
    );
    println!("test parameters:\n{}\n", params.to_json());

    // 3. Aggregate: single-file compression, reveal-script injection,
    //    side-by-side integrated pages, control pages.
    let db = Database::new();
    let grid = GridStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let prepared = Aggregator::new(db.clone(), grid.clone()).prepare(&params, &store, &mut rng)?;
    println!(
        "aggregator produced {} integrated pages ({} real, 2 control)",
        prepared.pages.len(),
        prepared.real_pairs().len()
    );

    // 4. Recruit 30 crowd workers and run the campaign.
    let recruitment = Platform.post_job(
        &JobSpec::new(&params.test_id, 0.11, 30, Channel::HistoricallyTrustworthy),
        &mut rng,
    );
    let outcome = Campaign::new(db, grid)
        .with_question(params.question[0].text(), QuestionKind::FontReadability)
        .run(&params, &prepared, &recruitment, &mut rng)?;

    // 5. Read the verdict.
    let votes = outcome
        .question_analysis(params.question[0].text(), true)
        .two_version_votes()
        .expect("two versions");
    let (small, same, large) = votes.percentages();
    println!(
        "\nafter quality control ({} of {} sessions kept):",
        outcome.quality.kept.len(),
        outcome.sessions.len()
    );
    println!("  prefer 11pt: {small:.0}%   same: {same:.0}%   prefer 16pt: {large:.0}%");
    let sig = votes.significance();
    println!("  one-tailed p that 16pt reads better: {:.3}", sig.p_value);
    println!(
        "\ncampaign cost ${:.2}, wall time {:.1} h",
        outcome.cost.total_usd(),
        outcome.duration_ms() as f64 / 3.6e6
    );
    Ok(())
}
