//! Network profiles: derive a reveal schedule from connection conditions.
//!
//! §I/§III-A: storing test pages locally "allows fine-grained control on
//! the 'speed' at which Web objects are loaded thus emulating different
//! testing conditions (e.g., 'network profiles')". This module closes that
//! loop: given the resources of a saved page and a [`NetworkProfile`], a
//! waterfall simulator computes when each object would finish downloading
//! over that connection, and emits the corresponding per-selector
//! [`LoadSpec`] — which the aggregator then injects like any hand-written
//! schedule.

use crate::spec::{LoadSpec, SelectorTiming};

/// A simulated connection.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name.
    pub name: String,
    /// Round-trip time per request, milliseconds.
    pub rtt_ms: f64,
    /// Downstream bandwidth, kilobits per second.
    pub bandwidth_kbps: f64,
    /// Number of parallel connections the browser opens (classic HTTP/1.1
    /// browsers use 6 per origin).
    pub parallel_connections: usize,
}

impl NetworkProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rtt/bandwidth or zero connections.
    pub fn new(name: &str, rtt_ms: f64, bandwidth_kbps: f64, parallel: usize) -> Self {
        assert!(rtt_ms > 0.0 && bandwidth_kbps > 0.0, "rtt and bandwidth must be positive");
        assert!(parallel > 0, "need at least one connection");
        Self { name: name.to_string(), rtt_ms, bandwidth_kbps, parallel_connections: parallel }
    }

    /// Fast broadband: 10 ms RTT, 100 Mbit/s.
    pub fn fiber() -> Self {
        Self::new("fiber", 10.0, 100_000.0, 6)
    }

    /// Typical cable: 28 ms RTT, 20 Mbit/s.
    pub fn cable() -> Self {
        Self::new("cable", 28.0, 20_000.0, 6)
    }

    /// Fast 4G: 70 ms RTT, 9 Mbit/s.
    pub fn lte() -> Self {
        Self::new("4g", 70.0, 9_000.0, 6)
    }

    /// Regular 3G: 300 ms RTT, 1.6 Mbit/s.
    pub fn three_g() -> Self {
        Self::new("3g", 300.0, 1_600.0, 6)
    }

    /// 2G/EDGE-class: 800 ms RTT, 280 kbit/s.
    pub fn two_g() -> Self {
        Self::new("2g", 800.0, 280.0, 6)
    }

    /// Time to fetch one resource of `bytes` over an idle connection:
    /// one RTT of latency plus serialized transfer time.
    pub fn fetch_ms(&self, bytes: usize) -> f64 {
        self.rtt_ms + (bytes as f64 * 8.0 / 1000.0) / self.bandwidth_kbps * 1000.0
    }
}

/// One object of the page, as the waterfall sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfallResource {
    /// The CSS locator of the element(s) this resource unlocks
    /// (e.g. `#infobox img` for an image, `body` for the main document).
    pub selector: String,
    /// Transfer size in bytes.
    pub bytes: usize,
    /// Whether the resource blocks first paint (the main document and
    /// stylesheets do; images do not).
    pub render_blocking: bool,
}

/// The computed waterfall: per-resource completion times plus the derived
/// reveal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Waterfall {
    /// `(selector, completion_ms)` per resource, in completion order.
    pub completions: Vec<(String, u64)>,
    /// When the render-blocking set finished (first-paint gate).
    pub blocking_done_ms: u64,
}

impl Waterfall {
    /// Simulates the download of `resources` over `profile` as an HTTP/1.1
    /// waterfall.
    ///
    /// Render-blocking resources are fetched first (in input order), then
    /// the rest. The parallel connections *share* the link bandwidth —
    /// transfers are serialized at the link rate — so parallelism only
    /// overlaps the per-request round trips: a resource in request round
    /// `r` (rounds of `parallel_connections` requests each) completes at
    /// `(r + 1) · RTT + cumulative_bytes / bandwidth`. Simplified (no
    /// priorities or preloading) but with the right shape: latency-bound on
    /// many small objects, bandwidth-bound on large ones.
    pub fn simulate(profile: &NetworkProfile, resources: &[WaterfallResource]) -> Self {
        let mut completions: Vec<(String, u64)> = Vec::with_capacity(resources.len());
        let mut blocking_done = 0.0f64;
        let mut transferred_ms = 0.0f64;
        let ordered = resources
            .iter()
            .filter(|r| r.render_blocking)
            .chain(resources.iter().filter(|r| !r.render_blocking));
        for (idx, res) in ordered.enumerate() {
            let round = idx / profile.parallel_connections;
            transferred_ms += (res.bytes as f64 * 8.0 / 1000.0) / profile.bandwidth_kbps * 1000.0;
            let done = (round + 1) as f64 * profile.rtt_ms + transferred_ms;
            if res.render_blocking {
                blocking_done = blocking_done.max(done);
            }
            completions.push((res.selector.clone(), done.round() as u64));
        }
        completions.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Self { completions, blocking_done_ms: blocking_done.round() as u64 }
    }

    /// Simulates an HTTP/2-style download: one multiplexed connection, a
    /// single connection-setup round trip, and all resources sharing the
    /// link bandwidth in priority order (render-blocking first). Compared
    /// to the HTTP/1.1 waterfall this saves one RTT *per object* — the
    /// difference Kaleidoscope's page-load replay can expose to real
    /// testers ("comparing http/1.1 and http/2.0", §IV-C).
    pub fn simulate_h2(profile: &NetworkProfile, resources: &[WaterfallResource]) -> Self {
        let mut completions: Vec<(String, u64)> = Vec::with_capacity(resources.len());
        let mut blocking_done = 0.0f64;
        let mut elapsed = profile.rtt_ms; // one setup round trip for all
        let ordered = resources
            .iter()
            .filter(|r| r.render_blocking)
            .chain(resources.iter().filter(|r| !r.render_blocking));
        for res in ordered {
            elapsed += (res.bytes as f64 * 8.0 / 1000.0) / profile.bandwidth_kbps * 1000.0;
            if res.render_blocking {
                blocking_done = blocking_done.max(elapsed);
            }
            completions.push((res.selector.clone(), elapsed.round() as u64));
        }
        completions.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Self { completions, blocking_done_ms: blocking_done.round() as u64 }
    }

    /// Converts the waterfall into a per-selector [`LoadSpec`]: an element
    /// appears when its resource finished, but never before the
    /// render-blocking set is done (the browser cannot paint earlier).
    pub fn to_load_spec(&self) -> LoadSpec {
        let timings = self
            .completions
            .iter()
            .map(|(selector, done)| SelectorTiming {
                selector: selector.clone(),
                at_ms: (*done).max(self.blocking_done_ms),
            })
            .collect();
        LoadSpec::PerSelector(timings)
    }

    /// Total time until everything is fetched (ms).
    pub fn total_ms(&self) -> u64 {
        self.completions.iter().map(|&(_, t)| t).max().unwrap_or(0)
    }
}

/// The default resource breakdown of a page like the corpus article: the
/// HTML document and stylesheet are render-blocking; images are not.
pub fn article_resources(
    html_bytes: usize,
    css_bytes: usize,
    images: &[(String, usize)],
) -> Vec<WaterfallResource> {
    let mut out = vec![
        WaterfallResource {
            selector: "body".to_string(),
            bytes: html_bytes,
            render_blocking: true,
        },
        WaterfallResource {
            selector: "#content".to_string(),
            bytes: css_bytes,
            render_blocking: true,
        },
    ];
    for (selector, bytes) in images {
        out.push(WaterfallResource {
            selector: selector.clone(),
            bytes: *bytes,
            render_blocking: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_resources() -> Vec<WaterfallResource> {
        article_resources(
            40_000,
            8_000,
            &[("#infobox img".to_string(), 120_000), ("#content img".to_string(), 60_000)],
        )
    }

    #[test]
    fn fetch_time_decomposes() {
        let p = NetworkProfile::new("t", 100.0, 1_000.0, 6);
        // 100 ms RTT + 1000 bytes = 8 kbit over 1000 kbps = 8 ms.
        assert!((p.fetch_ms(1000) - 108.0).abs() < 1e-9);
        // Zero bytes still costs a round trip.
        assert!((p.fetch_ms(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn slower_profiles_are_strictly_slower() {
        let resources = sample_resources();
        let mut last = 0u64;
        for p in [
            NetworkProfile::fiber(),
            NetworkProfile::cable(),
            NetworkProfile::lte(),
            NetworkProfile::three_g(),
            NetworkProfile::two_g(),
        ] {
            let w = Waterfall::simulate(&p, &resources);
            assert!(w.total_ms() > last, "{} not slower than previous", p.name);
            last = w.total_ms();
        }
    }

    #[test]
    fn blocking_resources_gate_first_paint() {
        let w = Waterfall::simulate(&NetworkProfile::three_g(), &sample_resources());
        let spec = w.to_load_spec();
        match &spec {
            LoadSpec::PerSelector(ts) => {
                for t in ts {
                    assert!(
                        t.at_ms >= w.blocking_done_ms,
                        "{} revealed before render-blocking set finished",
                        t.selector
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parallelism_helps_on_many_objects() {
        let many: Vec<WaterfallResource> = (0..12)
            .map(|i| WaterfallResource {
                selector: format!("#img-{i}"),
                bytes: 10_000,
                render_blocking: false,
            })
            .collect();
        let serial = NetworkProfile::new("serial", 100.0, 10_000.0, 1);
        let parallel = NetworkProfile::new("parallel", 100.0, 10_000.0, 6);
        let ws = Waterfall::simulate(&serial, &many);
        let wp = Waterfall::simulate(&parallel, &many);
        assert!(
            wp.total_ms() * 3 < ws.total_ms(),
            "6 lanes should be much faster: {} vs {}",
            wp.total_ms(),
            ws.total_ms()
        );
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        // One huge image: halving bandwidth roughly doubles total time.
        let big = vec![WaterfallResource {
            selector: "#hero".to_string(),
            bytes: 2_000_000,
            render_blocking: false,
        }];
        let fast = NetworkProfile::new("fast", 10.0, 10_000.0, 6);
        let slow = NetworkProfile::new("slow", 10.0, 5_000.0, 6);
        let tf = Waterfall::simulate(&fast, &big).total_ms() as f64;
        let ts = Waterfall::simulate(&slow, &big).total_ms() as f64;
        assert!((ts / tf - 2.0).abs() < 0.1, "ratio {}", ts / tf);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let w = Waterfall::simulate(&NetworkProfile::cable(), &sample_resources());
        let spec = w.to_load_spec();
        let back = LoadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.duration_ms(), spec.duration_ms());
    }

    #[test]
    fn completions_sorted() {
        let w = Waterfall::simulate(&NetworkProfile::lte(), &sample_resources());
        assert!(w.completions.windows(2).all(|p| p[0].1 <= p[1].1));
        assert_eq!(w.completions.len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn profile_rejects_zero_bandwidth() {
        let _ = NetworkProfile::new("x", 10.0, 0.0, 1);
    }

    #[test]
    fn h2_beats_h1_on_many_small_objects() {
        // 30 small objects on a high-latency link: h1 pays an RTT per
        // object (amortized over 6 lanes); h2 pays one RTT total.
        let many: Vec<WaterfallResource> = (0..30)
            .map(|i| WaterfallResource {
                selector: format!("#o{i}"),
                bytes: 4_000,
                render_blocking: false,
            })
            .collect();
        let profile = NetworkProfile::new("satellite", 400.0, 8_000.0, 6);
        let h1 = Waterfall::simulate(&profile, &many);
        let h2 = Waterfall::simulate_h2(&profile, &many);
        assert!(h2.total_ms() * 2 < h1.total_ms(), "h2 {} vs h1 {}", h2.total_ms(), h1.total_ms());
    }

    #[test]
    fn h2_gains_shrink_for_one_large_object() {
        // A single big transfer is bandwidth-bound: protocols tie within
        // one round trip.
        let big = vec![WaterfallResource {
            selector: "#hero".into(),
            bytes: 1_000_000,
            render_blocking: false,
        }];
        let profile = NetworkProfile::cable();
        let h1 = Waterfall::simulate(&profile, &big);
        let h2 = Waterfall::simulate_h2(&profile, &big);
        assert!(h2.total_ms() <= h1.total_ms());
        assert!(h1.total_ms() - h2.total_ms() <= profile.rtt_ms as u64 + 1);
    }

    #[test]
    fn h2_respects_blocking_gate() {
        let w = Waterfall::simulate_h2(&NetworkProfile::three_g(), &sample_resources());
        match w.to_load_spec() {
            LoadSpec::PerSelector(ts) => {
                assert!(ts.iter().all(|t| t.at_ms >= w.blocking_done_ms));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
