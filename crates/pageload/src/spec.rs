//! The `web_page_load` test parameter (paper Table I).
//!
//! Two forms, exactly as in §III-B:
//!
//! * a plain integer — "all DOMs will be displayed randomly within 2000
//!   milliseconds when `web_page_load` is set to 2000";
//! * per-locator timings — `["#main": 1000, "#content p": 1500]` shows
//!   `#main` after 1 s and every `#content p` after 1.5 s.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;

/// One locator → reveal-time entry of the detailed form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectorTiming {
    /// CSS locator of the DOM element(s).
    pub selector: String,
    /// Reveal time in milliseconds from navigation start.
    pub at_ms: u64,
}

/// The page-load simulation parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadSpec {
    /// Every element appears at an independent uniform-random time within
    /// the given window (milliseconds).
    Uniform(u64),
    /// Specific locators appear at specific times; elements not matched by
    /// any locator appear immediately (t = 0).
    PerSelector(Vec<SelectorTiming>),
}

impl LoadSpec {
    /// Total duration of the schedule in milliseconds (the time after which
    /// no further visual change happens).
    pub fn duration_ms(&self) -> u64 {
        match self {
            LoadSpec::Uniform(t) => *t,
            LoadSpec::PerSelector(timings) => timings.iter().map(|t| t.at_ms).max().unwrap_or(0),
        }
    }

    /// Parses the JSON forms used in test parameters: a number, or an
    /// object/array of `selector: ms` entries.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the JSON shape is neither form.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        match value {
            Value::Number(n) => n
                .as_u64()
                .map(LoadSpec::Uniform)
                .ok_or_else(|| SpecError::new("page load must be a non-negative integer")),
            Value::Object(map) => {
                let mut timings = Vec::with_capacity(map.len());
                for (selector, v) in map {
                    let at_ms = v.as_u64().ok_or_else(|| {
                        SpecError::new(format!("timing for '{selector}' must be an integer"))
                    })?;
                    timings.push(SelectorTiming { selector: selector.clone(), at_ms });
                }
                Ok(LoadSpec::PerSelector(timings))
            }
            Value::Array(items) => {
                // The paper writes the detailed form as an array of
                // single-entry objects.
                let mut timings = Vec::with_capacity(items.len());
                for item in items {
                    let obj = item.as_object().ok_or_else(|| {
                        SpecError::new("array form must contain selector:ms objects")
                    })?;
                    for (selector, v) in obj {
                        let at_ms = v.as_u64().ok_or_else(|| {
                            SpecError::new(format!("timing for '{selector}' must be an integer"))
                        })?;
                        timings.push(SelectorTiming { selector: selector.clone(), at_ms });
                    }
                }
                Ok(LoadSpec::PerSelector(timings))
            }
            _ => Err(SpecError::new("page load must be a number or selector map")),
        }
    }

    /// Serializes back to the JSON parameter form.
    pub fn to_json(&self) -> Value {
        match self {
            LoadSpec::Uniform(t) => Value::from(*t),
            LoadSpec::PerSelector(timings) => {
                let mut map = serde_json::Map::new();
                for t in timings {
                    map.insert(t.selector.clone(), Value::from(t.at_ms));
                }
                Value::Object(map)
            }
        }
    }
}

impl Default for LoadSpec {
    /// No simulated delay: everything visible at t = 0.
    fn default() -> Self {
        LoadSpec::Uniform(0)
    }
}

impl fmt::Display for LoadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadSpec::Uniform(t) => write!(f, "uniform({t}ms)"),
            LoadSpec::PerSelector(ts) => {
                write!(f, "per-selector(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}@{}ms", t.selector, t.at_ms)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Error for malformed `web_page_load` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid web_page_load: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn uniform_from_number() {
        let spec = LoadSpec::from_json(&json!(2000)).unwrap();
        assert_eq!(spec, LoadSpec::Uniform(2000));
        assert_eq!(spec.duration_ms(), 2000);
    }

    #[test]
    fn per_selector_from_object() {
        let spec = LoadSpec::from_json(&json!({"#main": 1000, "#content p": 1500})).unwrap();
        match &spec {
            LoadSpec::PerSelector(ts) => {
                assert_eq!(ts.len(), 2);
                assert!(ts.iter().any(|t| t.selector == "#main" && t.at_ms == 1000));
                assert!(ts.iter().any(|t| t.selector == "#content p" && t.at_ms == 1500));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(spec.duration_ms(), 1500);
    }

    #[test]
    fn per_selector_from_paper_array_form() {
        // The paper writes: ["#main":1000, "#content p":1500] — as JSON,
        // an array of single-entry objects.
        let spec = LoadSpec::from_json(&json!([{"#main": 1000}, {"#content p": 1500}])).unwrap();
        assert_eq!(spec.duration_ms(), 1500);
    }

    #[test]
    fn json_roundtrip() {
        for spec in [
            LoadSpec::Uniform(3000),
            LoadSpec::PerSelector(vec![
                SelectorTiming { selector: "#nav".into(), at_ms: 2000 },
                SelectorTiming { selector: "#main".into(), at_ms: 4000 },
            ]),
        ] {
            let back = LoadSpec::from_json(&spec.to_json()).unwrap();
            // JSON objects do not preserve entry order; compare as sets.
            match (back, spec) {
                (LoadSpec::Uniform(a), LoadSpec::Uniform(b)) => assert_eq!(a, b),
                (LoadSpec::PerSelector(mut a), LoadSpec::PerSelector(mut b)) => {
                    a.sort_by(|x, y| x.selector.cmp(&y.selector));
                    b.sort_by(|x, y| x.selector.cmp(&y.selector));
                    assert_eq!(a, b);
                }
                (a, b) => panic!("shape changed: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn rejects_negative_and_wrong_types() {
        assert!(LoadSpec::from_json(&json!(-5)).is_err());
        assert!(LoadSpec::from_json(&json!("2000")).is_err());
        assert!(LoadSpec::from_json(&json!({"#a": "soon"})).is_err());
        assert!(LoadSpec::from_json(&json!([1, 2])).is_err());
    }

    #[test]
    fn default_is_instant() {
        assert_eq!(LoadSpec::default().duration_ms(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(LoadSpec::Uniform(2000).to_string(), "uniform(2000ms)");
        let s = LoadSpec::PerSelector(vec![SelectorTiming { selector: "#m".into(), at_ms: 10 }]);
        assert_eq!(s.to_string(), "per-selector(#m@10ms)");
    }

    #[test]
    fn empty_per_selector_duration_zero() {
        assert_eq!(LoadSpec::PerSelector(vec![]).duration_ms(), 0);
    }
}
