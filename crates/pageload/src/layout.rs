//! Approximate layout: assigns each element a box (top, height, area) and a
//! content class.
//!
//! The visual page-load metrics (Speed Index, ATF, uPLT) are integrals over
//! *visible area*, so the simulator needs per-element geometry. Real
//! Kaleidoscope gets this for free from the browser; we estimate it with a
//! simple vertical flow model: block elements stack, text height follows
//! from its length at a fixed characters-per-line, and images use their
//! `width`/`height` attributes (or a default). The estimate does not need
//! to be pixel-faithful — only the *relative* areas and fold positions
//! matter for the metrics' shape.

use kscope_html::{Document, NodeId, NodeKind};
use std::collections::HashMap;

/// Viewport geometry used by the flow model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// CSS pixels across.
    pub width: f64,
    /// Fold position: content above this y-coordinate is "above the fold".
    pub fold_y: f64,
}

impl Viewport {
    /// The default desktop viewport (1280 px wide, fold at 800 px).
    pub fn desktop() -> Self {
        Self { width: 1280.0, fold_y: 800.0 }
    }

    /// A phone-ish viewport.
    pub fn mobile() -> Self {
        Self { width: 390.0, fold_y: 740.0 }
    }
}

impl Default for Viewport {
    fn default() -> Self {
        Self::desktop()
    }
}

/// Coarse content classification used by the uPLT weighting model
/// (the paper's case study contrasts the navigation bar with the main text
/// content).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentClass {
    /// Navigation chrome: `nav`, elements under a `nav`/`header`.
    Navigation,
    /// Main textual content: paragraphs, headings, articles.
    MainText,
    /// Images and other media.
    Media,
    /// Everything else (footers, sidebars, infoboxes, scripts' containers).
    Auxiliary,
}

/// The computed box of one element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutBox {
    /// Top edge (CSS px from document top).
    pub top: f64,
    /// Height in CSS px.
    pub height: f64,
    /// Occupied area in px².
    pub area: f64,
    /// Portion of the area above the fold, in px².
    pub above_fold_area: f64,
    /// Content classification.
    pub class: ContentClass,
}

/// Layout of a whole document: per-element boxes plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    boxes: HashMap<usize, LayoutBox>,
    viewport: Viewport,
    total_area: f64,
    total_above_fold: f64,
}

const LINE_HEIGHT: f64 = 22.0;
const CHAR_WIDTH: f64 = 8.0;
const DEFAULT_IMG_W: f64 = 300.0;
const DEFAULT_IMG_H: f64 = 200.0;
const NAV_HEIGHT: f64 = 60.0;

impl Layout {
    /// Computes the layout of a document under a viewport.
    pub fn compute(doc: &Document, viewport: Viewport) -> Self {
        let mut layout =
            Layout { boxes: HashMap::new(), viewport, total_area: 0.0, total_above_fold: 0.0 };
        let mut y = 0.0;
        for &child in doc.children(doc.root()) {
            y += layout.flow(doc, child, y, ContentClass::Auxiliary);
        }
        layout.total_area = layout.boxes.values().map(|b| b.area).sum();
        layout.total_above_fold = layout.boxes.values().map(|b| b.above_fold_area).sum();
        layout
    }

    /// Flows one node starting at `top`; returns the height it consumes.
    fn flow(&mut self, doc: &Document, id: NodeId, top: f64, inherited: ContentClass) -> f64 {
        match &doc.node(id).kind {
            NodeKind::Element(el) => {
                if matches!(
                    el.name.as_str(),
                    "script" | "style" | "head" | "meta" | "link" | "title"
                ) {
                    return 0.0;
                }
                // display:none subtrees are not painted at all (the
                // group page's collapsed sections, for example).
                if doc.style_property(id, "display").map(|d| d == "none").unwrap_or(false) {
                    return 0.0;
                }
                let class = classify(el.name.as_str(), el.attr("id"), el.attr("class"))
                    .unwrap_or(inherited);
                let mut height = base_height(el.name.as_str());
                if el.name == "img" {
                    let w = attr_px(el.attr("width")).unwrap_or(DEFAULT_IMG_W);
                    let h = attr_px(el.attr("height")).unwrap_or(DEFAULT_IMG_H);
                    let area = w * h;
                    let above = overlap_above_fold(top, h, self.viewport.fold_y) * w;
                    self.boxes.insert(
                        id.index(),
                        LayoutBox {
                            top,
                            height: h,
                            area,
                            above_fold_area: above,
                            class: ContentClass::Media,
                        },
                    );
                    return h;
                }
                let mut child_y = top + height;
                for &child in doc.children(id) {
                    child_y += self.flow(doc, child, child_y, class);
                }
                height = child_y - top;
                if height == 0.0 && is_block(el.name.as_str()) {
                    // Empty block elements still paint a sliver.
                    height = 2.0;
                }
                let area = self.viewport.width * height;
                let above =
                    overlap_above_fold(top, height, self.viewport.fold_y) * self.viewport.width;
                self.boxes.insert(
                    id.index(),
                    LayoutBox { top, height, area, above_fold_area: above, class },
                );
                height
            }
            NodeKind::Text(t) => {
                // Free-standing text flows like an anonymous block.
                let len = t.trim().len();
                if len == 0 {
                    return 0.0;
                }
                let chars_per_line = (self.viewport.width / CHAR_WIDTH).max(1.0);
                (len as f64 / chars_per_line).ceil() * LINE_HEIGHT
            }
            _ => 0.0,
        }
    }

    /// Box of one element, if it was laid out.
    pub fn get(&self, id: NodeId) -> Option<&LayoutBox> {
        self.boxes.get(&id.index())
    }

    /// Total painted area of the page (px²). Note that nested elements
    /// overlap, as in real pages; the metrics normalize by this total.
    pub fn total_area(&self) -> f64 {
        self.total_area
    }

    /// Total painted area above the fold (px²).
    pub fn total_above_fold(&self) -> f64 {
        self.total_above_fold
    }

    /// The viewport the layout used.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// Number of elements with boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether no element got a box.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Sum of area per content class — the uPLT model's denominators.
    pub fn area_by_class(&self) -> HashMap<ContentClass, f64> {
        let mut out = HashMap::new();
        for b in self.boxes.values() {
            *out.entry(b.class).or_insert(0.0) += b.area;
        }
        out
    }
}

fn overlap_above_fold(top: f64, height: f64, fold: f64) -> f64 {
    (fold - top).clamp(0.0, height)
}

fn attr_px(v: Option<&str>) -> Option<f64> {
    v.and_then(|s| s.trim().trim_end_matches("px").parse::<f64>().ok()).filter(|&x| x > 0.0)
}

fn base_height(tag: &str) -> f64 {
    match tag {
        "nav" => NAV_HEIGHT,
        "hr" | "br" => 10.0,
        "h1" => 40.0,
        "h2" => 32.0,
        "h3" => 26.0,
        _ => 0.0,
    }
}

fn is_block(tag: &str) -> bool {
    matches!(
        tag,
        "div"
            | "p"
            | "section"
            | "article"
            | "aside"
            | "footer"
            | "header"
            | "nav"
            | "main"
            | "ul"
            | "ol"
            | "li"
            | "table"
            | "tr"
            | "td"
            | "th"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "blockquote"
            | "pre"
            | "form"
            | "body"
            | "html"
    )
}

/// Classifies an element by tag/id/class hints; `None` means inherit.
fn classify(tag: &str, id: Option<&str>, class: Option<&str>) -> Option<ContentClass> {
    let hint = |s: &str| {
        let s = s.to_ascii_lowercase();
        if s.contains("nav") || s.contains("menu") || s.contains("toolbar") {
            Some(ContentClass::Navigation)
        } else if s.contains("content")
            || s.contains("main")
            || s.contains("article")
            || s.contains("body-text")
        {
            Some(ContentClass::MainText)
        } else if s.contains("infobox") || s.contains("sidebar") || s.contains("footer") {
            Some(ContentClass::Auxiliary)
        } else {
            None
        }
    };
    match tag {
        "nav" => Some(ContentClass::Navigation),
        "header" => Some(ContentClass::Navigation),
        "p" | "article" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" | "blockquote" => {
            Some(ContentClass::MainText)
        }
        "img" | "video" | "picture" | "canvas" => Some(ContentClass::Media),
        "footer" | "aside" => Some(ContentClass::Auxiliary),
        _ => id.and_then(hint).or_else(|| class.and_then(hint)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_html::parse_document;

    #[test]
    fn vertical_stacking() {
        let doc = parse_document("<div><p>aaaa</p><p>bbbb</p></div>");
        let l = Layout::compute(&doc, Viewport::desktop());
        let ps = doc.elements();
        let p1 = ps.iter().copied().find(|&id| doc.element(id).unwrap().name == "p").unwrap();
        let p2 = ps.iter().copied().rev().find(|&id| doc.element(id).unwrap().name == "p").unwrap();
        let b1 = l.get(p1).unwrap();
        let b2 = l.get(p2).unwrap();
        assert!(b2.top >= b1.top + b1.height, "second paragraph below first");
    }

    #[test]
    fn longer_text_is_taller() {
        let short = parse_document("<p>tiny</p>");
        let long_text = "x".repeat(2000);
        let long = parse_document(&format!("<p>{long_text}</p>"));
        let ls = Layout::compute(&short, Viewport::desktop());
        let ll = Layout::compute(&long, Viewport::desktop());
        let ps = short.find_tag("p").unwrap();
        let pl = long.find_tag("p").unwrap();
        assert!(ll.get(pl).unwrap().height > ls.get(ps).unwrap().height);
    }

    #[test]
    fn image_uses_attrs() {
        let doc = parse_document(r#"<img width="100" height="50">"#);
        let img = doc.find_tag("img").unwrap();
        let l = Layout::compute(&doc, Viewport::desktop());
        let b = l.get(img).unwrap();
        assert_eq!(b.area, 5000.0);
        assert_eq!(b.class, ContentClass::Media);
    }

    #[test]
    fn image_default_size() {
        let doc = parse_document("<img>");
        let img = doc.find_tag("img").unwrap();
        let l = Layout::compute(&doc, Viewport::desktop());
        assert_eq!(l.get(img).unwrap().area, DEFAULT_IMG_W * DEFAULT_IMG_H);
    }

    #[test]
    fn above_fold_split() {
        // A very tall element straddles the fold.
        let text = "y".repeat(20_000);
        let doc = parse_document(&format!("<div>{text}</div>"));
        let div = doc.find_tag("div").unwrap();
        let l = Layout::compute(&doc, Viewport::desktop());
        let b = l.get(div).unwrap();
        assert!(b.height > 800.0);
        assert!(b.above_fold_area > 0.0);
        assert!(b.above_fold_area < b.area);
        // Above-fold part is exactly fold_y * width for a top-anchored box.
        assert!((b.above_fold_area - 800.0 * 1280.0).abs() < 1.0);
    }

    #[test]
    fn classification() {
        let doc = parse_document(
            r#"<nav><a>home</a></nav><div id="mw-content-text"><p>body</p></div>
               <div class="infobox">box</div><footer>f</footer>"#,
        );
        let l = Layout::compute(&doc, Viewport::desktop());
        let by_name = |tag: &str| l.get(doc.find_tag(tag).unwrap()).unwrap().class;
        assert_eq!(by_name("nav"), ContentClass::Navigation);
        assert_eq!(by_name("p"), ContentClass::MainText);
        assert_eq!(by_name("footer"), ContentClass::Auxiliary);
        // The anchor inside nav inherits Navigation.
        let a = doc.find_tag("a").unwrap();
        assert_eq!(l.get(a).unwrap().class, ContentClass::Navigation);
    }

    #[test]
    fn display_none_subtrees_are_not_painted() {
        let doc = parse_document(
            "<div id='visible'><p>shown</p></div>\
             <div id='hidden' style='display:none'><p>not painted</p></div>",
        );
        let l = Layout::compute(&doc, Viewport::desktop());
        assert!(l.get(doc.get_element_by_id("visible").unwrap()).is_some());
        assert!(l.get(doc.get_element_by_id("hidden").unwrap()).is_none());
        // Children of the hidden subtree have no boxes either.
        let hidden_p = doc
            .elements()
            .into_iter()
            .find(|&id| {
                doc.element(id).map(|e| e.name == "p").unwrap_or(false)
                    && doc.text_content(id) == "not painted"
            })
            .unwrap();
        assert!(l.get(hidden_p).is_none());
    }

    #[test]
    fn head_children_are_not_painted() {
        let doc =
            parse_document("<head><title>t</title><style>x{}</style></head><body><p>a</p></body>");
        let l = Layout::compute(&doc, Viewport::desktop());
        assert!(l.get(doc.find_tag("title").unwrap()).is_none());
        assert!(l.get(doc.find_tag("style").unwrap()).is_none());
        assert!(l.get(doc.find_tag("p").unwrap()).is_some());
    }

    #[test]
    fn totals_accumulate() {
        let doc = parse_document("<p>hello world</p><img width=10 height=10>");
        let l = Layout::compute(&doc, Viewport::desktop());
        assert!(l.total_area() > 0.0);
        assert!(l.total_above_fold() > 0.0);
        assert!(l.total_above_fold() <= l.total_area());
        assert!(!l.is_empty());
    }

    #[test]
    fn area_by_class_sums_to_total() {
        let doc = parse_document("<nav>n</nav><p>text here</p><img>");
        let l = Layout::compute(&doc, Viewport::desktop());
        let by_class = l.area_by_class();
        let sum: f64 = by_class.values().sum();
        assert!((sum - l.total_area()).abs() < 1e-6);
    }

    #[test]
    fn mobile_viewport_narrower() {
        let text = "z".repeat(1000);
        let doc = parse_document(&format!("<p>{text}</p>"));
        let p = doc.find_tag("p").unwrap();
        let desk = Layout::compute(&doc, Viewport::desktop());
        let mob = Layout::compute(&doc, Viewport::mobile());
        assert!(mob.get(p).unwrap().height > desk.get(p).unwrap().height);
    }
}
