//! Reveal plans: the injected "hide all, then show on schedule" function.
//!
//! The paper injects a JavaScript function into each compressed test page
//! that first hides all DOM elements and then reveals them according to the
//! `web_page_load` parameter. [`RevealPlan`] is the materialized schedule;
//! [`RevealPlan::inject`] physically embeds it (plus the loader stub) into
//! the document so the produced single-file page carries the same artifact
//! a real Kaleidoscope page would.

use crate::layout::Layout;
use crate::spec::LoadSpec;
use kscope_html::{Document, NodeId, Selector};
use rand::{Rng, RngExt};
use serde_json::json;

/// The DOM id of the injected reveal script.
pub const REVEAL_SCRIPT_ID: &str = "kscope-reveal";

/// One scheduled reveal: an element becomes visible at `at_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevealEvent {
    /// The element being revealed.
    pub node: NodeId,
    /// Reveal time (ms from navigation start).
    pub at_ms: u64,
    /// Painted area of the element (px²), from the layout.
    pub area: f64,
    /// Above-the-fold portion of that area (px²).
    pub above_fold_area: f64,
}

/// A complete reveal schedule for one page.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RevealPlan {
    events: Vec<RevealEvent>,
}

impl RevealPlan {
    /// Builds a reveal plan from a load spec.
    ///
    /// * `Uniform(t)` — every laid-out element gets an independent
    ///   `U[0, t]` reveal time drawn from `rng`.
    /// * `PerSelector` — elements matching a locator reveal at its time
    ///   (the latest time wins if several locators match); descendants of a
    ///   scheduled element inherit its time unless they match their own
    ///   locator; unmatched elements reveal at t = 0.
    ///
    /// Selectors that fail to parse are skipped (the paper's tool treats
    /// locator typos as "no such element").
    pub fn build<R: Rng + ?Sized>(
        doc: &Document,
        layout: &Layout,
        spec: &LoadSpec,
        rng: &mut R,
    ) -> Self {
        let elements: Vec<NodeId> =
            doc.elements().into_iter().filter(|&id| layout.get(id).is_some()).collect();
        let mut times: Vec<(NodeId, u64)> = Vec::with_capacity(elements.len());
        match spec {
            LoadSpec::Uniform(t) => {
                for &id in &elements {
                    let at = if *t == 0 { 0 } else { rng.random_range(0..=*t) };
                    times.push((id, at));
                }
            }
            LoadSpec::PerSelector(timings) => {
                // Resolve each locator to its element set once.
                let mut scheduled: Vec<(NodeId, u64)> = Vec::new();
                for timing in timings {
                    if let Ok(sel) = timing.selector.parse::<Selector>() {
                        for id in doc.select(&sel) {
                            scheduled.push((id, timing.at_ms));
                        }
                    }
                }
                for &id in &elements {
                    // Own schedule (latest wins), else nearest scheduled
                    // ancestor, else 0.
                    let own = scheduled.iter().filter(|(n, _)| *n == id).map(|&(_, t)| t).max();
                    let at = own.unwrap_or_else(|| {
                        let mut cur = doc.parent(id);
                        while let Some(p) = cur {
                            if let Some(t) =
                                scheduled.iter().filter(|(n, _)| *n == p).map(|&(_, t)| t).max()
                            {
                                return t;
                            }
                            cur = doc.parent(p);
                        }
                        0
                    });
                    times.push((id, at));
                }
            }
        }
        let mut events: Vec<RevealEvent> = times
            .into_iter()
            .map(|(node, at_ms)| {
                let b = layout.get(node).expect("filtered to laid-out elements");
                RevealEvent { node, at_ms, area: b.area, above_fold_area: b.above_fold_area }
            })
            .collect();
        events.sort_by_key(|e| (e.at_ms, e.node));
        Self { events }
    }

    /// The scheduled events, sorted by reveal time.
    pub fn events(&self) -> &[RevealEvent] {
        &self.events
    }

    /// Number of scheduled elements.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last reveal (ms); 0 for an empty plan.
    pub fn completion_ms(&self) -> u64 {
        self.events.last().map(|e| e.at_ms).unwrap_or(0)
    }

    /// Injects the plan into the document as the `kscope-reveal` script —
    /// a JSON payload plus the loader that hides everything and reveals on
    /// schedule, mirroring the paper's injected JavaScript function.
    ///
    /// Elements are addressed by their *document-order element ordinal*
    /// (the index `document.querySelectorAll('*')` would give them), which
    /// survives serialize → parse round-trips; arena node ids do not.
    ///
    /// Returns the id of the created script element.
    pub fn inject(&self, doc: &mut Document) -> NodeId {
        // Create and attach the script first so the ordinals we embed match
        // the final document shape.
        let script = doc.create_element("script");
        doc.set_attr(script, "id", REVEAL_SCRIPT_ID);
        if let Some(head) = doc.find_tag("head") {
            doc.append_child(head, script);
        } else {
            let root = doc.root();
            match doc.children(root).first().copied() {
                Some(first) => doc.insert_before(first, script),
                None => doc.append_child(root, script),
            }
        }
        let ordinal_of: std::collections::HashMap<usize, usize> = doc
            .elements()
            .into_iter()
            .enumerate()
            .map(|(ordinal, id)| (id.index(), ordinal))
            .collect();
        let payload: Vec<serde_json::Value> = self
            .events
            .iter()
            .filter_map(|e| {
                ordinal_of.get(&e.node.index()).map(|ord| json!({ "node": ord, "at_ms": e.at_ms }))
            })
            .collect();
        let plan_json = serde_json::Value::Array(payload).to_string();
        let loader = format!(
            "(function() {{\n  var plan = {plan_json};\n  \
             var all = document.querySelectorAll('*');\n  \
             for (var i = 0; i < all.length; i++) all[i].style.visibility = 'hidden';\n  \
             plan.forEach(function(e) {{\n    \
             setTimeout(function() {{ kscopeReveal(e.node); }}, e.at_ms);\n  }});\n}})();"
        );
        let text = doc.create_text(&loader);
        doc.append_child(script, text);
        script
    }
}

impl FromIterator<RevealEvent> for RevealPlan {
    fn from_iter<I: IntoIterator<Item = RevealEvent>>(iter: I) -> Self {
        let mut events: Vec<RevealEvent> = iter.into_iter().collect();
        events.sort_by_key(|e| (e.at_ms, e.node));
        Self { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Viewport;
    use kscope_html::parse_document;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(html: &str) -> (Document, Layout) {
        let doc = parse_document(html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        (doc, layout)
    }

    #[test]
    fn uniform_within_window() {
        let (doc, layout) = setup("<div><p>a</p><p>b</p><p>c</p></div>");
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(2000), &mut rng);
        assert_eq!(plan.len(), 4);
        assert!(plan.events().iter().all(|e| e.at_ms <= 2000));
        assert!(plan.completion_ms() <= 2000);
    }

    #[test]
    fn uniform_zero_is_instant() {
        let (doc, layout) = setup("<p>a</p>");
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(0), &mut rng);
        assert!(plan.events().iter().all(|e| e.at_ms == 0));
    }

    #[test]
    fn uniform_deterministic_per_seed() {
        let (doc, layout) = setup("<div><p>a</p><p>b</p></div>");
        let p1 = RevealPlan::build(
            &doc,
            &layout,
            &LoadSpec::Uniform(500),
            &mut StdRng::seed_from_u64(7),
        );
        let p2 = RevealPlan::build(
            &doc,
            &layout,
            &LoadSpec::Uniform(500),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(p1, p2);
    }

    #[test]
    fn per_selector_schedules_matches_and_descendants() {
        let (doc, layout) =
            setup(r#"<div id="nav"><a>x</a></div><div id="main"><p>body</p></div>"#);
        let spec = LoadSpec::from_json(&serde_json::json!({"#nav": 2000, "#main": 4000})).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        let time_of = |tag: &str| {
            let id = doc.find_tag(tag).unwrap();
            plan.events().iter().find(|e| e.node == id).unwrap().at_ms
        };
        assert_eq!(time_of("a"), 2000); // inherits #nav
        assert_eq!(time_of("p"), 4000); // inherits #main
    }

    #[test]
    fn per_selector_unmatched_reveals_immediately() {
        let (doc, layout) = setup(r#"<div id="x">a</div><div id="y">b</div>"#);
        let spec = LoadSpec::from_json(&serde_json::json!({"#x": 1000})).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        let y = doc.get_element_by_id("y").unwrap();
        assert_eq!(plan.events().iter().find(|e| e.node == y).unwrap().at_ms, 0);
    }

    #[test]
    fn own_schedule_overrides_ancestor() {
        let (doc, layout) = setup(r#"<div id="outer"><p id="inner">t</p></div>"#);
        let spec =
            LoadSpec::from_json(&serde_json::json!({"#outer": 3000, "#inner": 500})).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        let inner = doc.get_element_by_id("inner").unwrap();
        assert_eq!(plan.events().iter().find(|e| e.node == inner).unwrap().at_ms, 500);
    }

    #[test]
    fn invalid_selector_skipped() {
        let (doc, layout) = setup("<p>a</p>");
        let spec = LoadSpec::from_json(&serde_json::json!({"#": 1000})).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        assert!(plan.events().iter().all(|e| e.at_ms == 0));
    }

    #[test]
    fn events_sorted_by_time() {
        let (doc, layout) = setup("<div><p>a</p><p>b</p><p>c</p><p>d</p></div>");
        let mut rng = StdRng::seed_from_u64(3);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(5000), &mut rng);
        assert!(plan.events().windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn inject_produces_script_artifact() {
        let (mut doc, layout) = setup("<html><head></head><body><p>a</p></body></html>");
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(1000), &mut rng);
        let script = plan.inject(&mut doc);
        assert_eq!(doc.attr(script, "id"), Some(REVEAL_SCRIPT_ID));
        let html = doc.to_html();
        assert!(html.contains("kscope-reveal"));
        assert!(html.contains("visibility = 'hidden'"));
        assert!(html.contains("setTimeout"));
        // Script landed inside <head>.
        let head = doc.find_tag("head").unwrap();
        assert!(doc.children(head).contains(&script));
    }

    #[test]
    fn inject_without_head_prepends() {
        let (mut doc, layout) = setup("<p>a</p>");
        let mut rng = StdRng::seed_from_u64(1);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(10), &mut rng);
        let script = plan.inject(&mut doc);
        assert_eq!(doc.children(doc.root())[0], script);
    }

    #[test]
    fn from_iterator_sorts() {
        let plan: RevealPlan = vec![
            RevealEvent {
                node: NodeId::from_index(2),
                at_ms: 500,
                area: 1.0,
                above_fold_area: 1.0,
            },
            RevealEvent {
                node: NodeId::from_index(1),
                at_ms: 100,
                area: 1.0,
                above_fold_area: 1.0,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(plan.events()[0].at_ms, 100);
        assert_eq!(plan.completion_ms(), 500);
    }
}
