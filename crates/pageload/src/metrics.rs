//! Visual page-load metrics.
//!
//! The paper (§III-B, §V) frames page-load quality through visual metrics:
//! Time to First Paint, Above-the-fold time, Speed Index, and user-perceived
//! page load time (uPLT). All are functionals of the paint curve in
//! [`PaintTimeline`]. The uPLT model here is the
//! weighted-readiness formalization of the paper's case-study finding: users
//! weight the main text content far more than auxiliary content, so two
//! pages with identical ATF can have very different uPLT.

use crate::layout::{ContentClass, Layout};
use crate::timeline::PaintTimeline;
use std::collections::HashMap;

/// The visual metrics of one page load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisualMetrics {
    /// Time to First Paint: first instant with any painted area (ms).
    pub ttfp_ms: u64,
    /// Above-the-fold time: first instant the viewport area is fully
    /// painted (ms).
    pub atf_ms: u64,
    /// Speed Index: `∫ (1 - completeness(t)) dt` over the load (ms).
    pub speed_index_ms: f64,
    /// Visual load completion — last paint event (the "PLT" analogue, ms).
    pub plt_ms: u64,
}

impl VisualMetrics {
    /// Computes all metrics from a paint timeline.
    pub fn from_timeline(tl: &PaintTimeline) -> Self {
        Self {
            ttfp_ms: ttfp(tl),
            atf_ms: atf(tl),
            speed_index_ms: speed_index(tl),
            plt_ms: tl.last_paint_ms(),
        }
    }
}

/// Time to First Paint: the first sample with non-zero completeness.
pub fn ttfp(tl: &PaintTimeline) -> u64 {
    tl.samples()
        .iter()
        .find(|s| s.completeness > 0.0)
        .map(|s| s.t_ms)
        .unwrap_or_else(|| tl.last_paint_ms())
}

/// Above-the-fold time: the first sample where the above-fold area is fully
/// painted.
pub fn atf(tl: &PaintTimeline) -> u64 {
    tl.samples()
        .iter()
        .find(|s| s.atf_completeness >= 1.0 - 1e-9)
        .map(|s| s.t_ms)
        .unwrap_or_else(|| tl.last_paint_ms())
}

/// Speed Index: the area above the completeness curve,
/// `∫₀^end (1 - completeness(t)) dt`, in milliseconds. Lower is better; a
/// page that paints everything instantly scores 0.
pub fn speed_index(tl: &PaintTimeline) -> f64 {
    let samples = tl.samples();
    let mut si = 0.0;
    for w in samples.windows(2) {
        let dt = (w[1].t_ms - w[0].t_ms) as f64;
        si += (1.0 - w[0].completeness) * dt;
    }
    si
}

/// Weights for the perceived-readiness (uPLT) model. Each content class
/// contributes its painted fraction scaled by the user's attention weight.
#[derive(Debug, Clone, PartialEq)]
pub struct UpltWeights {
    weights: HashMap<ContentClass, f64>,
    /// Readiness threshold in `[0, 1]`: the page "seems ready to use" when
    /// the weighted painted fraction crosses this value.
    pub threshold: f64,
}

impl UpltWeights {
    /// Builds a weight table.
    ///
    /// # Panics
    ///
    /// Panics if weights are not all positive or the threshold is outside
    /// `(0, 1]`.
    pub fn new(weights: HashMap<ContentClass, f64>, threshold: f64) -> Self {
        assert!(!weights.is_empty(), "need at least one class weight");
        assert!(weights.values().all(|&w| w > 0.0), "weights must be positive");
        assert!(threshold > 0.0 && threshold <= 1.0, "threshold must be in (0,1]");
        Self { weights, threshold }
    }

    /// The paper's finding as defaults: main text dominates perception
    /// (weight 0.6), media 0.2, navigation 0.12, auxiliary 0.08; a page
    /// feels ready at 80% weighted readiness.
    pub fn reader_defaults() -> Self {
        let mut w = HashMap::new();
        w.insert(ContentClass::MainText, 0.60);
        w.insert(ContentClass::Media, 0.20);
        w.insert(ContentClass::Navigation, 0.12);
        w.insert(ContentClass::Auxiliary, 0.08);
        Self::new(w, 0.8)
    }

    /// A control model that weights every class purely by its area — this is
    /// what a pure visual-change metric (like Speed Index) implicitly
    /// assumes, and the "I only care about visual changes" commenter in the
    /// paper.
    pub fn area_uniform() -> Self {
        let mut w = HashMap::new();
        w.insert(ContentClass::MainText, 1.0);
        w.insert(ContentClass::Media, 1.0);
        w.insert(ContentClass::Navigation, 1.0);
        w.insert(ContentClass::Auxiliary, 1.0);
        Self::new(w, 0.8)
    }

    /// The weight for a class (0 if absent).
    pub fn weight(&self, class: ContentClass) -> f64 {
        self.weights.get(&class).copied().unwrap_or(0.0)
    }

    /// Weighted readiness at time `t`: `Σ w_c · painted_c(t) / Σ w_c` over
    /// classes that actually have area on the page.
    pub fn readiness_at(&self, tl: &PaintTimeline, layout: &Layout, t_ms: u64) -> f64 {
        let present = layout.area_by_class();
        let mut num = 0.0;
        let mut den = 0.0;
        for (&class, &weight) in &self.weights {
            if present.get(&class).copied().unwrap_or(0.0) <= 0.0 {
                continue;
            }
            num += weight * tl.class_completeness_at(class, t_ms, layout);
            den += weight;
        }
        if den == 0.0 {
            // Page has none of the weighted classes; fall back to raw area.
            tl.completeness_at(t_ms)
        } else {
            num / den
        }
    }

    /// User-perceived page load time: the earliest paint event at which the
    /// weighted readiness crosses the threshold.
    pub fn uplt_ms(&self, tl: &PaintTimeline, layout: &Layout) -> u64 {
        for s in tl.samples() {
            if self.readiness_at(tl, layout, s.t_ms) >= self.threshold {
                return s.t_ms;
            }
        }
        tl.last_paint_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Viewport;
    use crate::reveal::RevealPlan;
    use crate::spec::LoadSpec;
    use kscope_html::parse_document;
    use rand::{rngs::StdRng, SeedableRng};

    fn load(html: &str, spec_json: serde_json::Value) -> (Layout, PaintTimeline) {
        let doc = parse_document(html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let spec = LoadSpec::from_json(&spec_json).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        (layout, tl)
    }

    const TWO_PART_PAGE: &str = r#"
        <nav id="navbar"><a>home</a><a>about</a></nav>
        <div id="content"><p>The main article text, long enough to matter for
        any reader who came to this page to actually read something.</p></div>"#;

    #[test]
    fn instant_page_scores_zero_speed_index() {
        let (_, tl) = load("<p>x</p>", serde_json::json!(0));
        let m = VisualMetrics::from_timeline(&tl);
        assert_eq!(m.ttfp_ms, 0);
        assert_eq!(m.atf_ms, 0);
        assert_eq!(m.speed_index_ms, 0.0);
        assert_eq!(m.plt_ms, 0);
    }

    #[test]
    fn staged_page_metrics() {
        let (_, tl) = load(TWO_PART_PAGE, serde_json::json!({"#navbar": 1000, "#content": 3000}));
        let m = VisualMetrics::from_timeline(&tl);
        assert_eq!(m.ttfp_ms, 1000);
        assert_eq!(m.atf_ms, 3000);
        assert_eq!(m.plt_ms, 3000);
        assert!(m.speed_index_ms > 0.0 && m.speed_index_ms < 3000.0);
    }

    #[test]
    fn speed_index_rewards_early_paint() {
        // Same completion time, but one page paints the (dominant) main
        // content early. Make the article long enough to dominate the nav.
        let body = "lorem ipsum dolor sit amet ".repeat(80);
        let page =
            format!(r#"<nav id="navbar"><a>home</a></nav><div id="content"><p>{body}</p></div>"#);
        let early = load(&page, serde_json::json!({"#navbar": 3000, "#content": 500})).1;
        let late = load(&page, serde_json::json!({"#navbar": 500, "#content": 3000})).1;
        assert!(
            speed_index(&early) < speed_index(&late),
            "painting the large main content early must lower Speed Index"
        );
    }

    #[test]
    fn paper_case_study_uplt_shape() {
        // Version A: nav at 2s, main text at 4s.
        // Version B: nav at 4s, main text at 2s. Both complete at 4s (same ATF).
        let (layout_a, tl_a) =
            load(TWO_PART_PAGE, serde_json::json!({"#navbar": 2000, "#content": 4000}));
        let (layout_b, tl_b) =
            load(TWO_PART_PAGE, serde_json::json!({"#navbar": 4000, "#content": 2000}));
        assert_eq!(atf(&tl_a), atf(&tl_b), "paper: both versions share ATF");
        let w = UpltWeights::reader_defaults();
        let uplt_a = w.uplt_ms(&tl_a, &layout_a);
        let uplt_b = w.uplt_ms(&tl_b, &layout_b);
        assert!(uplt_b < uplt_a, "text-first version must feel ready sooner: {uplt_b} vs {uplt_a}");
    }

    #[test]
    fn readiness_monotone_and_bounded() {
        let (layout, tl) =
            load(TWO_PART_PAGE, serde_json::json!({"#navbar": 1000, "#content": 2000}));
        let w = UpltWeights::reader_defaults();
        let mut prev = -1.0;
        for t in [0u64, 500, 1000, 1500, 2000, 5000] {
            let r = w.readiness_at(&tl, &layout, t);
            assert!((0.0..=1.0 + 1e-9).contains(&r));
            assert!(r >= prev);
            prev = r;
        }
        assert!((w.readiness_at(&tl, &layout, 2000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_uniform_matches_raw_completeness_shape() {
        let (layout, tl) =
            load(TWO_PART_PAGE, serde_json::json!({"#navbar": 1000, "#content": 2000}));
        let w = UpltWeights::area_uniform();
        // With equal class weights the readiness still differs from raw area
        // (classes are normalized), but it must be complete when the page is.
        assert!((w.readiness_at(&tl, &layout, 2000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ttfp_of_never_painting_page() {
        // A page with no laid-out elements (only head content).
        let (_, tl) = load("<head><title>t</title></head>", serde_json::json!(1000));
        let m = VisualMetrics::from_timeline(&tl);
        assert_eq!(m.ttfp_ms, m.plt_ms);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0,1]")]
    fn weights_reject_bad_threshold() {
        let mut w = HashMap::new();
        w.insert(ContentClass::MainText, 1.0);
        let _ = UpltWeights::new(w, 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn weights_reject_nonpositive() {
        let mut w = HashMap::new();
        w.insert(ContentClass::MainText, 0.0);
        let _ = UpltWeights::new(w, 0.5);
    }
}
