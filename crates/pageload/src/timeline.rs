//! Paint timelines: visual completeness as a function of time.
//!
//! Executing a [`RevealPlan`] produces a step function of
//! "how much of the page is painted"; the visual metrics (Speed Index, ATF,
//! uPLT) are all functionals of this curve. A [`PaintTimeline`] also carries
//! the per-class visible areas so the uPLT weighting model can distinguish
//! navigation chrome from main text.

use crate::layout::{ContentClass, Layout};
use crate::reveal::RevealPlan;
use kscope_html::Document;
use std::collections::HashMap;

/// Visible-area snapshot at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct PaintSample {
    /// Milliseconds since navigation start.
    pub t_ms: u64,
    /// Painted fraction of total page area, in `[0, 1]`.
    pub completeness: f64,
    /// Painted fraction of above-the-fold area, in `[0, 1]`.
    pub atf_completeness: f64,
    /// Painted area per content class (px²), cumulative.
    pub class_area: HashMap<ContentClass, f64>,
}

/// The full paint history of one page load: one sample per distinct reveal
/// time, plus an implicit `(0, …)` start.
#[derive(Debug, Clone, PartialEq)]
pub struct PaintTimeline {
    samples: Vec<PaintSample>,
    total_area: f64,
    total_atf: f64,
}

impl PaintTimeline {
    /// Executes a reveal plan against its layout, producing the paint curve.
    ///
    /// `doc` is unused today but kept in the signature because a future
    /// incremental-layout executor needs it; passing it also documents that
    /// plan and layout must come from the same document.
    pub fn from_plan(_doc: &Document, layout: &Layout, plan: &RevealPlan) -> Self {
        let total_area = layout.total_area().max(f64::MIN_POSITIVE);
        let total_atf = layout.total_above_fold().max(f64::MIN_POSITIVE);
        let mut samples: Vec<PaintSample> = Vec::new();
        let mut painted = 0.0;
        let mut painted_atf = 0.0;
        let mut class_area: HashMap<ContentClass, f64> = HashMap::new();
        // Initial state: nothing painted (the injected script hides all).
        samples.push(PaintSample {
            t_ms: 0,
            completeness: 0.0,
            atf_completeness: 0.0,
            class_area: class_area.clone(),
        });
        let mut idx = 0;
        let events = plan.events();
        while idx < events.len() {
            let t = events[idx].at_ms;
            while idx < events.len() && events[idx].at_ms == t {
                let e = &events[idx];
                painted += e.area;
                painted_atf += e.above_fold_area;
                if let Some(b) = layout.get(e.node) {
                    *class_area.entry(b.class).or_insert(0.0) += e.area;
                }
                idx += 1;
            }
            let sample = PaintSample {
                t_ms: t,
                completeness: (painted / total_area).min(1.0),
                atf_completeness: (painted_atf / total_atf).min(1.0),
                class_area: class_area.clone(),
            };
            if samples.last().map(|s| s.t_ms == t).unwrap_or(false) {
                *samples.last_mut().expect("just checked") = sample;
            } else {
                samples.push(sample);
            }
        }
        Self { samples, total_area, total_atf }
    }

    /// The samples in time order (first is always `t = 0`).
    pub fn samples(&self) -> &[PaintSample] {
        &self.samples
    }

    /// Completeness at time `t` (step interpolation).
    pub fn completeness_at(&self, t_ms: u64) -> f64 {
        self.samples.iter().rev().find(|s| s.t_ms <= t_ms).map(|s| s.completeness).unwrap_or(0.0)
    }

    /// Above-the-fold completeness at time `t`.
    pub fn atf_completeness_at(&self, t_ms: u64) -> f64 {
        self.samples
            .iter()
            .rev()
            .find(|s| s.t_ms <= t_ms)
            .map(|s| s.atf_completeness)
            .unwrap_or(0.0)
    }

    /// Painted fraction of one content class at time `t` (relative to the
    /// class's own total area; 1.0 if the class has no area at all).
    pub fn class_completeness_at(&self, class: ContentClass, t_ms: u64, layout: &Layout) -> f64 {
        let total = layout.area_by_class().get(&class).copied().unwrap_or(0.0);
        if total <= 0.0 {
            return 1.0;
        }
        let painted = self
            .samples
            .iter()
            .rev()
            .find(|s| s.t_ms <= t_ms)
            .and_then(|s| s.class_area.get(&class).copied())
            .unwrap_or(0.0);
        (painted / total).min(1.0)
    }

    /// Time of the final paint event (the visual load completion).
    pub fn last_paint_ms(&self) -> u64 {
        self.samples.last().map(|s| s.t_ms).unwrap_or(0)
    }

    /// Total page area the timeline normalizes by (px²).
    pub fn total_area(&self) -> f64 {
        self.total_area
    }

    /// Total above-the-fold area (px²).
    pub fn total_above_fold(&self) -> f64 {
        self.total_atf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Viewport;
    use crate::spec::LoadSpec;
    use kscope_html::parse_document;
    use rand::{rngs::StdRng, SeedableRng};

    fn timeline_for(html: &str, spec: &LoadSpec, seed: u64) -> (Document, Layout, PaintTimeline) {
        let doc = parse_document(html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = RevealPlan::build(&doc, &layout, spec, &mut rng);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        (doc, layout, tl)
    }

    use kscope_html::Document;

    #[test]
    fn starts_empty_ends_complete() {
        let (_, _, tl) =
            timeline_for("<div><p>abc</p><p>def</p></div>", &LoadSpec::Uniform(1000), 4);
        assert_eq!(tl.samples()[0].completeness, 0.0);
        let last = tl.samples().last().unwrap();
        assert!((last.completeness - 1.0).abs() < 1e-9);
        assert!((last.atf_completeness - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completeness_monotone() {
        let (_, _, tl) = timeline_for(
            "<div><p>a</p><p>b</p><p>c</p><p>d</p><p>e</p></div>",
            &LoadSpec::Uniform(3000),
            9,
        );
        let mut prev = -1.0;
        for s in tl.samples() {
            assert!(s.completeness >= prev);
            prev = s.completeness;
        }
    }

    #[test]
    fn step_interpolation() {
        let spec = LoadSpec::from_json(&serde_json::json!({"#a": 1000, "#b": 2000})).unwrap();
        let (_, _, tl) = timeline_for(r#"<div id="a">x</div><div id="b">y</div>"#, &spec, 1);
        assert_eq!(tl.completeness_at(0), 0.0);
        let mid = tl.completeness_at(1500);
        assert!(mid > 0.0 && mid < 1.0, "mid = {mid}");
        assert!((tl.completeness_at(2000) - 1.0).abs() < 1e-9);
        assert!((tl.completeness_at(99_999) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn last_paint_matches_spec() {
        let spec = LoadSpec::from_json(&serde_json::json!({"#a": 700})).unwrap();
        let (_, _, tl) = timeline_for(r#"<div id="a">x</div>"#, &spec, 1);
        assert_eq!(tl.last_paint_ms(), 700);
    }

    #[test]
    fn class_completeness_tracks_schedule() {
        // Nav at 2s, main text at 4s — the paper's uPLT case study shape.
        let html = r#"<nav id="navbar"><a>home</a></nav>
                      <div id="content"><p>main text body</p></div>"#;
        let spec =
            LoadSpec::from_json(&serde_json::json!({"#navbar": 2000, "#content": 4000})).unwrap();
        let (_, layout, tl) = timeline_for(html, &spec, 1);
        // At 2.5s: nav fully painted, main text not yet.
        assert!(
            tl.class_completeness_at(ContentClass::Navigation, 2500, &layout) > 0.99,
            "nav should be complete"
        );
        assert!(
            tl.class_completeness_at(ContentClass::MainText, 2500, &layout) < 0.5,
            "main text should be mostly unpainted"
        );
        assert!(tl.class_completeness_at(ContentClass::MainText, 4000, &layout) > 0.99);
    }

    #[test]
    fn missing_class_counts_complete() {
        let (_, layout, tl) = timeline_for("<p>text only</p>", &LoadSpec::Uniform(0), 1);
        assert_eq!(tl.class_completeness_at(ContentClass::Media, 0, &layout), 1.0);
    }

    #[test]
    fn instant_load_single_step() {
        let (_, _, tl) = timeline_for("<p>a</p>", &LoadSpec::Uniform(0), 1);
        assert_eq!(tl.last_paint_ms(), 0);
        assert!((tl.completeness_at(0) - 1.0).abs() < 1e-9);
    }
}
