//! Page-load replay: the paper's signature mechanism.
//!
//! Kaleidoscope is "the first testing tool to replay page loading by
//! controlling visual changes on a webpage": a JavaScript function injected
//! into each compressed test page first hides every DOM element, then
//! reveals them on a schedule given by the `web_page_load` test parameter —
//! either a single number (`2000` = all elements appear at random times
//! within 2 s) or per-locator times (`{"#main": 1000, "#content p": 1500}`).
//!
//! This crate reproduces that machinery:
//!
//! * [`LoadSpec`] — the `web_page_load` parameter, JSON-compatible with the
//!   paper's two forms.
//! * [`layout`] — an approximate box model assigning each element an area
//!   and fold position (needed by the visual metrics).
//! * [`RevealPlan`] — the per-element reveal schedule; it can be physically
//!   injected into the page as the `kscope-reveal` script, and executed by
//!   the virtual browser.
//! * [`PaintTimeline`] + [`metrics`] — visual-completeness samples and the
//!   metrics the paper discusses: TTFP, Above-the-fold time, Speed Index,
//!   PLT, and a weighted user-perceived readiness model for uPLT.
//! * [`recorder`] — turns an observed timeline back into a [`LoadSpec`],
//!   reproducing the "record a real page load, then replay it" workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod metrics;
pub mod network;
pub mod recorder;
pub mod reveal;
pub mod spec;
pub mod timeline;

pub use layout::{ContentClass, Layout, LayoutBox, Viewport};
pub use metrics::VisualMetrics;
pub use network::{NetworkProfile, Waterfall, WaterfallResource};
pub use reveal::{RevealEvent, RevealPlan, REVEAL_SCRIPT_ID};
pub use spec::{LoadSpec, SelectorTiming, SpecError};
pub use timeline::{PaintSample, PaintTimeline};
