//! Filmstrip recorder: from an observed load back to a replayable spec.
//!
//! §III-B: "one can first record the video of loading a real world webpage
//! within a browser … then the values of `web_page_load` are set according
//! to the display times of the real world page load — which parts are shown
//! at what time." This module closes that loop: given an executed
//! [`RevealPlan`], it reconstructs a per-selector [`LoadSpec`] using stable
//! CSS locators derived from the DOM, quantized to a frame interval the way
//! a real video-derived filmstrip would be.

use crate::reveal::RevealPlan;
use crate::spec::{LoadSpec, SelectorTiming};
use kscope_html::{Document, NodeId, NodeKind};

/// Reconstructs a per-selector load spec from an observed plan.
///
/// `frame_ms` models the filmstrip frame interval (e.g. 100 ms at 10 fps):
/// every reveal time is quantized *up* to the next frame boundary, because a
/// video only shows that an element had appeared by the frame after it
/// painted.
///
/// # Panics
///
/// Panics if `frame_ms == 0`.
pub fn record_spec(doc: &Document, plan: &RevealPlan, frame_ms: u64) -> LoadSpec {
    assert!(frame_ms > 0, "frame interval must be positive");
    let mut timings: Vec<SelectorTiming> = plan
        .events()
        .iter()
        .map(|e| SelectorTiming {
            selector: css_locator(doc, e.node),
            at_ms: quantize_up(e.at_ms, frame_ms),
        })
        .collect();
    timings.sort_by(|a, b| a.at_ms.cmp(&b.at_ms).then_with(|| a.selector.cmp(&b.selector)));
    timings.dedup();
    LoadSpec::PerSelector(timings)
}

fn quantize_up(t: u64, frame: u64) -> u64 {
    t.div_ceil(frame) * frame
}

/// Derives a stable CSS locator for an element: prefers `#id`; otherwise
/// builds a `parent > tag:nth-child(k)` path up to the nearest ancestor
/// with an id (or the root). The `:nth-child` step disambiguates between
/// same-tag siblings, so the recorded spec re-targets exactly the elements
/// that were observed.
pub fn css_locator(doc: &Document, node: NodeId) -> String {
    if let Some(el) = doc.element(node) {
        if let Some(id) = el.id() {
            if !id.is_empty() {
                return format!("#{id}");
            }
        }
    }
    let mut parts: Vec<String> = Vec::new();
    let mut cur = Some(node);
    while let Some(id) = cur {
        match &doc.node(id).kind {
            NodeKind::Element(el) => {
                if let Some(dom_id) = el.id() {
                    if !dom_id.is_empty() {
                        parts.push(format!("#{dom_id}"));
                        break;
                    }
                }
                // Position among element siblings (1-based); omit the
                // suffix when the element is an only child of its kind.
                let step = match doc.parent(id) {
                    Some(p) => {
                        let siblings: Vec<NodeId> = doc
                            .children(p)
                            .iter()
                            .copied()
                            .filter(|&c| doc.element(c).is_some())
                            .collect();
                        if siblings.len() > 1 {
                            let pos = siblings
                                .iter()
                                .position(|&c| c == id)
                                .expect("node is its parent's child")
                                + 1;
                            format!("{}:nth-child({pos})", el.name)
                        } else {
                            el.name.clone()
                        }
                    }
                    None => el.name.clone(),
                };
                parts.push(step);
            }
            NodeKind::Document => break,
            _ => {}
        }
        cur = doc.parent(id);
    }
    parts.reverse();
    parts.join(" > ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Layout, Viewport};
    use crate::timeline::PaintTimeline;
    use kscope_html::parse_document;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn quantization_rounds_up() {
        assert_eq!(quantize_up(0, 100), 0);
        assert_eq!(quantize_up(1, 100), 100);
        assert_eq!(quantize_up(100, 100), 100);
        assert_eq!(quantize_up(101, 100), 200);
    }

    #[test]
    fn locator_prefers_id() {
        let doc = parse_document(r#"<div id="main"><p>t</p></div>"#);
        let div = doc.get_element_by_id("main").unwrap();
        assert_eq!(css_locator(&doc, div), "#main");
    }

    #[test]
    fn locator_builds_path_to_nearest_id() {
        let doc = parse_document(r#"<div id="main"><section><p>t</p></section></div>"#);
        let p = doc.find_tag("p").unwrap();
        assert_eq!(css_locator(&doc, p), "#main > section > p");
    }

    #[test]
    fn locator_without_ids_is_tag_path() {
        let doc = parse_document("<div><p>t</p></div>");
        let p = doc.find_tag("p").unwrap();
        assert_eq!(css_locator(&doc, p), "div > p");
    }

    #[test]
    fn locator_disambiguates_siblings() {
        let doc = parse_document("<div><p>a</p><p>b</p></div>");
        let second = *doc
            .elements()
            .iter()
            .filter(|&&id| doc.element(id).map(|e| e.name == "p").unwrap_or(false))
            .nth(1)
            .unwrap();
        let locator = css_locator(&doc, second);
        assert_eq!(locator, "div > p:nth-child(2)");
        // The locator resolves back to exactly that element.
        let sel: kscope_html::Selector = locator.parse().unwrap();
        assert_eq!(doc.select(&sel), vec![second]);
    }

    #[test]
    fn recorded_locators_resolve_uniquely() {
        // Every locator the recorder emits re-selects exactly one element
        // (or a set with identical reveal times).
        let doc =
            parse_document("<div id='a'><p>x</p><p>y</p><span>z</span></div><div><p>w</p></div>");
        for id in doc.elements() {
            let locator = css_locator(&doc, id);
            let sel: kscope_html::Selector = locator.parse().unwrap();
            let hits = doc.select(&sel);
            assert!(hits.contains(&id), "locator '{locator}' lost its element");
            assert_eq!(hits.len(), 1, "locator '{locator}' is ambiguous: {hits:?}");
        }
    }

    #[test]
    fn record_replay_roundtrip_preserves_paint_curve() {
        // Build a random plan, record it at 100ms frames, replay the
        // recorded spec: the replayed curve must complete no earlier and at
        // most one frame later.
        let html = r#"<div id="nav"><a>x</a></div><div id="body"><p>text</p><p>more</p></div>"#;
        let doc = parse_document(html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(21);
        let original = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(2000), &mut rng);
        let spec = record_spec(&doc, &original, 100);
        let mut rng2 = StdRng::seed_from_u64(0);
        let replayed = RevealPlan::build(&doc, &layout, &spec, &mut rng2);
        let tl_orig = PaintTimeline::from_plan(&doc, &layout, &original);
        let tl_rep = PaintTimeline::from_plan(&doc, &layout, &replayed);
        assert!(tl_rep.last_paint_ms() >= tl_orig.last_paint_ms());
        assert!(tl_rep.last_paint_ms() <= tl_orig.last_paint_ms() + 100);
        // Completeness at any frame boundary in the replay never exceeds the
        // original's (video can only under-report speed).
        for t in (0..=2200).step_by(100) {
            assert!(tl_rep.completeness_at(t) <= tl_orig.completeness_at(t) + 1e-9);
        }
    }

    #[test]
    fn recorded_spec_is_per_selector() {
        let doc = parse_document(r#"<div id="a">x</div>"#);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(2);
        let plan = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(1000), &mut rng);
        match record_spec(&doc, &plan, 50) {
            LoadSpec::PerSelector(ts) => {
                assert!(!ts.is_empty());
                assert!(ts.iter().any(|t| t.selector == "#a"));
            }
            other => panic!("expected per-selector spec, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "frame interval must be positive")]
    fn zero_frame_rejected() {
        let doc = parse_document("<p>x</p>");
        let plan = RevealPlan::default();
        let _ = record_spec(&doc, &plan, 0);
    }
}
