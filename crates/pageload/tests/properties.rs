//! Property tests: reveal/timeline/metric invariants over random schedules.

use kscope_html::parse_document;
use kscope_pageload::metrics::{atf, speed_index, ttfp, UpltWeights};
use kscope_pageload::network::{NetworkProfile, Waterfall, WaterfallResource};
use kscope_pageload::recorder::record_spec;
use kscope_pageload::{Layout, LoadSpec, PaintTimeline, RevealPlan, SelectorTiming, Viewport};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const PAGE: &str = r#"<html><body>
  <nav id="nav"><a>a</a><a>b</a></nav>
  <div id="main"><p>first paragraph of body text</p><p>second paragraph</p></div>
  <img width="100" height="80">
  <footer id="foot">end</footer>
</body></html>"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any schedule: ttfp <= atf <= plt, and speed index is bounded by
    /// the completion time.
    #[test]
    fn metric_ordering(times in prop::collection::vec(0u64..6000, 1..4), seed in 0u64..500) {
        let doc = parse_document(PAGE);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let selectors = ["#nav", "#main", "#foot"];
        let timings: Vec<SelectorTiming> = times
            .iter()
            .zip(selectors.iter())
            .map(|(&t, s)| SelectorTiming { selector: (*s).to_string(), at_ms: t })
            .collect();
        let spec = LoadSpec::PerSelector(timings);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        let tl = PaintTimeline::from_plan(&doc, &layout, &plan);
        let (t_first, t_atf, t_last) = (ttfp(&tl), atf(&tl), tl.last_paint_ms());
        prop_assert!(t_first <= t_atf);
        prop_assert!(t_atf <= t_last);
        let si = speed_index(&tl);
        prop_assert!(si >= 0.0);
        prop_assert!(si <= t_last as f64 + 1e-9);
        // uPLT is also bracketed by first and last paint.
        let uplt = UpltWeights::reader_defaults().uplt_ms(&tl, &layout);
        prop_assert!(uplt >= t_first && uplt <= t_last);
    }

    /// Recording and replaying a schedule never speeds the page up, and
    /// delays completion by at most one frame.
    #[test]
    fn recorder_is_conservative(window in 1u64..4000, frame in 1u64..400, seed in 0u64..500) {
        let doc = parse_document(PAGE);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let mut rng = StdRng::seed_from_u64(seed);
        let original = RevealPlan::build(&doc, &layout, &LoadSpec::Uniform(window), &mut rng);
        let recorded = record_spec(&doc, &original, frame);
        let mut rng2 = StdRng::seed_from_u64(0);
        let replayed = RevealPlan::build(&doc, &layout, &recorded, &mut rng2);
        prop_assert!(replayed.completion_ms() >= original.completion_ms());
        prop_assert!(replayed.completion_ms() <= original.completion_ms() + frame);
    }

    /// Waterfalls: total time is monotone in every resource size, and the
    /// derived spec's duration equals the waterfall's gated total.
    #[test]
    fn waterfall_monotone_in_size(extra in 0usize..200_000) {
        let profile = NetworkProfile::three_g();
        let base = vec![
            WaterfallResource { selector: "body".into(), bytes: 30_000, render_blocking: true },
            WaterfallResource { selector: "#main img".into(), bytes: 50_000, render_blocking: false },
        ];
        let mut bigger = base.clone();
        bigger[1].bytes += extra;
        let w1 = Waterfall::simulate(&profile, &base);
        let w2 = Waterfall::simulate(&profile, &bigger);
        prop_assert!(w2.total_ms() >= w1.total_ms());
        let spec = w2.to_load_spec();
        prop_assert!(spec.duration_ms() >= w2.blocking_done_ms);
    }

    /// Layout: total area is invariant under re-computation and above-fold
    /// never exceeds the total.
    #[test]
    fn layout_totals_consistent(font in 8.0f64..30.0) {
        let html = format!("<div style=\"font-size: {font}pt\"><p>{}</p></div>", "x".repeat(500));
        let doc = parse_document(&html);
        let a = Layout::compute(&doc, Viewport::desktop());
        let b = Layout::compute(&doc, Viewport::desktop());
        prop_assert_eq!(a.total_area(), b.total_area());
        prop_assert!(a.total_above_fold() <= a.total_area() + 1e-9);
    }
}
