//! Property tests: base64 and path handling are total and reversible.

use kscope_singlefile::base64::{decode, encode};
use kscope_singlefile::{normalize_path, resolve_relative};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode/decode round-trips arbitrary bytes.
    #[test]
    fn base64_roundtrip(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let encoded = encode(&data);
        prop_assert_eq!(decode(&encoded).unwrap(), data);
        // Output alphabet is valid.
        prop_assert!(encoded.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='));
        prop_assert_eq!(encoded.len() % 4, 0);
    }

    /// decode is total: arbitrary ASCII never panics.
    #[test]
    fn base64_decode_total(text in "[ -~]{0,100}") {
        let _ = decode(&text);
    }

    /// Normalization removes every dot segment.
    #[test]
    fn normalize_removes_dots(path in "[a-z./]{0,40}") {
        let norm = normalize_path(&path);
        prop_assert!(!norm.split('/').any(|seg| seg == "." || seg == ".." || seg.is_empty())
            || norm.is_empty());
    }

    /// Resolution against a base produces a normalized path.
    #[test]
    fn resolution_is_normalized(base in "[a-z]{1,6}/[a-z]{1,6}\\.html", href in "[a-z./]{0,30}") {
        let r = resolve_relative(&base, &href);
        prop_assert_eq!(normalize_path(&r), r);
    }
}
