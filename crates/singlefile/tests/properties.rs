//! Property tests: base64 and path handling are total and reversible.

use kscope_singlefile::base64::{decode, encode, encode_scalar};
use kscope_singlefile::{normalize_path, resolve_relative};
use proptest::prelude::*;

/// Deterministic pseudo-random bytes (SplitMix64) so the 0..4096-length
/// sweeps below are seeded and reproducible with no wall-clock input.
fn seeded_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

#[test]
fn base64_roundtrip_seeded_lengths_up_to_4096() {
    // Every length in 0..64 (all SWAR main-loop/tail splits), then a
    // seeded stride through the MB-scale-adjacent range up to 4096.
    for len in (0..64).chain((64..=4096).step_by(61)) {
        let data = seeded_bytes(0xDEC0_DE00 + len as u64, len);
        let encoded = encode(&data);
        assert_eq!(decode(&encoded).unwrap(), data, "roundtrip at len {len}");
    }
}

#[test]
fn swar_encoder_is_byte_identical_to_scalar() {
    for len in (0..64).chain((64..=4096).step_by(61)) {
        let data = seeded_bytes(0x5EED + len as u64, len);
        assert_eq!(encode(&data), encode_scalar(&data), "SWAR vs scalar at len {len}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode/decode round-trips arbitrary bytes.
    #[test]
    fn base64_roundtrip(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let encoded = encode(&data);
        prop_assert_eq!(decode(&encoded).unwrap(), data);
        // Output alphabet is valid.
        prop_assert!(encoded.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='));
        prop_assert_eq!(encoded.len() % 4, 0);
    }

    /// decode is total: arbitrary ASCII never panics.
    #[test]
    fn base64_decode_total(text in "[ -~]{0,100}") {
        let _ = decode(&text);
    }

    /// SWAR and scalar encoders agree on arbitrary inputs, not just the
    /// seeded sweep.
    #[test]
    fn base64_swar_matches_scalar(data in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(encode(&data), encode_scalar(&data));
    }

    /// Normalization removes every dot segment.
    #[test]
    fn normalize_removes_dots(path in "[a-z./]{0,40}") {
        let norm = normalize_path(&path);
        prop_assert!(!norm.split('/').any(|seg| seg == "." || seg == ".." || seg.is_empty())
            || norm.is_empty());
    }

    /// Resolution against a base produces a normalized path.
    #[test]
    fn resolution_is_normalized(base in "[a-z]{1,6}/[a-z]{1,6}\\.html", href in "[a-z./]{0,30}") {
        let r = resolve_relative(&base, &href);
        prop_assert_eq!(normalize_path(&r), r);
    }
}
