//! SingleFile substitute: compress a saved multi-file webpage into one
//! self-contained HTML document.
//!
//! The paper's aggregator cannot hand a folder of resources to the browser
//! extension ("browser extensions cannot access local files"), so every test
//! webpage is compressed into a single HTML file using SingleFile. This
//! crate reproduces that step over a virtual saved-webpage folder
//! ([`ResourceStore`]): stylesheets and scripts are inlined, images become
//! `data:` URIs, CSS `url(...)` references are rewritten, and one-level
//! `@import` chains are flattened.
//!
//! # Example
//!
//! ```
//! use kscope_singlefile::{Inliner, ResourceStore};
//!
//! let mut store = ResourceStore::new();
//! store.insert("page/index.html", "text/html",
//!     br#"<html><head><link rel="stylesheet" href="style.css"></head>
//!         <body><img src="img/logo.png"></body></html>"#.to_vec());
//! store.insert("page/style.css", "text/css", b"body { margin: 0 }".to_vec());
//! store.insert("page/img/logo.png", "image/png", vec![1, 2, 3]);
//!
//! let out = Inliner::new(&store).inline("page/index.html")?;
//! assert!(out.html.contains("<style>"));
//! assert!(out.html.contains("data:image/png;base64,"));
//! assert_eq!(out.report.inlined, 2);
//! # Ok::<(), kscope_singlefile::InlineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod cache;
pub mod inline;
pub mod store;

pub use cache::{content_hash, AssetCache, CacheStats};
pub use inline::{InlineError, InlineOutput, InlineReport, Inliner};
pub use store::{
    classify_href, is_remote_url, normalize_path, resolve_relative, HrefTarget, ResourceStore,
};
