//! A virtual saved-webpage folder.
//!
//! The paper organizes each test webpage the way "save page as" does: an
//! initial HTML document plus a folder (and subfolders) of resources.
//! [`ResourceStore`] models that folder as a map from normalized relative
//! paths to typed byte blobs.

use bytes::Bytes;
use std::collections::BTreeMap;

/// One stored resource: a MIME type and its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// MIME type, e.g. `text/css`.
    pub mime: String,
    /// Raw contents.
    pub data: Bytes,
}

/// A virtual folder of webpage resources keyed by normalized relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStore {
    entries: BTreeMap<String, Resource>,
}

impl ResourceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a resource under a path (normalized). Replaces any previous
    /// entry and returns it.
    pub fn insert(&mut self, path: &str, mime: &str, data: impl Into<Bytes>) -> Option<Resource> {
        self.entries
            .insert(normalize_path(path), Resource { mime: mime.to_string(), data: data.into() })
    }

    /// Inserts a text resource, guessing the MIME type from the extension.
    pub fn insert_text(&mut self, path: &str, text: &str) -> Option<Resource> {
        let mime = guess_mime(path);
        self.insert(path, mime, text.as_bytes().to_vec())
    }

    /// Fetches a resource by path (normalized before lookup).
    pub fn get(&self, path: &str) -> Option<&Resource> {
        self.entries.get(&normalize_path(path))
    }

    /// Fetches a resource's contents as UTF-8 text.
    pub fn get_text(&self, path: &str) -> Option<String> {
        self.get(path).map(|r| String::from_utf8_lossy(&r.data).into_owned())
    }

    /// Fetches a resource's contents as UTF-8 text without copying when the
    /// bytes are already valid UTF-8 (the overwhelmingly common case for
    /// stored HTML/CSS/JS). The inliner reads each MB-scale main document
    /// through this accessor, so the borrow saves a full-page copy per
    /// version.
    pub fn get_str(&self, path: &str) -> Option<std::borrow::Cow<'_, str>> {
        self.get(path).map(|r| String::from_utf8_lossy(&r.data))
    }

    /// Whether a path exists.
    pub fn contains(&self, path: &str) -> bool {
        self.entries.contains_key(&normalize_path(path))
    }

    /// All stored paths in sorted order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Paths under a folder prefix (normalized), e.g. `"page/"`.
    pub fn paths_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        let norm = normalize_path(prefix);
        self.entries.keys().filter(move |k| k.starts_with(&norm)).map(String::as_str)
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no resources.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of resource sizes in bytes.
    pub fn total_bytes(&self) -> usize {
        self.entries.values().map(|r| r.data.len()).sum()
    }
}

impl FromIterator<(String, String, Vec<u8>)> for ResourceStore {
    fn from_iter<I: IntoIterator<Item = (String, String, Vec<u8>)>>(iter: I) -> Self {
        let mut store = Self::new();
        for (path, mime, data) in iter {
            store.insert(&path, &mime, data);
        }
        store
    }
}

/// Normalizes a relative path: forward slashes, no leading `./`, resolved
/// `..` segments (clamped at the root), collapsed `//`.
///
/// ```
/// use kscope_singlefile::normalize_path;
/// assert_eq!(normalize_path("./a//b/../c.css"), "a/c.css");
/// assert_eq!(normalize_path("../../x"), "x");
/// ```
pub fn normalize_path(path: &str) -> String {
    let unified = path.replace('\\', "/");
    let mut parts: Vec<&str> = Vec::new();
    for seg in unified.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    parts.join("/")
    // Note: `..` above the root is clamped, matching how a saved-page folder
    // cannot reference outside itself.
}

/// Resolves `href` relative to the directory of `base_file`.
///
/// `?query` and `#fragment` suffixes are stripped before resolution (a
/// saved-page folder stores `x.css`, not `x.css?v=2`), and a root-absolute
/// href (`/x.css`) resolves against the store root rather than being glued
/// onto the base directory.
///
/// ```
/// use kscope_singlefile::resolve_relative;
/// assert_eq!(resolve_relative("page/index.html", "css/a.css"), "page/css/a.css");
/// assert_eq!(resolve_relative("page/sub/f.html", "../img.png"), "page/img.png");
/// assert_eq!(resolve_relative("index.html", "style.css"), "style.css");
/// assert_eq!(resolve_relative("page/index.html", "a.css?v=2"), "page/a.css");
/// assert_eq!(resolve_relative("page/index.html", "/x.css"), "x.css");
/// ```
pub fn resolve_relative(base_file: &str, href: &str) -> String {
    let href = strip_query_fragment(href);
    if let Some(rooted) = href.strip_prefix('/') {
        return normalize_path(rooted);
    }
    let base = normalize_path(base_file);
    let dir = match base.rfind('/') {
        Some(idx) => &base[..idx],
        None => "",
    };
    if dir.is_empty() {
        normalize_path(href)
    } else {
        normalize_path(&format!("{dir}/{href}"))
    }
}

/// Cuts `?query` and `#fragment` suffixes off an href.
fn strip_query_fragment(href: &str) -> &str {
    let end = href.find(['?', '#']).unwrap_or(href.len());
    &href[..end]
}

/// How an href should be treated by the inliner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HrefTarget {
    /// A store-resolvable path (already resolved against the base file).
    Local(String),
    /// A remote URL (`https://…`, `//cdn/…`, `mailto:`, …): external by
    /// design, never a store lookup and never a "missing" resource.
    Remote,
    /// An already-inlined `data:` URI — nothing to do.
    DataUri,
    /// A pure `#fragment` / `?query` self-reference — nothing to fetch.
    Anchor,
}

/// Classifies `href` (as found in a document at `base_file`) into the
/// inliner's cases: local store path, remote-by-design URL, `data:` URI,
/// or same-document anchor.
///
/// ```
/// use kscope_singlefile::{classify_href, HrefTarget};
/// assert_eq!(classify_href("d/f.html", "x.css?v=2"), HrefTarget::Local("d/x.css".into()));
/// assert_eq!(classify_href("d/f.html", "https://cdn/x.css"), HrefTarget::Remote);
/// assert_eq!(classify_href("d/f.html", "#top"), HrefTarget::Anchor);
/// ```
pub fn classify_href(base_file: &str, href: &str) -> HrefTarget {
    let trimmed = href.trim();
    if trimmed.starts_with("data:") {
        return HrefTarget::DataUri;
    }
    if is_remote_url(trimmed) {
        return HrefTarget::Remote;
    }
    if strip_query_fragment(trimmed).is_empty() {
        return HrefTarget::Anchor;
    }
    HrefTarget::Local(resolve_relative(base_file, trimmed))
}

/// Whether an href points outside the saved-page folder by design:
/// protocol-relative (`//cdn/x`) or carrying a URL scheme (`https:`,
/// `mailto:`, …). Single letters before `:` are not treated as schemes so
/// Windows-style `C:\` saved-page paths keep resolving locally.
pub fn is_remote_url(s: &str) -> bool {
    if s.starts_with("//") {
        return true;
    }
    match s.find(':') {
        Some(idx) if idx >= 2 => s[..idx].chars().enumerate().all(|(i, c)| {
            if i == 0 {
                c.is_ascii_alphabetic()
            } else {
                c.is_ascii_alphanumeric() || matches!(c, '+' | '.' | '-')
            }
        }),
        _ => false,
    }
}

/// Guesses a MIME type from a file extension (the small set saved webpages
/// contain).
pub fn guess_mime(path: &str) -> &'static str {
    let ext = path.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
    match ext.as_str() {
        "html" | "htm" => "text/html",
        "css" => "text/css",
        "js" | "mjs" => "text/javascript",
        "json" => "application/json",
        "png" => "image/png",
        "jpg" | "jpeg" => "image/jpeg",
        "gif" => "image/gif",
        "svg" => "image/svg+xml",
        "webp" => "image/webp",
        "ico" => "image/x-icon",
        "woff" => "font/woff",
        "woff2" => "font/woff2",
        "ttf" => "font/ttf",
        "txt" => "text/plain",
        _ => "application/octet-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut s = ResourceStore::new();
        s.insert("a/b.css", "text/css", b"x{}".to_vec());
        assert_eq!(s.get("a/b.css").unwrap().mime, "text/css");
        assert_eq!(s.get_text("a/b.css").as_deref(), Some("x{}"));
        assert!(s.contains("./a/b.css"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 3);
    }

    #[test]
    fn normalized_lookup() {
        let mut s = ResourceStore::new();
        s.insert("./page//style.css", "text/css", b"".to_vec());
        assert!(s.contains("page/style.css"));
        assert!(s.contains("page/sub/../style.css"));
    }

    #[test]
    fn replace_returns_previous() {
        let mut s = ResourceStore::new();
        assert!(s.insert("x", "text/plain", b"1".to_vec()).is_none());
        let prev = s.insert("x", "text/plain", b"2".to_vec()).unwrap();
        assert_eq!(&prev.data[..], b"1");
    }

    #[test]
    fn paths_under_prefix() {
        let mut s = ResourceStore::new();
        s.insert("p1/a", "text/plain", b"".to_vec());
        s.insert("p1/sub/b", "text/plain", b"".to_vec());
        s.insert("p2/c", "text/plain", b"".to_vec());
        let under: Vec<&str> = s.paths_under("p1/").collect();
        assert_eq!(under, vec!["p1/a", "p1/sub/b"]);
    }

    #[test]
    fn normalize_cases() {
        assert_eq!(normalize_path("a/b/c"), "a/b/c");
        assert_eq!(normalize_path("./a"), "a");
        assert_eq!(normalize_path("a/./b"), "a/b");
        assert_eq!(normalize_path("a/../b"), "b");
        assert_eq!(normalize_path("a/b/../../c"), "c");
        assert_eq!(normalize_path("../x"), "x");
        assert_eq!(normalize_path("a//b"), "a/b");
        assert_eq!(normalize_path("a\\b"), "a/b");
        assert_eq!(normalize_path(""), "");
    }

    #[test]
    fn resolve_relative_cases() {
        assert_eq!(resolve_relative("d/f.html", "x.css"), "d/x.css");
        assert_eq!(resolve_relative("d/f.html", "./x.css"), "d/x.css");
        assert_eq!(resolve_relative("d/f.html", "sub/x.css"), "d/sub/x.css");
        assert_eq!(resolve_relative("d/e/f.html", "../x.css"), "d/x.css");
        assert_eq!(resolve_relative("f.html", "x.css"), "x.css");
    }

    #[test]
    fn resolve_relative_strips_query_and_fragment() {
        assert_eq!(resolve_relative("d/f.html", "x.css?v=2"), "d/x.css");
        assert_eq!(resolve_relative("d/f.html", "x.css#section"), "d/x.css");
        assert_eq!(resolve_relative("d/f.html", "x.css?v=2#frag"), "d/x.css");
        assert_eq!(resolve_relative("f.html", "img/a.png?cache=1"), "img/a.png");
    }

    #[test]
    fn resolve_relative_root_absolute_resolves_against_store_root() {
        assert_eq!(resolve_relative("d/f.html", "/x.css"), "x.css");
        assert_eq!(resolve_relative("d/e/f.html", "/img/a.png"), "img/a.png");
        assert_eq!(resolve_relative("f.html", "/x.css?v=1"), "x.css");
    }

    #[test]
    fn classify_href_cases() {
        assert_eq!(classify_href("d/f.html", "x.css"), HrefTarget::Local("d/x.css".into()));
        assert_eq!(classify_href("d/f.html", "x.css?v=2"), HrefTarget::Local("d/x.css".into()));
        assert_eq!(classify_href("d/f.html", "/root.css"), HrefTarget::Local("root.css".into()));
        assert_eq!(classify_href("d/f.html", "https://cdn.example.com/x.css"), HrefTarget::Remote);
        assert_eq!(classify_href("d/f.html", "http://a/b.js"), HrefTarget::Remote);
        assert_eq!(classify_href("d/f.html", "//cdn/x.js"), HrefTarget::Remote);
        assert_eq!(classify_href("d/f.html", "mailto:a@b.c"), HrefTarget::Remote);
        assert_eq!(classify_href("d/f.html", "data:image/png;base64,AA"), HrefTarget::DataUri);
        assert_eq!(classify_href("d/f.html", "#top"), HrefTarget::Anchor);
        assert_eq!(classify_href("d/f.html", "?page=2"), HrefTarget::Anchor);
        // A colon later in the path is not a scheme.
        assert_eq!(
            classify_href("d/f.html", "img/a:b.png"),
            HrefTarget::Local("d/img/a:b.png".into())
        );
    }

    #[test]
    fn remote_url_detection() {
        assert!(is_remote_url("https://x"));
        assert!(is_remote_url("//cdn/x"));
        assert!(is_remote_url("ftp://x"));
        assert!(is_remote_url("mailto:someone@example.com"));
        // Windows drive letters are single-character "schemes" — local.
        assert!(!is_remote_url("C:\\pages\\x.css"));
        assert!(!is_remote_url("x.css"));
        assert!(!is_remote_url("img/a:b.png"));
    }

    #[test]
    fn mime_guessing() {
        assert_eq!(guess_mime("a/b.CSS"), "text/css");
        assert_eq!(guess_mime("p.png"), "image/png");
        assert_eq!(guess_mime("script.js"), "text/javascript");
        assert_eq!(guess_mime("noext"), "application/octet-stream");
    }

    #[test]
    fn from_iterator() {
        let s: ResourceStore = vec![
            ("a".to_string(), "text/plain".to_string(), b"1".to_vec()),
            ("b".to_string(), "text/plain".to_string(), b"2".to_vec()),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_text_guesses_mime() {
        let mut s = ResourceStore::new();
        s.insert_text("style.css", "body{}");
        assert_eq!(s.get("style.css").unwrap().mime, "text/css");
    }
}
