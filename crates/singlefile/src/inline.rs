//! The single-file inliner.
//!
//! Folds every external reference of a saved webpage into the document
//! itself:
//!
//! * `<link rel="stylesheet" href=…>` → `<style>…</style>` (with nested
//!   `url(...)` and one-level `@import` resolution),
//! * `<script src=…>` → `<script>…</script>`,
//! * `<img src=…>` / `<source src=…>` / `<input type=image src=…>` →
//!   `data:` URIs,
//! * inline `style="background-image: url(...)"` → `data:` URIs.
//!
//! Missing resources are recorded in the report rather than failing the
//! whole page — saved webpages routinely have dead references.
//!
//! [`Inliner::inline`] runs as a **single streaming pass** over the main
//! document ([`kscope_html::rewrite_start_tags`]): untouched input spans
//! are copied verbatim (no parse → DOM → re-serialize round trip, no
//! re-escape of text the inliner never looks at), and only the tags that
//! actually change are re-rendered from arena-backed fragments. The
//! pre-streaming DOM implementation survives as [`Inliner::inline_dom`],
//! the reference the streaming path is differentially tested against and
//! the benchmark's PR 5 baseline.

use crate::base64;
use crate::cache::{content_hash, AssetCache};
use crate::store::{classify_href, guess_mime, HrefTarget, ResourceStore};
use kscope_html::rewriter::{Action, Fragment, StartTag};
use kscope_html::{parse_document, rewrite_start_tags, Document, NodeId};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Error returned when the main document itself cannot be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The main HTML file was not present in the store.
    MissingMainFile(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::MissingMainFile(path) => {
                write!(f, "main file '{path}' not found in resource store")
            }
        }
    }
}

impl std::error::Error for InlineError {}

/// Statistics about one inlining run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InlineReport {
    /// Number of external references successfully folded in.
    pub inlined: usize,
    /// Paths that were referenced but absent from the store.
    pub missing: Vec<String>,
    /// Remote URLs (`https://…`, `//cdn/…`) left in place by design — a
    /// saved page legitimately references the live web; these are not
    /// missing resources.
    pub external: Vec<String>,
    /// Size of the main HTML before inlining, in bytes.
    pub bytes_before: usize,
    /// Size of the produced single file, in bytes.
    pub bytes_after: usize,
}

impl InlineReport {
    /// Folds a nested report (a processed stylesheet's accounting) into
    /// this one.
    fn absorb(&mut self, other: &InlineReport) {
        self.inlined += other.inlined;
        self.missing.extend(other.missing.iter().cloned());
        self.external.extend(other.external.iter().cloned());
    }
}

/// The product of [`Inliner::inline`]: the self-contained HTML plus a
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineOutput {
    /// The single-file HTML document.
    pub html: String,
    /// What was inlined and what was missing.
    pub report: InlineReport,
}

/// One memoized stylesheet: the processed CSS plus the report entries its
/// processing produced, replayed on every reuse so per-document reports
/// stay accurate.
#[derive(Debug)]
struct CssEntry {
    css: Arc<str>,
    report: InlineReport,
}

/// Folds a saved webpage (main file + resources) into one HTML document.
#[derive(Debug)]
pub struct Inliner<'a> {
    store: &'a ResourceStore,
    cache: Option<&'a AssetCache>,
    /// Per-inliner memo of processed stylesheets, keyed by
    /// `(path, raw content)` hash — resolution is path-dependent, so the
    /// path is part of the key. Lives only as long as the inliner (the
    /// backing store is borrowed immutably, so entries cannot go stale).
    css_memo: RwLock<HashMap<u128, CssEntry>>,
}

impl<'a> Inliner<'a> {
    /// Creates an inliner over a resource store.
    pub fn new(store: &'a ResourceStore) -> Self {
        Self { store, cache: None, css_memo: RwLock::new(HashMap::new()) }
    }

    /// Attaches a content-addressed [`AssetCache`] (builder style): every
    /// `data:` URI encode goes through it, and processed stylesheets are
    /// memoized for the inliner's lifetime, so an asset referenced by
    /// several documents — or twice by one — is encoded exactly once.
    pub fn with_cache(mut self, cache: &'a AssetCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Inlines the page whose main HTML file lives at `main_path`.
    ///
    /// Single streaming pass: every start tag is offered to the visitor
    /// once, in document order, and everything else — text, raw-text
    /// bodies, comments, even malformed markup — passes through
    /// byte-for-byte. Report entries (`missing`, `external`, `inlined`)
    /// are therefore in document order, where the DOM reference
    /// implementation ([`Self::inline_dom`]) groups them by pass.
    ///
    /// # Errors
    ///
    /// Returns [`InlineError::MissingMainFile`] if `main_path` is absent.
    /// Missing *sub*-resources are reported, not fatal.
    pub fn inline(&self, main_path: &str) -> Result<InlineOutput, InlineError> {
        let main = self
            .store
            .get_str(main_path)
            .ok_or_else(|| InlineError::MissingMainFile(main_path.to_string()))?;
        let mut report = InlineReport { bytes_before: main.len(), ..Default::default() };
        let html = rewrite_start_tags(&main, |tag, frag| {
            self.visit_tag(main_path, tag, frag, &mut report)
        });
        report.bytes_after = html.len();
        Ok(InlineOutput { html, report })
    }

    /// The streaming visitor: decides, per start tag, whether the source
    /// bytes pass through or an arena fragment replaces them.
    fn visit_tag(
        &self,
        base: &str,
        tag: &StartTag<'_>,
        frag: &mut Fragment<'_>,
        report: &mut InlineReport,
    ) -> Action {
        match tag.name {
            // <link rel=stylesheet href=…> folds into <style>…</style>.
            "link" => {
                let stylesheet =
                    tag.attr("rel").map(|r| r.eq_ignore_ascii_case("stylesheet")).unwrap_or(false);
                let Some(href) = tag.attr("href").filter(|_| stylesheet) else {
                    return Action::Keep;
                };
                match classify_href(base, href) {
                    HrefTarget::Local(path) => match self.store.get_str(&path) {
                        Some(css) => {
                            let css = self.process_css_memoized(&css, &path, report);
                            frag.raw_text_element("style", &css);
                            report.inlined += 1;
                            Action::Replace
                        }
                        None => {
                            report.missing.push(path);
                            Action::Keep
                        }
                    },
                    HrefTarget::Remote => {
                        report.external.push(href.to_string());
                        Action::Keep
                    }
                    HrefTarget::DataUri | HrefTarget::Anchor => Action::Keep,
                }
            }
            // <script src=…> re-opens without src and injects the body;
            // the source `</script>` end tag stays in the stream.
            "script" => {
                let Some(src) = tag.attr("src") else { return Action::Keep };
                match classify_href(base, src) {
                    HrefTarget::Local(path) => match self.store.get_str(&path) {
                        Some(js) => {
                            {
                                let mut t = frag.open_tag("script", false);
                                for (k, v) in tag.attrs {
                                    if k != "src" {
                                        let v = self.maybe_rewrite_style(k, v, base, report);
                                        t.attr(k, &v);
                                    }
                                }
                            }
                            frag.raw(&js);
                            report.inlined += 1;
                            Action::Replace
                        }
                        None => {
                            report.missing.push(path);
                            Action::Keep
                        }
                    },
                    HrefTarget::Remote => {
                        report.external.push(src.to_string());
                        Action::Keep
                    }
                    HrefTarget::DataUri | HrefTarget::Anchor => Action::Keep,
                }
            }
            // Everything else: maybe rewrite src to a data: URI
            // (img/source/input) and/or inline url(...)s in a style attr.
            _ => {
                let mut new_src: Option<String> = None;
                if matches!(tag.name, "img" | "source" | "input") {
                    if let Some(src) = tag.attr("src") {
                        match classify_href(base, src) {
                            HrefTarget::Local(path) => match self.data_uri(&path) {
                                Some(uri) => {
                                    report.inlined += 1;
                                    new_src = Some(uri);
                                }
                                None => report.missing.push(path),
                            },
                            HrefTarget::Remote => report.external.push(src.to_string()),
                            HrefTarget::DataUri | HrefTarget::Anchor => {}
                        }
                    }
                }
                let mut new_style: Option<String> = None;
                if let Some(style) = tag.attr("style") {
                    if style.contains("url(") {
                        let rewritten = self.rewrite_css_urls(style, base, report);
                        if rewritten != style {
                            new_style = Some(rewritten);
                        }
                    }
                }
                if new_src.is_none() && new_style.is_none() {
                    return Action::Keep;
                }
                let mut t = frag.open_tag(tag.name, tag.self_closing);
                for (k, v) in tag.attrs {
                    let v = match k.as_str() {
                        "src" => new_src.as_deref().unwrap_or(v),
                        "style" => new_style.as_deref().unwrap_or(v),
                        _ => v.as_str(),
                    };
                    t.attr(k, v);
                }
                Action::Replace
            }
        }
    }

    /// Rewrites a `style` attribute's `url(...)`s when `name == "style"`;
    /// otherwise returns the value untouched. Used where a tag is being
    /// re-rendered anyway (script src swap) so its style attr does not
    /// lose inlining.
    fn maybe_rewrite_style<'v>(
        &self,
        name: &str,
        value: &'v str,
        base: &str,
        report: &mut InlineReport,
    ) -> std::borrow::Cow<'v, str> {
        if name == "style" && value.contains("url(") {
            std::borrow::Cow::Owned(self.rewrite_css_urls(value, base, report))
        } else {
            std::borrow::Cow::Borrowed(value)
        }
    }

    /// The pre-streaming implementation: parse to a DOM, run four
    /// mutation passes, serialize. Kept as the reference the streaming
    /// path is differentially tested against (same semantic output up to
    /// serializer normalization) and as the benchmark's PR 5 baseline.
    ///
    /// # Errors
    ///
    /// Returns [`InlineError::MissingMainFile`] if `main_path` is absent.
    pub fn inline_dom(&self, main_path: &str) -> Result<InlineOutput, InlineError> {
        let main = self
            .store
            .get_text(main_path)
            .ok_or_else(|| InlineError::MissingMainFile(main_path.to_string()))?;
        let mut report = InlineReport { bytes_before: main.len(), ..Default::default() };
        let mut doc = parse_document(&main);

        self.inline_stylesheets(&mut doc, main_path, &mut report);
        self.inline_scripts(&mut doc, main_path, &mut report);
        self.inline_images(&mut doc, main_path, &mut report);
        self.inline_style_attr_urls(&mut doc, main_path, &mut report);

        let html = doc.to_html();
        report.bytes_after = html.len();
        Ok(InlineOutput { html, report })
    }

    fn inline_stylesheets(&self, doc: &mut Document, base: &str, report: &mut InlineReport) {
        let links: Vec<NodeId> = doc
            .elements()
            .into_iter()
            .filter(|&id| {
                let el = doc.element(id).expect("elements() yields elements");
                el.name == "link"
                    && el.attr("rel").map(|r| r.eq_ignore_ascii_case("stylesheet")).unwrap_or(false)
                    && el.attr("href").is_some()
            })
            .collect();
        for link in links {
            let href = doc.attr(link, "href").expect("filtered on href").to_string();
            let path = match classify_href(base, &href) {
                HrefTarget::Local(path) => path,
                HrefTarget::Remote => {
                    report.external.push(href);
                    continue;
                }
                HrefTarget::DataUri | HrefTarget::Anchor => continue,
            };
            match self.store.get_text(&path) {
                Some(css) => {
                    let css = self.process_css_memoized(&css, &path, report);
                    let style = doc.create_element("style");
                    let text = doc.create_text(&css);
                    doc.append_child(style, text);
                    doc.insert_before(link, style);
                    doc.detach(link);
                    report.inlined += 1;
                }
                None => report.missing.push(path),
            }
        }
    }

    /// Processes a fetched stylesheet (flatten `@import`s, rewrite
    /// `url(...)`s), memoizing the result by `(path, content)` when a
    /// cache is attached so a sheet shared across documents — or linked
    /// twice by one — is resolved once. The memo replays the first run's
    /// report entries so every document's report stays complete.
    fn process_css_memoized(&self, css: &str, path: &str, report: &mut InlineReport) -> Arc<str> {
        let fresh = |report: &mut InlineReport| {
            let mut seen = HashSet::new();
            seen.insert(path.to_string());
            Arc::<str>::from(self.process_css(css, path, &mut seen, report))
        };
        let Some(cache) = self.cache else {
            return fresh(report);
        };
        let key = content_hash(&[path.as_bytes(), css.as_bytes()]);
        if let Some(entry) = self.css_memo.read().get(&key) {
            report.absorb(&entry.report);
            cache.record_hit(css.len() as u64);
            return Arc::clone(&entry.css);
        }
        let mut sub = InlineReport::default();
        let processed = fresh(&mut sub);
        cache.record_miss(css.len() as u64);
        report.absorb(&sub);
        // A racing worker may have memoized the same sheet meanwhile;
        // both produced identical output, so either entry serves.
        self.css_memo
            .write()
            .entry(key)
            .or_insert(CssEntry { css: Arc::clone(&processed), report: sub });
        processed
    }

    fn inline_scripts(&self, doc: &mut Document, base: &str, report: &mut InlineReport) {
        let scripts: Vec<NodeId> = doc
            .elements()
            .into_iter()
            .filter(|&id| {
                let el = doc.element(id).expect("elements() yields elements");
                el.name == "script" && el.attr("src").is_some()
            })
            .collect();
        for script in scripts {
            let src = doc.attr(script, "src").expect("filtered on src").to_string();
            let path = match classify_href(base, &src) {
                HrefTarget::Local(path) => path,
                HrefTarget::Remote => {
                    report.external.push(src);
                    continue;
                }
                HrefTarget::DataUri | HrefTarget::Anchor => continue,
            };
            match self.store.get_text(&path) {
                Some(js) => {
                    if let Some(el) = doc.element_mut(script) {
                        el.remove_attr("src");
                    }
                    let text = doc.create_text(&js);
                    doc.append_child(script, text);
                    report.inlined += 1;
                }
                None => report.missing.push(path),
            }
        }
    }

    fn inline_images(&self, doc: &mut Document, base: &str, report: &mut InlineReport) {
        let imgs: Vec<NodeId> = doc
            .elements()
            .into_iter()
            .filter(|&id| {
                let el = doc.element(id).expect("elements() yields elements");
                matches!(el.name.as_str(), "img" | "source" | "input") && el.attr("src").is_some()
            })
            .collect();
        for img in imgs {
            let src = doc.attr(img, "src").expect("filtered on src").to_string();
            let path = match classify_href(base, &src) {
                HrefTarget::Local(path) => path,
                HrefTarget::Remote => {
                    report.external.push(src);
                    continue;
                }
                HrefTarget::DataUri | HrefTarget::Anchor => continue,
            };
            match self.data_uri(&path) {
                Some(uri) => {
                    doc.set_attr(img, "src", &uri);
                    report.inlined += 1;
                }
                None => report.missing.push(path),
            }
        }
    }

    fn inline_style_attr_urls(&self, doc: &mut Document, base: &str, report: &mut InlineReport) {
        let styled: Vec<NodeId> = doc
            .elements()
            .into_iter()
            .filter(|&id| doc.attr(id, "style").map(|s| s.contains("url(")).unwrap_or(false))
            .collect();
        for id in styled {
            let style = doc.attr(id, "style").expect("filtered on style").to_string();
            let rewritten = self.rewrite_css_urls(&style, base, report);
            doc.set_attr(id, "style", &rewritten);
        }
    }

    /// Rewrites `url(...)` references and flattens `@import` lines inside a
    /// stylesheet fetched from `css_path`.
    fn process_css(
        &self,
        css: &str,
        css_path: &str,
        seen: &mut HashSet<String>,
        report: &mut InlineReport,
    ) -> String {
        let flattened = self.flatten_imports(css, css_path, seen, report);
        self.rewrite_css_urls(&flattened, css_path, report)
    }

    fn flatten_imports(
        &self,
        css: &str,
        css_path: &str,
        seen: &mut HashSet<String>,
        report: &mut InlineReport,
    ) -> String {
        let mut out = String::with_capacity(css.len());
        for line in css.lines() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("@import") {
                if let Some(target) = parse_import_target(rest) {
                    let path = match classify_href(css_path, &target) {
                        HrefTarget::Local(path) => path,
                        HrefTarget::Remote => {
                            report.external.push(target);
                            continue;
                        }
                        HrefTarget::DataUri | HrefTarget::Anchor => continue,
                    };
                    if seen.insert(path.clone()) {
                        match self.store.get_text(&path) {
                            Some(nested) => {
                                let nested = self.flatten_imports(&nested, &path, seen, report);
                                out.push_str(&self.rewrite_css_urls(&nested, &path, report));
                                out.push('\n');
                                report.inlined += 1;
                                continue;
                            }
                            None => {
                                report.missing.push(path);
                                continue;
                            }
                        }
                    } else {
                        // Import cycle: drop the repeated import.
                        continue;
                    }
                }
            }
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    fn rewrite_css_urls(&self, css: &str, base: &str, report: &mut InlineReport) -> String {
        let mut out = String::with_capacity(css.len());
        let mut rest = css;
        while let Some(pos) = rest.find("url(") {
            out.push_str(&rest[..pos + 4]);
            rest = &rest[pos + 4..];
            let close = match rest.find(')') {
                Some(c) => c,
                None => break,
            };
            let raw = rest[..close].trim();
            let target = raw.trim_matches(|c| c == '"' || c == '\'');
            match classify_href(base, target) {
                HrefTarget::Local(path) => match self.data_uri(&path) {
                    Some(uri) => {
                        out.push_str(&uri);
                        report.inlined += 1;
                    }
                    None => {
                        report.missing.push(path);
                        out.push_str(raw);
                    }
                },
                HrefTarget::Remote => {
                    report.external.push(target.to_string());
                    out.push_str(raw);
                }
                HrefTarget::DataUri | HrefTarget::Anchor => out.push_str(raw),
            }
            out.push(')');
            rest = &rest[close + 1..];
        }
        out.push_str(rest);
        out
    }

    fn data_uri(&self, path: &str) -> Option<String> {
        let res = self.store.get(path)?;
        let mime = if res.mime.is_empty() { guess_mime(path) } else { res.mime.as_str() };
        match self.cache {
            Some(cache) => Some(cache.data_uri(mime, &res.data).to_string()),
            None => Some(format!("data:{mime};base64,{}", base64::encode(&res.data))),
        }
    }
}

/// Extracts the target of `@import "x.css";` or `@import url(x.css);`.
fn parse_import_target(rest: &str) -> Option<String> {
    let rest = rest.trim().trim_end_matches(';').trim();
    let inner = if let Some(stripped) = rest.strip_prefix("url(") {
        stripped.strip_suffix(')')?
    } else {
        rest
    };
    let target = inner.trim().trim_matches(|c| c == '"' || c == '\'').to_string();
    if target.is_empty() {
        None
    } else {
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ResourceStore {
        let mut s = ResourceStore::new();
        s.insert(
            "page/index.html",
            "text/html",
            br#"<html><head>
                <link rel="stylesheet" href="css/main.css">
                <script src="js/app.js"></script>
                </head><body>
                <img src="img/photo.jpg">
                <div style="background-image: url('img/bg.png')">x</div>
                </body></html>"#
                .to_vec(),
        );
        s.insert(
            "page/css/main.css",
            "text/css",
            b"body { background: url(../img/bg.png); }".to_vec(),
        );
        s.insert("page/js/app.js", "text/javascript", b"console.log(1);".to_vec());
        s.insert("page/img/photo.jpg", "image/jpeg", vec![0xff, 0xd8, 0xff]);
        s.insert("page/img/bg.png", "image/png", vec![0x89, 0x50]);
        s
    }

    #[test]
    fn inlines_everything() {
        let s = store();
        let out = Inliner::new(&s).inline("page/index.html").unwrap();
        assert!(out.html.contains("<style>"));
        assert!(!out.html.contains("main.css"));
        assert!(out.html.contains("console.log(1);"));
        assert!(!out.html.contains("js/app.js"));
        assert!(out.html.contains("data:image/jpeg;base64,/9j/"));
        assert!(out.html.contains("data:image/png;base64,"));
        assert!(out.report.missing.is_empty());
        // link + script + img + css url + style-attr url = 5
        assert_eq!(out.report.inlined, 5);
        assert_eq!(out.report.bytes_after, out.html.len());
    }

    #[test]
    fn output_is_self_contained() {
        let s = store();
        let out = Inliner::new(&s).inline("page/index.html").unwrap();
        // Re-inlining against an EMPTY store must find nothing left to fetch.
        let mut empty = ResourceStore::new();
        empty.insert("page/index.html", "text/html", out.html.clone().into_bytes());
        let again = Inliner::new(&empty).inline("page/index.html").unwrap();
        assert_eq!(again.report.inlined, 0);
        assert!(again.report.missing.is_empty(), "missing: {:?}", again.report.missing);
    }

    #[test]
    fn missing_main_file_is_an_error() {
        let s = ResourceStore::new();
        let err = Inliner::new(&s).inline("nope.html").unwrap_err();
        assert_eq!(err, InlineError::MissingMainFile("nope.html".into()));
        assert!(err.to_string().contains("nope.html"));
    }

    #[test]
    fn missing_subresource_is_reported_not_fatal() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<img src="gone.png"><link rel=stylesheet href="gone.css">"#.to_vec(),
        );
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert_eq!(out.report.inlined, 0);
        // The streaming pass reports in document order (img before link).
        assert_eq!(out.report.missing, vec!["p/gone.png".to_string(), "p/gone.css".to_string()]);
        // The DOM reference implementation groups by pass instead.
        let dom = Inliner::new(&s).inline_dom("p/i.html").unwrap();
        assert_eq!(dom.report.missing, vec!["p/gone.css".to_string(), "p/gone.png".to_string()]);
    }

    #[test]
    fn external_urls_left_alone() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<img src="https://cdn.example.com/x.png"><script src="//cdn/x.js"></script>"#
                .to_vec(),
        );
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains("https://cdn.example.com/x.png"));
        assert_eq!(out.report.inlined, 0);
        // Remote URLs are external by design, not missing resources.
        assert!(out.report.missing.is_empty(), "missing: {:?}", out.report.missing);
        let mut external = out.report.external.clone();
        external.sort();
        assert_eq!(
            external,
            vec!["//cdn/x.js".to_string(), "https://cdn.example.com/x.png".to_string()]
        );
    }

    #[test]
    fn remote_stylesheet_link_is_external_not_missing() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<link rel="stylesheet" href="https://fonts.example.com/css?family=X">"#.to_vec(),
        );
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains("https://fonts.example.com/css?family=X"), "link left alone");
        assert!(out.report.missing.is_empty(), "missing: {:?}", out.report.missing);
        assert_eq!(out.report.external.len(), 1);
    }

    #[test]
    fn query_and_fragment_suffixes_still_resolve() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<link rel="stylesheet" href="a.css?v=2"><img src="img/x.png#frag">"#.to_vec(),
        );
        s.insert("p/a.css", "text/css", b".a { x: 1 }".to_vec());
        s.insert("p/img/x.png", "image/png", vec![0x89, 0x50]);
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains(".a { x: 1 }"), "a.css?v=2 must hit the store");
        assert!(out.html.contains("data:image/png;base64,"));
        assert!(out.report.missing.is_empty(), "missing: {:?}", out.report.missing);
        assert_eq!(out.report.inlined, 2);
    }

    #[test]
    fn root_absolute_hrefs_resolve_against_store_root() {
        let mut s = ResourceStore::new();
        s.insert(
            "pages/v0/index.html",
            "text/html",
            br#"<link rel="stylesheet" href="/shared/site.css"><img src="/shared/logo.png">"#
                .to_vec(),
        );
        s.insert("shared/site.css", "text/css", b"body { margin: 0 }".to_vec());
        s.insert("shared/logo.png", "image/png", vec![1, 2, 3]);
        let out = Inliner::new(&s).inline("pages/v0/index.html").unwrap();
        assert!(out.html.contains("body { margin: 0 }"));
        assert!(out.html.contains("data:image/png;base64,"));
        assert!(out.report.missing.is_empty(), "missing: {:?}", out.report.missing);
        assert_eq!(out.report.inlined, 2);
    }

    #[test]
    fn anchor_and_empty_hrefs_are_ignored() {
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", br##"<img src="#top"><img src="">"##.to_vec());
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert_eq!(out.report.inlined, 0);
        assert!(out.report.missing.is_empty());
        assert!(out.report.external.is_empty());
    }

    #[test]
    fn remote_import_is_external_not_garbage_lookup() {
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", br#"<link rel="stylesheet" href="a.css">"#.to_vec());
        s.insert(
            "p/a.css",
            "text/css",
            b"@import url(https://fonts.example.com/x.css);\n.a{}".to_vec(),
        );
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains(".a{}"));
        assert!(out.report.missing.is_empty(), "missing: {:?}", out.report.missing);
        assert_eq!(out.report.external, vec!["https://fonts.example.com/x.css".to_string()]);
    }

    #[test]
    fn duplicate_references_encode_once_via_cache() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<img src="img/a.png"><img src="img/a.png"><img src="img/a.png">"#.to_vec(),
        );
        s.insert("p/img/a.png", "image/png", vec![0x89, 0x50, 0x4e, 0x47]);
        let cache = AssetCache::new();
        let out = Inliner::new(&s).with_cache(&cache).inline("p/i.html").unwrap();
        assert_eq!(out.report.inlined, 3, "every reference is rewritten");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "thrice-referenced asset is encoded once");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn duplicate_stylesheet_links_resolve_once() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<link rel="stylesheet" href="a.css"><link rel="stylesheet" href="a.css">"#.to_vec(),
        );
        s.insert("p/a.css", "text/css", b".a { background: url(img/bg.png) }".to_vec());
        s.insert("p/img/bg.png", "image/png", vec![9, 9, 9]);
        let cache = AssetCache::new();
        let out = Inliner::new(&s).with_cache(&cache).inline("p/i.html").unwrap();
        // Both links fold in, both reports count the nested url() inline.
        assert_eq!(out.report.inlined, 4, "2 links + 2 replayed url() inlines");
        let stats = cache.stats();
        // First pass: css miss + png miss. Second link: css memo hit.
        assert_eq!(stats.misses, 2, "sheet and image each encoded/resolved once");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn shared_import_assets_encode_once_across_sheets() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<link rel="stylesheet" href="a.css"><link rel="stylesheet" href="b.css">"#.to_vec(),
        );
        s.insert("p/a.css", "text/css", b"@import 'common.css';\n.a{}".to_vec());
        s.insert("p/b.css", "text/css", b"@import 'common.css';\n.b{}".to_vec());
        s.insert("p/common.css", "text/css", b".c { background: url(img/c.png) }".to_vec());
        s.insert("p/img/c.png", "image/png", vec![7; 64]);
        let cache = AssetCache::new();
        let out = Inliner::new(&s).with_cache(&cache).inline("p/i.html").unwrap();
        assert!(out.report.missing.is_empty());
        let stats = cache.stats();
        // The shared import's image is base64-encoded exactly once even
        // though two distinct sheets pull it in.
        assert_eq!(stats.misses, 3, "a.css, b.css, c.png each resolved once: {stats:?}");
        assert_eq!(stats.hits, 1, "second sheet's url(c.png) hits the data-uri cache");
    }

    #[test]
    fn cache_shares_identical_content_across_documents() {
        let mut s = ResourceStore::new();
        for v in 0..3 {
            s.insert(
                &format!("v{v}/index.html"),
                "text/html",
                br#"<img src="img/logo.png">"#.to_vec(),
            );
            // Same bytes saved under three different folders.
            s.insert(&format!("v{v}/img/logo.png"), "image/png", vec![0xAB; 256]);
        }
        let cache = AssetCache::new();
        let inliner = Inliner::new(&s).with_cache(&cache);
        let mut htmls = Vec::new();
        for v in 0..3 {
            htmls.push(inliner.inline(&format!("v{v}/index.html")).unwrap().html);
        }
        assert_eq!(htmls[0], htmls[1]);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "identical content under different paths encodes once");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.saved_bytes, 512);
    }

    #[test]
    fn data_uris_not_reencoded() {
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", br#"<img src="data:image/png;base64,AAAA">"#.to_vec());
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains("data:image/png;base64,AAAA"));
        assert_eq!(out.report.inlined, 0);
    }

    #[test]
    fn import_chains_flattened() {
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", br#"<link rel="stylesheet" href="a.css">"#.to_vec());
        s.insert("p/a.css", "text/css", b"@import \"b.css\";\n.a { x: 1 }".to_vec());
        s.insert("p/b.css", "text/css", b".b { y: 2 }".to_vec());
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains(".a { x: 1 }"));
        assert!(out.html.contains(".b { y: 2 }"));
        assert!(!out.html.contains("@import"));
    }

    #[test]
    fn import_cycles_terminate() {
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", br#"<link rel="stylesheet" href="a.css">"#.to_vec());
        s.insert("p/a.css", "text/css", b"@import 'b.css';\n.a{}".to_vec());
        s.insert("p/b.css", "text/css", b"@import 'a.css';\n.b{}".to_vec());
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains(".a{}"));
        assert!(out.html.contains(".b{}"));
    }

    #[test]
    fn import_url_form() {
        assert_eq!(parse_import_target(" url(x.css);"), Some("x.css".to_string()));
        assert_eq!(parse_import_target(" \"y.css\";"), Some("y.css".to_string()));
        assert_eq!(parse_import_target(" ;"), None);
    }

    #[test]
    fn streaming_pass_preserves_untouched_bytes() {
        let mut s = ResourceStore::new();
        s.insert(
            "p/i.html",
            "text/html",
            br#"<!DOCTYPE html><DIV Class=a>1 < 2 &amp; &bogus;</div><img src="img/a.png">tail"#
                .to_vec(),
        );
        s.insert("p/img/a.png", "image/png", vec![1, 2, 3]);
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        // Only the <img> tag is re-rendered; every other byte — case,
        // quoting, entities, whitespace — is copied verbatim.
        assert!(
            out.html.starts_with(r#"<!DOCTYPE html><DIV Class=a>1 < 2 &amp; &bogus;</div>"#),
            "got: {}",
            out.html
        );
        assert!(out.html.ends_with("tail"));
        assert!(out.html.contains(r#"<img src="data:image/png;base64,AQID">"#));
    }

    #[test]
    fn page_with_nothing_to_inline_is_byte_identical() {
        let src = "<p>just text &copy; <b>bold</b></p><script>if(1<2){}</script>";
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", src.as_bytes().to_vec());
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert_eq!(out.html, src);
        assert_eq!(out.report.bytes_before, out.report.bytes_after);
    }

    #[test]
    fn streaming_and_dom_paths_agree_semantically() {
        let s = store();
        let inliner = Inliner::new(&s);
        let stream = inliner.inline("page/index.html").unwrap();
        let dom = inliner.inline_dom("page/index.html").unwrap();
        // Outputs may differ in untouched-byte normalization only; one
        // parse → serialize round trip maps both to the same fixed point.
        assert_eq!(parse_document(&stream.html).to_html(), parse_document(&dom.html).to_html());
        assert_eq!(stream.report.inlined, dom.report.inlined);
        assert_eq!(stream.report.missing.is_empty(), dom.report.missing.is_empty());
    }

    #[test]
    fn css_url_without_close_paren_does_not_hang() {
        let mut s = ResourceStore::new();
        s.insert("p/i.html", "text/html", br#"<link rel="stylesheet" href="a.css">"#.to_vec());
        s.insert("p/a.css", "text/css", b"body { background: url(broken".to_vec());
        let out = Inliner::new(&s).inline("p/i.html").unwrap();
        assert!(out.html.contains("url("));
    }
}
