//! Minimal standard-alphabet base64 (RFC 4648) for `data:` URIs.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded standard base64.
///
/// ```
/// assert_eq!(kscope_singlefile::base64::encode(b"Man"), "TWFu");
/// assert_eq!(kscope_singlefile::base64::encode(b"Ma"), "TWE=");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] as char } else { '=' });
    }
    out
}

/// Error returned by [`decode`] for malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeBase64Error {
    /// Byte offset of the offending character.
    pub position: usize,
}

impl std::fmt::Display for DecodeBase64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid base64 at byte {}", self.position)
    }
}

impl std::error::Error for DecodeBase64Error {}

/// Decodes padded standard base64.
///
/// # Errors
///
/// Returns [`DecodeBase64Error`] on characters outside the alphabet or a
/// length that is not a multiple of four.
pub fn decode(text: &str) -> Result<Vec<u8>, DecodeBase64Error> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeBase64Error { position: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (chunk_idx, chunk) in bytes.chunks(4).enumerate() {
        let mut vals = [0u32; 4];
        let mut pad = 0;
        for (i, &b) in chunk.iter().enumerate() {
            if b == b'=' {
                pad += 1;
                vals[i] = 0;
            } else {
                if pad > 0 {
                    // Data after padding is malformed.
                    return Err(DecodeBase64Error { position: chunk_idx * 4 + i });
                }
                vals[i] =
                    decode_char(b).ok_or(DecodeBase64Error { position: chunk_idx * 4 + i })?;
            }
        }
        let triple = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), b"");
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert!(decode("abc").is_err());
    }

    #[test]
    fn decode_rejects_bad_chars() {
        let err = decode("Zm9!").unwrap_err();
        assert_eq!(err.position, 3);
    }

    #[test]
    fn decode_rejects_data_after_padding() {
        assert!(decode("Zg=a").is_err());
    }
}
