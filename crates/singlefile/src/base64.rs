//! Minimal standard-alphabet base64 (RFC 4648) for `data:` URIs.
//!
//! The encoder is the aggregation hot path: every image, stylesheet and
//! script a page references is folded into a `data:` URI, so campaign
//! preparation encodes megabytes per version. [`encode`] therefore runs
//! word-at-a-time (SWAR): it loads 8 input bytes as one `u64`, slices the
//! top 48 bits into eight sextets, and writes the eight output characters
//! unrolled into a pre-sized `Vec<u8>` — no per-char `push`, no `unsafe`
//! (the final `String::from_utf8` validates an all-ASCII buffer in one
//! pass). [`encode_scalar`] keeps the original chunk-of-3 implementation
//! as the differential-testing reference.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded standard base64 (SWAR fast path).
///
/// ```
/// assert_eq!(kscope_singlefile::base64::encode(b"Man"), "TWFu");
/// assert_eq!(kscope_singlefile::base64::encode(b"Ma"), "TWE=");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = vec![0u8; data.len().div_ceil(3) * 4];
    let mut i = 0;
    let mut o = 0;
    // Main loop: load 8 bytes, consume 6 (two 24-bit triples), emit 8
    // characters. Reading 8 while consuming 6 needs a full word in
    // bounds, hence `i + 8 <= len`; the tail falls through to the
    // scalar loop below.
    while i + 8 <= data.len() {
        let w = u64::from_be_bytes(data[i..i + 8].try_into().expect("8-byte window"));
        out[o] = ALPHABET[(w >> 58 & 0x3f) as usize];
        out[o + 1] = ALPHABET[(w >> 52 & 0x3f) as usize];
        out[o + 2] = ALPHABET[(w >> 46 & 0x3f) as usize];
        out[o + 3] = ALPHABET[(w >> 40 & 0x3f) as usize];
        out[o + 4] = ALPHABET[(w >> 34 & 0x3f) as usize];
        out[o + 5] = ALPHABET[(w >> 28 & 0x3f) as usize];
        out[o + 6] = ALPHABET[(w >> 22 & 0x3f) as usize];
        out[o + 7] = ALPHABET[(w >> 16 & 0x3f) as usize];
        i += 6;
        o += 8;
    }
    for chunk in data[i..].chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out[o] = ALPHABET[(triple >> 18) as usize & 0x3f];
        out[o + 1] = ALPHABET[(triple >> 12) as usize & 0x3f];
        out[o + 2] = if chunk.len() > 1 { ALPHABET[(triple >> 6) as usize & 0x3f] } else { b'=' };
        out[o + 3] = if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] } else { b'=' };
        o += 4;
    }
    debug_assert_eq!(o, out.len());
    String::from_utf8(out).expect("base64 output is ASCII")
}

/// Reference scalar encoder (the pre-SWAR implementation). Kept for
/// differential property tests and the benchmark's PR 5 baseline path.
pub fn encode_scalar(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] as char } else { '=' });
    }
    out
}

/// Error returned by [`decode`] for malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeBase64Error {
    /// Byte offset of the offending character.
    pub position: usize,
}

impl std::fmt::Display for DecodeBase64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid base64 at byte {}", self.position)
    }
}

impl std::error::Error for DecodeBase64Error {}

/// Decodes padded standard base64.
///
/// # Errors
///
/// Returns [`DecodeBase64Error`] on characters outside the alphabet, a
/// length that is not a multiple of four, or malformed padding: `=` is
/// only legal in the last one or two positions of the final four-char
/// chunk (`"===="`, `"Z==="` and padding in a non-final chunk are all
/// rejected, with the error pointing at the offending byte).
pub fn decode(text: &str) -> Result<Vec<u8>, DecodeBase64Error> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeBase64Error { position: bytes.len() });
    }
    let last_chunk = (bytes.len() / 4).saturating_sub(1);
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (chunk_idx, chunk) in bytes.chunks(4).enumerate() {
        let mut vals = [0u32; 4];
        let mut pad = 0;
        for (i, &b) in chunk.iter().enumerate() {
            if b == b'=' {
                // '=' may only occupy the last two slots of the final
                // chunk; anywhere else it would force a chunk with fewer
                // than two data characters (no whole output byte) or
                // split the stream mid-way.
                if chunk_idx != last_chunk || i < 2 {
                    return Err(DecodeBase64Error { position: chunk_idx * 4 + i });
                }
                pad += 1;
                vals[i] = 0;
            } else {
                if pad > 0 {
                    // Data after padding is malformed.
                    return Err(DecodeBase64Error { position: chunk_idx * 4 + i });
                }
                vals[i] =
                    decode_char(b).ok_or(DecodeBase64Error { position: chunk_idx * 4 + i })?;
            }
        }
        let triple = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn swar_matches_scalar_across_lengths() {
        // Cover every main-loop/tail split around the 8-byte window.
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(encode(&data), encode_scalar(&data), "len {len}");
        }
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("").unwrap(), b"");
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert!(decode("abc").is_err());
    }

    #[test]
    fn decode_rejects_bad_chars() {
        let err = decode("Zm9!").unwrap_err();
        assert_eq!(err.position, 3);
    }

    #[test]
    fn decode_rejects_data_after_padding() {
        assert!(decode("Zg=a").is_err());
    }

    #[test]
    fn decode_rejects_all_padding_chunk() {
        // Used to return Ok([0]): the first output byte was pushed
        // unconditionally regardless of pad count.
        let err = decode("====").unwrap_err();
        assert_eq!(err.position, 0);
    }

    #[test]
    fn decode_rejects_overpadded_chunk() {
        // Used to emit a garbage byte decoded from a single sextet.
        let err = decode("Z===").unwrap_err();
        assert_eq!(err.position, 1);
    }

    #[test]
    fn decode_rejects_padding_in_non_final_chunk() {
        // Used to decode as if the stream ended mid-way.
        let err = decode("Zg==AAAA").unwrap_err();
        assert_eq!(err.position, 2);
        let err = decode("AAAAZ=AA").unwrap_err();
        assert_eq!(err.position, 5);
    }

    #[test]
    fn decode_still_accepts_legal_padding() {
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert_eq!(decode("AAAAZg==").unwrap(), [0, 0, 0, b'f']);
    }
}
