//! Content-addressed asset cache.
//!
//! The common A/B-test corpus shares almost every asset between versions:
//! the variants differ in one stylesheet rule or one button, while the
//! images, fonts, and scripts are byte-identical copies saved under each
//! version's folder. [`AssetCache`] deduplicates that work by *content*:
//! an asset is base64-encoded into its `data:` URI exactly once per unique
//! byte string, no matter how many paths, documents, or prepare runs
//! reference it. The cache is thread-safe (the parallel aggregator shares
//! one across its workers) and persistent across inlining runs (a warm
//! re-prepare pays no encoding cost at all).
//!
//! Hit/miss counters are kept as plain atomics and optionally mirrored
//! into a `kscope-telemetry` registry
//! (`singlefile.asset_cache_{hits,misses}_total`,
//! `singlefile.asset_cache_saved_bytes`).

use crate::base64;
use kscope_telemetry::{Counter, Registry};
use parking_lot::RwLock;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Folds the high and low halves of a 64×64→128 multiply (the wyhash
/// "mum" mixer) — one multiply diffuses a full 8-byte lane.
#[inline]
fn mum(a: u64, b: u64) -> u64 {
    let r = u128::from(a) * u128::from(b);
    (r >> 64) as u64 ^ r as u64
}

/// 128-bit content hash over a sequence of byte slices.
///
/// Two wyhash-style multiply-mix lanes consume 16 bytes per step, so
/// hashing runs far faster than base64 encoding — essential, because a
/// cache *hit* still hashes the full asset, and a hash as slow as the
/// encode would cancel the savings. Each part's length is folded into its
/// final mix so `("ab","c")` and `("a","bc")` hash apart. Not
/// collision-resistant against adversaries; ample for deduplicating a
/// test corpus.
pub fn content_hash(parts: &[&[u8]]) -> u128 {
    const P0: u64 = 0xa076_1d64_78bd_642f;
    const P1: u64 = 0xe703_7ed1_a0b4_28db;
    const P2: u64 = 0x8ebc_6af0_9c88_c6e3;
    let mut h1: u64 = P0;
    let mut h2: u64 = P1;
    for part in parts {
        let mut chunks = part.chunks_exact(16);
        for c in &mut chunks {
            let a = u64::from_le_bytes(c[0..8].try_into().expect("8-byte lane"));
            let b = u64::from_le_bytes(c[8..16].try_into().expect("8-byte lane"));
            h1 = mum(h1 ^ a, P2);
            h2 = mum(h2 ^ b, P0);
        }
        let rest = chunks.remainder();
        let mut tail = [0u8; 16];
        tail[..rest.len()].copy_from_slice(rest);
        let a = u64::from_le_bytes(tail[0..8].try_into().expect("8-byte lane"));
        let b = u64::from_le_bytes(tail[8..16].try_into().expect("8-byte lane"));
        h1 = mum(h1 ^ a ^ part.len() as u64, P1);
        h2 = mum(h2 ^ b ^ 0x1f, P2);
    }
    u128::from(h1) << 64 | u128::from(h2)
}

/// Counters mirrored into a telemetry registry when attached.
#[derive(Debug)]
struct CacheCounters {
    hits: Counter,
    misses: Counter,
    saved_bytes: Counter,
}

/// A point-in-time view of an [`AssetCache`]'s effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// References served from the cache (no re-encode).
    pub hits: u64,
    /// References that had to be encoded (and were then cached).
    pub misses: u64,
    /// Distinct cached blobs.
    pub entries: usize,
    /// Raw bytes actually encoded (miss-path work).
    pub encoded_bytes: u64,
    /// Raw bytes a hit spared from re-encoding.
    pub saved_bytes: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when the cache is untouched.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, content-addressed cache of encoded assets.
///
/// Keys are 128-bit [`content_hash`]es of `(mime, raw bytes)` — the encoding is
/// a pure function of those inputs, so identical content cached under one
/// path serves every other path, version, and prepare run that references
/// the same bytes.
#[derive(Debug, Default)]
pub struct AssetCache {
    data_uris: RwLock<HashMap<u128, Arc<OnceLock<Arc<str>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    encoded_bytes: AtomicU64,
    saved_bytes: AtomicU64,
    counters: OnceLock<CacheCounters>,
}

impl AssetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors hit/miss/saved-bytes counts into `registry` from now on
    /// (`singlefile.asset_cache_hits_total`,
    /// `singlefile.asset_cache_misses_total`,
    /// `singlefile.asset_cache_saved_bytes`). A no-op if already attached.
    pub fn attach_metrics(&self, registry: &Registry) {
        let _ = self.counters.set(CacheCounters {
            hits: registry.counter("singlefile.asset_cache_hits_total"),
            misses: registry.counter("singlefile.asset_cache_misses_total"),
            saved_bytes: registry.counter("singlefile.asset_cache_saved_bytes"),
        });
    }

    /// Returns the `data:{mime};base64,…` URI for `data`, encoding it
    /// exactly once per unique `(mime, content)` pair: racing callers for
    /// the same key block on a per-key cell while the first one encodes,
    /// then share the finished allocation — no duplicate encode work, and
    /// the miss counter ticks exactly once per distinct blob.
    pub fn data_uri(&self, mime: &str, data: &[u8]) -> Arc<str> {
        let key = content_hash(&[mime.as_bytes(), data]);
        // Bind the fast-path lookup first so its read guard is released
        // before the slow path takes the write lock.
        let fast = self.data_uris.read().get(&key).map(Arc::clone);
        let cell = match fast {
            Some(cell) => cell,
            None => match self.data_uris.write().entry(key) {
                Entry::Occupied(e) => Arc::clone(e.get()),
                Entry::Vacant(e) => Arc::clone(e.insert(Arc::new(OnceLock::new()))),
            },
        };
        // The encode runs outside both map locks so distinct blobs encode
        // concurrently; only same-key callers serialize on the cell.
        let mut encoded = false;
        let uri = Arc::clone(cell.get_or_init(|| {
            encoded = true;
            Arc::from(format!("data:{mime};base64,{}", base64::encode(data)))
        }));
        if encoded {
            self.record_miss(data.len() as u64);
        } else {
            self.record_hit(data.len() as u64);
        }
        uri
    }

    /// Records a cache hit from an auxiliary memo (the per-run CSS memo)
    /// so all dedup activity lands in one set of counters.
    pub(crate) fn record_hit(&self, raw_bytes: u64) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.saved_bytes.fetch_add(raw_bytes, Ordering::Relaxed);
        if let Some(c) = self.counters.get() {
            c.hits.inc();
            c.saved_bytes.add(raw_bytes);
        }
    }

    /// Records a cache miss from an auxiliary memo.
    pub(crate) fn record_miss(&self, raw_bytes: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.encoded_bytes.fetch_add(raw_bytes, Ordering::Relaxed);
        if let Some(c) = self.counters.get() {
            c.misses.inc();
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.data_uris.read().len(),
            encoded_bytes: self.encoded_bytes.load(Ordering::Relaxed),
            saved_bytes: self.saved_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached blob and zeroes the counters (telemetry
    /// counters, being monotonic, are left alone).
    pub fn clear(&self) {
        self.data_uris.write().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.encoded_bytes.store(0, Ordering::Relaxed);
        self.saved_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_content_encoded_once() {
        let cache = AssetCache::new();
        let a = cache.data_uri("image/png", b"pixels");
        let b = cache.data_uri("image/png", b"pixels");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the encoded allocation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.encoded_bytes, 6);
        assert_eq!(stats.saved_bytes, 6);
    }

    #[test]
    fn mime_is_part_of_the_key() {
        let cache = AssetCache::new();
        let png = cache.data_uri("image/png", b"x");
        let gif = cache.data_uri("image/gif", b"x");
        assert_ne!(png, gif);
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn different_content_different_entries() {
        let cache = AssetCache::new();
        cache.data_uri("image/png", b"a");
        cache.data_uri("image/png", b"b");
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn concurrent_references_share_one_encode() {
        let cache = Arc::new(AssetCache::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..50 {
                        let payload = [b"blob-", &[b'0' + (i % 4) as u8][..]].concat();
                        cache.data_uri("image/png", &payload);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 4, "4 unique payloads");
        assert_eq!(stats.hits + stats.misses, 400);
        assert_eq!(stats.misses, 4, "each unique payload encodes exactly once");
    }

    #[test]
    fn telemetry_counters_mirror_activity() {
        let registry = Registry::new();
        let cache = AssetCache::new();
        cache.attach_metrics(&registry);
        cache.data_uri("image/png", b"shared");
        cache.data_uri("image/png", b"shared");
        assert_eq!(registry.counter_value("singlefile.asset_cache_hits_total", &[]), Some(1));
        assert_eq!(registry.counter_value("singlefile.asset_cache_misses_total", &[]), Some(1));
        assert_eq!(registry.counter_value("singlefile.asset_cache_saved_bytes", &[]), Some(6));
    }

    #[test]
    fn clear_resets_stats() {
        let cache = AssetCache::new();
        cache.data_uri("image/png", b"x");
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn content_hash_separates_parts() {
        assert_ne!(content_hash(&[b"ab", b"c"]), content_hash(&[b"a", b"bc"]));
        assert_eq!(content_hash(&[b"a", b"b"]), content_hash(&[b"a", b"b"]));
    }
}
