//! Property tests: the virtual browser must be total over arbitrary HTML.

use kscope_browser::{LoadedPage, TestFlow};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Loading any string as a page never panics, and the timeline is
    /// always well-formed (monotone completeness ending at or before 1).
    #[test]
    fn loaded_page_total(html in ".{0,400}") {
        let page = LoadedPage::from_html(&html);
        let mut prev = -1.0;
        for s in page.timeline().samples() {
            prop_assert!(s.completeness >= prev);
            prop_assert!(s.completeness <= 1.0 + 1e-9);
            prev = s.completeness;
        }
        let m = page.metrics();
        prop_assert!(m.ttfp_ms <= m.plt_ms);
        prop_assert!(m.atf_ms <= m.plt_ms);
    }

    /// A corrupted reveal script never breaks loading.
    #[test]
    fn corrupt_reveal_script_tolerated(garbage in "[a-z0-9{}\\[\\];=, ]{0,120}") {
        let html = format!(
            "<html><head><script id=\"kscope-reveal\">var plan = {garbage};</script></head>\
             <body><p>x</p></body></html>"
        );
        let page = LoadedPage::from_html(&html);
        // Fallback: instant reveal.
        prop_assert!(page.metrics().plt_ms == 0 || !page.plan().is_empty());
    }

    /// The test flow accepts any dwell times and question strings without
    /// breaking its own invariants.
    #[test]
    fn flow_invariants(dwells in prop::collection::vec(0u64..100_000, 1..5),
                        q in "[ -~]{1,40}") {
        let pages: Vec<String> = (0..dwells.len()).map(|i| format!("p{i}.html")).collect();
        let mut flow = TestFlow::register("t", "w", serde_json::json!({}), vec![q.clone()], pages);
        for &d in &dwells {
            flow.visit(LoadedPage::from_html("<p>x</p>"), d).unwrap();
            flow.answer(&q, "Same").unwrap();
            flow.next_page().unwrap();
        }
        prop_assert!(flow.is_finished());
        let rec = flow.upload().unwrap();
        prop_assert_eq!(rec.total_duration_ms(), dwells.iter().sum::<u64>());
        prop_assert_eq!(rec.pages.len(), dwells.len());
    }
}
