//! Loading a page: parse, lay out, and execute the injected reveal plan.

use kscope_html::style::{computed_property, document_stylesheets, Stylesheet};
use kscope_html::{parse_document, Document, NodeId, Selector};
use kscope_pageload::{
    ContentClass, Layout, PaintTimeline, RevealEvent, RevealPlan, Viewport, VisualMetrics,
    REVEAL_SCRIPT_ID,
};

/// A page as the virtual browser sees it after navigation: the DOM, its
/// layout, the reveal plan recovered from the page's own injected
/// `kscope-reveal` script (instant reveal if none), and the resulting paint
/// timeline.
#[derive(Debug, Clone)]
pub struct LoadedPage {
    doc: Document,
    layout: Layout,
    plan: RevealPlan,
    timeline: PaintTimeline,
    sheets: Vec<Stylesheet>,
}

impl LoadedPage {
    /// Loads a page from HTML under the default desktop viewport.
    pub fn from_html(html: &str) -> Self {
        Self::from_html_with_viewport(html, Viewport::desktop())
    }

    /// Loads a page under an explicit viewport.
    pub fn from_html_with_viewport(html: &str, viewport: Viewport) -> Self {
        let doc = parse_document(html);
        let layout = Layout::compute(&doc, viewport);
        let plan = extract_reveal_plan(&doc, &layout);
        let timeline = PaintTimeline::from_plan(&doc, &layout, &plan);
        let sheets = document_stylesheets(&doc);
        Self { doc, layout, plan, timeline, sheets }
    }

    /// The parsed DOM.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The computed layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The reveal plan the page executes.
    pub fn plan(&self) -> &RevealPlan {
        &self.plan
    }

    /// The paint timeline produced by executing the plan.
    pub fn timeline(&self) -> &PaintTimeline {
        &self.timeline
    }

    /// Visual metrics of this load.
    pub fn metrics(&self) -> VisualMetrics {
        VisualMetrics::from_timeline(&self.timeline)
    }

    /// `src` attributes of the page's iframes in document order — the two
    /// test-webpage panes of an integrated page.
    pub fn iframe_refs(&self) -> Vec<String> {
        self.doc
            .elements()
            .into_iter()
            .filter_map(|id| {
                let el = self.doc.element(id)?;
                if el.name == "iframe" {
                    el.attr("src").map(str::to_string)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The font size (in points) of the element matched by `selector`,
    /// computed through the CSS cascade: inline style first, then the
    /// page's `<style>` rules by specificity, then inheritance from
    /// ancestors — real pages set typography in stylesheets, not inline.
    pub fn font_size_pt(&self, selector: &Selector) -> Option<f64> {
        let node = self.doc.select_first(selector)?;
        computed_property(&self.doc, &self.sheets, node, "font-size").and_then(|v| parse_pt(&v))
    }

    /// Clicks the first element matching `selector`, honouring the page's
    /// declarative `data-toggles` wiring: the clicked element's target
    /// (another selector) has its `display: none` toggled — the "Expand"
    /// button mechanic of the §IV-B group page. Returns whether anything
    /// changed. Layout and paint timeline are recomputed afterwards, so
    /// metrics reflect the expanded page.
    ///
    /// This is the abstract's "allows a participant to interact with each
    /// webpage version": interaction works because the page is a real DOM,
    /// not a video.
    pub fn click(&mut self, selector: &Selector) -> bool {
        let Some(button) = self.doc.select_first(selector) else {
            return false;
        };
        let Some(target_sel) =
            self.doc.attr(button, "data-toggles").and_then(|s| s.parse::<Selector>().ok())
        else {
            return false;
        };
        let Some(target) = self.doc.select_first(&target_sel) else {
            return false;
        };
        let hidden =
            self.doc.style_property(target, "display").map(|d| d == "none").unwrap_or(false);
        self.doc.set_style_property(target, "display", if hidden { "block" } else { "none" });
        // Geometry changed: recompute the derived state.
        let viewport = self.layout.viewport();
        self.layout = Layout::compute(&self.doc, viewport);
        self.plan = extract_reveal_plan(&self.doc, &self.layout);
        self.timeline = PaintTimeline::from_plan(&self.doc, &self.layout, &self.plan);
        true
    }

    /// The readiness curve for perception models: step samples of
    /// `(t_ms, main-text painted fraction, other painted fraction)`.
    pub fn readiness_curve(&self) -> Vec<(u64, f64, f64)> {
        let text_total =
            self.layout.area_by_class().get(&ContentClass::MainText).copied().unwrap_or(0.0);
        let total = self.layout.total_area();
        let other_total = (total - text_total).max(0.0);
        self.timeline
            .samples()
            .iter()
            .map(|s| {
                let text_painted =
                    s.class_area.get(&ContentClass::MainText).copied().unwrap_or(0.0);
                let all_painted = s.completeness * total;
                let other_painted = (all_painted - text_painted).max(0.0);
                let text_frac =
                    if text_total > 0.0 { (text_painted / text_total).min(1.0) } else { 1.0 };
                let other_frac =
                    if other_total > 0.0 { (other_painted / other_total).min(1.0) } else { 1.0 };
                (s.t_ms, text_frac, other_frac)
            })
            .collect()
    }
}

/// Parses the JSON plan back out of the injected `kscope-reveal` script.
/// The plan addresses elements by document-order ordinal (see
/// `RevealPlan::inject`). Falls back to "everything visible at t = 0" when
/// no script is present (plain pages without simulated loading).
fn extract_reveal_plan(doc: &Document, layout: &Layout) -> RevealPlan {
    let script_text = doc.get_element_by_id(REVEAL_SCRIPT_ID).map(|id| doc.text_content(id));
    let entries: Vec<(usize, u64)> =
        script_text.as_deref().and_then(parse_plan_json).unwrap_or_default();
    if entries.is_empty() {
        // Instant reveal of every laid-out element.
        return doc
            .elements()
            .into_iter()
            .filter_map(|id| {
                let b = layout.get(id)?;
                Some(RevealEvent {
                    node: id,
                    at_ms: 0,
                    area: b.area,
                    above_fold_area: b.above_fold_area,
                })
            })
            .collect();
    }
    let elements: Vec<NodeId> = doc.elements();
    entries
        .into_iter()
        .filter_map(|(ordinal, at_ms)| {
            let node = *elements.get(ordinal)?;
            let b = layout.get(node)?;
            Some(RevealEvent { node, at_ms, area: b.area, above_fold_area: b.above_fold_area })
        })
        .collect()
}

/// Extracts `var plan = [...];` from the loader script.
fn parse_plan_json(script: &str) -> Option<Vec<(usize, u64)>> {
    let start = script.find("var plan = ")? + "var plan = ".len();
    let rest = &script[start..];
    let end = rest.find("];")? + 1;
    let json: serde_json::Value = serde_json::from_str(&rest[..end]).ok()?;
    let arr = json.as_array()?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let node = item.get("node")?.as_u64()? as usize;
        let at_ms = item.get("at_ms")?.as_u64()?;
        out.push((node, at_ms));
    }
    Some(out)
}

fn parse_pt(value: &str) -> Option<f64> {
    let v = value.trim();
    if let Some(pt) = v.strip_suffix("pt") {
        pt.trim().parse().ok()
    } else if let Some(px) = v.strip_suffix("px") {
        // 1 pt = 4/3 px.
        px.trim().parse::<f64>().ok().map(|x| x * 0.75)
    } else {
        v.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_pageload::LoadSpec;
    use rand::{rngs::StdRng, SeedableRng};

    /// Builds a page with an injected plan, serializes it, and reloads it —
    /// the exact artifact round-trip the real tool performs.
    fn page_with_plan(html: &str, spec_json: serde_json::Value) -> LoadedPage {
        let mut doc = parse_document(html);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let spec = LoadSpec::from_json(&spec_json).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        plan.inject(&mut doc);
        LoadedPage::from_html(&doc.to_html())
    }

    const PAGE: &str = r#"<html><head></head><body>
        <nav id="topnav"><a>home</a></nav>
        <div id="content"><p>The article text goes here and continues for a
        while so the main content has real area.</p></div>
    </body></html>"#;

    #[test]
    fn executes_injected_plan() {
        let page = page_with_plan(PAGE, serde_json::json!({"#topnav": 1000, "#content": 3000}));
        assert_eq!(page.timeline().last_paint_ms(), 3000);
        let m = page.metrics();
        assert_eq!(m.plt_ms, 3000);
        // Unscheduled containers (body, html) reveal at t = 0, so the first
        // paint is immediate even though the scheduled content comes later.
        assert_eq!(m.ttfp_ms, 0);
        assert!(page.timeline().completeness_at(999) < page.timeline().completeness_at(1000));
    }

    #[test]
    fn page_without_plan_paints_instantly() {
        let page = LoadedPage::from_html(PAGE);
        assert_eq!(page.timeline().last_paint_ms(), 0);
        assert!(!page.plan().is_empty());
    }

    #[test]
    fn injection_roundtrip_preserves_schedule() {
        // The plan recovered from the serialized page must equal the one
        // injected (same node indices survive parse→serialize→parse because
        // the aggregator injects into the final DOM shape).
        let mut doc = parse_document(PAGE);
        let layout = Layout::compute(&doc, Viewport::desktop());
        let spec = LoadSpec::from_json(&serde_json::json!({"#content": 2500})).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let plan = RevealPlan::build(&doc, &layout, &spec, &mut rng);
        plan.inject(&mut doc);
        let reloaded = LoadedPage::from_html(&doc.to_html());
        assert_eq!(reloaded.timeline().last_paint_ms(), 2500);
    }

    #[test]
    fn iframe_refs_in_order() {
        let page = LoadedPage::from_html(
            r#"<iframe src="page-0.html"></iframe><iframe src="page-1.html"></iframe>"#,
        );
        assert_eq!(page.iframe_refs(), vec!["page-0.html", "page-1.html"]);
    }

    #[test]
    fn font_size_from_inline_style() {
        let page =
            LoadedPage::from_html(r#"<div id="content" style="font-size: 14pt"><p>x</p></div>"#);
        let sel: Selector = "#content p".parse().unwrap();
        assert_eq!(page.font_size_pt(&sel), Some(14.0));
    }

    #[test]
    fn font_size_px_converted() {
        let page = LoadedPage::from_html(r#"<p id="t" style="font-size: 16px">x</p>"#);
        let sel: Selector = "#t".parse().unwrap();
        assert_eq!(page.font_size_pt(&sel), Some(12.0));
    }

    #[test]
    fn font_size_from_stylesheet_cascade() {
        let page = LoadedPage::from_html(
            "<style>#content { font-size: 13pt } p { font-size: 9pt }</style>\
             <div id='content'><p class='x'>t</p><span>u</span></div>",
        );
        // The p rule (tag) applies directly to the paragraph.
        let p_sel: Selector = "#content p".parse().unwrap();
        assert_eq!(page.font_size_pt(&p_sel), Some(9.0));
        // The span has no own rule and inherits from #content.
        let span_sel: Selector = "#content span".parse().unwrap();
        assert_eq!(page.font_size_pt(&span_sel), Some(13.0));
    }

    #[test]
    fn inline_style_beats_stylesheet() {
        let page = LoadedPage::from_html(
            "<style>p { font-size: 9pt }</style><p id='t' style='font-size: 21pt'>x</p>",
        );
        let sel: Selector = "#t".parse().unwrap();
        assert_eq!(page.font_size_pt(&sel), Some(21.0));
    }

    #[test]
    fn font_size_missing_is_none() {
        let page = LoadedPage::from_html("<p id='t'>x</p>");
        let sel: Selector = "#t".parse().unwrap();
        assert_eq!(page.font_size_pt(&sel), None);
    }

    #[test]
    fn readiness_curve_tracks_text_separately() {
        let page = page_with_plan(PAGE, serde_json::json!({"#topnav": 1000, "#content": 3000}));
        let curve = page.readiness_curve();
        assert_eq!(curve.first().map(|&(t, _, _)| t), Some(0));
        // At the nav reveal, other-content fraction jumps but text stays 0.
        let at_nav = curve.iter().find(|&&(t, _, _)| t == 1000).unwrap();
        assert_eq!(at_nav.1, 0.0);
        assert!(at_nav.2 > 0.0);
        // Fully painted at the end.
        let last = curve.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
        assert!((last.2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn click_toggles_declared_target() {
        let html = r##"<button class="expand-btn" data-toggles="#more">Expand</button>
                      <div id="more" style="display:none"><p>hidden details of the section
                      with enough text to have real area once revealed</p></div>"##;
        let mut page = LoadedPage::from_html(html);
        let sel: Selector = ".expand-btn".parse().unwrap();
        let doc_target = page.document().get_element_by_id("more").unwrap();
        assert_eq!(page.document().style_property(doc_target, "display").as_deref(), Some("none"));
        assert!(page.click(&sel));
        let doc_target = page.document().get_element_by_id("more").unwrap();
        assert_eq!(page.document().style_property(doc_target, "display").as_deref(), Some("block"));
        // Clicking again collapses it back.
        assert!(page.click(&sel));
        let doc_target = page.document().get_element_by_id("more").unwrap();
        assert_eq!(page.document().style_property(doc_target, "display").as_deref(), Some("none"));
    }

    #[test]
    fn click_without_wiring_is_a_noop() {
        let mut page = LoadedPage::from_html("<button class='x'>plain</button>");
        let sel: Selector = ".x".parse().unwrap();
        assert!(!page.click(&sel));
        let missing: Selector = ".nope".parse().unwrap();
        assert!(!page.click(&missing));
    }

    #[test]
    fn malformed_plan_script_falls_back_to_instant() {
        let html = format!(
            r#"<html><head><script id="{REVEAL_SCRIPT_ID}">var plan = garbage;</script></head>
               <body><p>x</p></body></html>"#
        );
        let page = LoadedPage::from_html(&html);
        assert_eq!(page.timeline().last_paint_ms(), 0);
    }
}
