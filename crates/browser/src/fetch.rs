//! The extension's HTTP side: fetching test resources from the core
//! server and uploading session records.
//!
//! The paper's Chrome extension downloads every integrated webpage from
//! the core server at test start and posts the collected answers back at
//! the end (Fig. 3). [`ExtensionClient`] reproduces that traffic pattern
//! over one keep-alive [`kscope_server::Session`]: a tester session makes
//! many small requests in a burst, exactly the shape where
//! connection-per-request pays a TCP handshake per page.

use crate::extension::SessionRecord;
use crate::page::LoadedPage;
use kscope_server::client::{ClientError, SessionConfig, SessionStats};
use kscope_server::Session;
use std::net::SocketAddr;

/// Error talking to the core server.
#[derive(Debug)]
pub enum FetchError {
    /// Transport or parse failure from the underlying client.
    Client(ClientError),
    /// The server answered with a non-success status.
    Status(u16, String),
    /// The response body did not have the expected shape.
    Malformed(&'static str),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Client(e) => write!(f, "fetch failed: {e}"),
            FetchError::Status(code, path) => write!(f, "server said {code} for {path}"),
            FetchError::Malformed(what) => write!(f, "malformed server response: {what}"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<ClientError> for FetchError {
    fn from(e: ClientError) -> Self {
        FetchError::Client(e)
    }
}

/// The extension simulator's connection to the core server: one
/// keep-alive socket for a whole tester session.
pub struct ExtensionClient {
    session: Session,
}

impl std::fmt::Debug for ExtensionClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExtensionClient({:?})", self.session)
    }
}

impl ExtensionClient {
    /// A client for the core server at `addr` (connects lazily).
    pub fn connect(addr: SocketAddr) -> Self {
        Self { session: Session::new(addr) }
    }

    /// A client with explicit session tuning.
    pub fn with_config(addr: SocketAddr, config: SessionConfig) -> Self {
        Self { session: Session::with_config(addr, config) }
    }

    /// Connection-reuse counters of the underlying session.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    fn get_json(&mut self, path: &str) -> Result<serde_json::Value, FetchError> {
        let resp = self.session.get(path)?;
        if resp.status.0 != 200 {
            return Err(FetchError::Status(resp.status.0, path.to_string()));
        }
        resp.json_body().map_err(|_| FetchError::Malformed("expected a JSON body"))
    }

    /// Test metadata as stored by the aggregator.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or non-200 statuses.
    pub fn test_info(&mut self, test_id: &str) -> Result<serde_json::Value, FetchError> {
        self.get_json(&format!("/api/tests/{test_id}"))
    }

    /// Names of the integrated webpages belonging to a test.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures, non-200 statuses, or
    /// an unexpected body shape.
    pub fn page_names(&mut self, test_id: &str) -> Result<Vec<String>, FetchError> {
        let listing = self.get_json(&format!("/api/tests/{test_id}/pages"))?;
        listing["pages"]
            .as_array()
            .ok_or(FetchError::Malformed("missing pages array"))?
            .iter()
            .map(|v| {
                v.as_str().map(str::to_string).ok_or(FetchError::Malformed("non-string page name"))
            })
            .collect()
    }

    /// Downloads one integrated webpage and parses it into a
    /// [`LoadedPage`] — the injected reveal script and all.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or non-200 statuses.
    pub fn fetch_page(&mut self, test_id: &str, name: &str) -> Result<LoadedPage, FetchError> {
        Ok(LoadedPage::from_html(&self.fetch_page_html(test_id, name)?))
    }

    /// Downloads one integrated webpage as raw HTML.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or non-200 statuses.
    pub fn fetch_page_html(&mut self, test_id: &str, name: &str) -> Result<String, FetchError> {
        let path = format!("/api/tests/{test_id}/pages/{name}");
        let resp = self.session.get(&path)?;
        if resp.status.0 != 200 {
            return Err(FetchError::Status(resp.status.0, path));
        }
        Ok(resp.text())
    }

    /// Uploads a finished session's answers and behaviour telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or when the server
    /// does not acknowledge with `201 Created`.
    pub fn upload(&mut self, record: &SessionRecord) -> Result<serde_json::Value, FetchError> {
        let path = format!("/api/tests/{}/responses", record.test_id);
        let resp = self.session.post_json(&path, &record.to_json())?;
        if resp.status.0 != 201 {
            return Err(FetchError::Status(resp.status.0, path));
        }
        resp.json_body().map_err(|_| FetchError::Malformed("expected a JSON body"))
    }
}
