//! The extension's HTTP side: fetching test resources from the core
//! server and uploading session records.
//!
//! The paper's Chrome extension downloads every integrated webpage from
//! the core server at test start and posts the collected answers back at
//! the end (Fig. 3). [`ExtensionClient`] reproduces that traffic pattern
//! over one keep-alive [`kscope_server::Session`]: a tester session makes
//! many small requests in a burst, exactly the shape where
//! connection-per-request pays a TCP handshake per page.

use crate::extension::SessionRecord;
use crate::page::LoadedPage;
use kscope_server::client::{ClientError, SessionConfig, SessionStats, Transport};
use kscope_server::Session;
use kscope_telemetry::Registry;
use std::net::SocketAddr;
use std::sync::Arc;

/// Error talking to the core server.
#[derive(Debug)]
pub enum FetchError {
    /// Transport or parse failure from the underlying client.
    Client(ClientError),
    /// The server answered with a non-success status.
    Status(u16, String),
    /// The response body did not have the expected shape.
    Malformed(&'static str),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Client(e) => write!(f, "fetch failed: {e}"),
            FetchError::Status(code, path) => write!(f, "server said {code} for {path}"),
            FetchError::Malformed(what) => write!(f, "malformed server response: {what}"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<ClientError> for FetchError {
    fn from(e: ClientError) -> Self {
        FetchError::Client(e)
    }
}

/// The extension simulator's connection to the core server: one
/// keep-alive socket for a whole tester session.
pub struct ExtensionClient {
    session: Session,
}

impl std::fmt::Debug for ExtensionClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExtensionClient({:?})", self.session)
    }
}

impl ExtensionClient {
    /// A client for the core server at `addr` (connects lazily).
    pub fn connect(addr: SocketAddr) -> Self {
        Self { session: Session::new(addr) }
    }

    /// A client with explicit session tuning.
    pub fn with_config(addr: SocketAddr, config: SessionConfig) -> Self {
        Self { session: Session::with_config(addr, config) }
    }

    /// A client speaking through a custom socket layer — the chaos
    /// harness interposes its deterministic fault injector here.
    pub fn with_transport(
        addr: SocketAddr,
        config: SessionConfig,
        transport: Arc<dyn Transport>,
    ) -> Self {
        Self { session: Session::with_transport(addr, config, transport) }
    }

    /// Publishes the underlying session's `client.*` overload metrics on
    /// `registry`.
    pub fn set_telemetry(&mut self, registry: &Arc<Registry>) {
        self.session.set_telemetry(registry);
    }

    /// Sets (or clears) the wall-clock deadline (epoch milliseconds)
    /// stamped onto every request — derived from the tester's session
    /// lease, so the server never works for an abandoned session.
    pub fn set_deadline_ms(&mut self, deadline: Option<u64>) {
        self.session.set_deadline_ms(deadline);
    }

    /// Connection-reuse counters of the underlying session.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    fn get_json(&mut self, path: &str) -> Result<serde_json::Value, FetchError> {
        let resp = self.session.get(path)?;
        if resp.status.0 != 200 {
            return Err(FetchError::Status(resp.status.0, path.to_string()));
        }
        resp.json_body().map_err(|_| FetchError::Malformed("expected a JSON body"))
    }

    /// Test metadata as stored by the aggregator.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or non-200 statuses.
    pub fn test_info(&mut self, test_id: &str) -> Result<serde_json::Value, FetchError> {
        self.get_json(&format!("/api/tests/{test_id}"))
    }

    /// Names of the integrated webpages belonging to a test.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures, non-200 statuses, or
    /// an unexpected body shape.
    pub fn page_names(&mut self, test_id: &str) -> Result<Vec<String>, FetchError> {
        let listing = self.get_json(&format!("/api/tests/{test_id}/pages"))?;
        listing["pages"]
            .as_array()
            .ok_or(FetchError::Malformed("missing pages array"))?
            .iter()
            .map(|v| {
                v.as_str().map(str::to_string).ok_or(FetchError::Malformed("non-string page name"))
            })
            .collect()
    }

    /// Downloads one integrated webpage and parses it into a
    /// [`LoadedPage`] — the injected reveal script and all.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or non-200 statuses.
    pub fn fetch_page(&mut self, test_id: &str, name: &str) -> Result<LoadedPage, FetchError> {
        Ok(LoadedPage::from_html(&self.fetch_page_html(test_id, name)?))
    }

    /// Downloads one integrated webpage as raw HTML.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or non-200 statuses.
    pub fn fetch_page_html(&mut self, test_id: &str, name: &str) -> Result<String, FetchError> {
        let path = format!("/api/tests/{test_id}/pages/{name}");
        let resp = self.session.get(&path)?;
        if resp.status.0 != 200 {
            return Err(FetchError::Status(resp.status.0, path));
        }
        Ok(resp.text())
    }

    /// Uploads a finished session's answers and behaviour telemetry.
    ///
    /// Accepts `201 Created` for a fresh store and `200 OK` for an
    /// idempotent replay (the server already has this submission and
    /// returns the original `_id`).
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or any other status.
    pub fn upload(&mut self, record: &SessionRecord) -> Result<serde_json::Value, FetchError> {
        self.upload_json(&record.test_id, &record.to_json())
    }

    /// Uploads an arbitrary response document for `test_id` (same wire
    /// call as [`ExtensionClient::upload`], for callers that already hold
    /// the JSON row rather than a [`SessionRecord`]).
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] on transport failures or any status other
    /// than 200/201.
    pub fn upload_json(
        &mut self,
        test_id: &str,
        body: &serde_json::Value,
    ) -> Result<serde_json::Value, FetchError> {
        let path = format!("/api/tests/{test_id}/responses");
        let resp = self.session.post_json(&path, body)?;
        if resp.status.0 != 201 && resp.status.0 != 200 {
            return Err(FetchError::Status(resp.status.0, path));
        }
        resp.json_body().map_err(|_| FetchError::Malformed("expected a JSON body"))
    }

    /// Uploads with the session's shared retry discipline: up to
    /// `max_attempts` tries, sleeping a full-jitter backoff between them
    /// ([`Session::next_backoff`] — the same policy the transport-level
    /// retries use, honoring any `Retry-After` the server sent on a
    /// 503/504). Each retry must win a token from the session's retry
    /// budget; when the bucket is empty the last error is returned
    /// immediately rather than adding load to an overloaded server.
    ///
    /// Safe to call repeatedly because the record carries a stable
    /// `submission_id` — a retry of an upload whose acknowledgment was
    /// lost is answered with the original document's `_id`, not a
    /// duplicate row. Returns the server's acknowledgment and the number
    /// of attempts made.
    ///
    /// Transport errors and 5xx statuses are retried; 4xx statuses are
    /// returned immediately (retrying a rejected body cannot help).
    ///
    /// # Errors
    ///
    /// Returns the last [`FetchError`] once the attempt budget is spent.
    pub fn upload_with_retry(
        &mut self,
        record: &SessionRecord,
        max_attempts: u32,
        base_backoff: std::time::Duration,
    ) -> Result<(serde_json::Value, u32), FetchError> {
        self.upload_json_with_retry(&record.test_id, &record.to_json(), max_attempts, base_backoff)
    }

    /// [`ExtensionClient::upload_with_retry`] for a raw JSON row.
    ///
    /// # Errors
    ///
    /// Returns the last [`FetchError`] once the attempt budget is spent.
    pub fn upload_json_with_retry(
        &mut self,
        test_id: &str,
        body: &serde_json::Value,
        max_attempts: u32,
        base_backoff: std::time::Duration,
    ) -> Result<(serde_json::Value, u32), FetchError> {
        let max_attempts = max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.upload_json(test_id, body) {
                Ok(ack) => return Ok((ack, attempt)),
                Err(e) if attempt >= max_attempts => return Err(e),
                Err(FetchError::Status(code, path)) if (400..500).contains(&code) => {
                    return Err(FetchError::Status(code, path));
                }
                Err(e) => {
                    if !self.session.acquire_retry_token() {
                        return Err(e);
                    }
                    let delay = self.session.next_backoff(attempt - 1, base_backoff, None);
                    std::thread::sleep(delay);
                }
            }
        }
    }
}
