//! The extension's test flow (paper Fig. 3) with hard-rule enforcement.
//!
//! Flow: provide test id + contributor id + demographics → for each
//! integrated webpage: download it, visit it in a new tab (revisits
//! allowed), answer every comparison question → after the last page, the
//! collected results are uploaded. The hard rules of §III-D are enforced
//! here: a participant cannot advance without answering all questions, and
//! cannot upload before finishing every page.

use crate::browser::Browser;
use crate::clock::SimClock;
use crate::page::LoadedPage;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One entry of the session's audit log: what the extension did and when
/// (virtual milliseconds). The real extension "monitors participants'
/// behavior and uploads the test data"; the event log is that monitor's
/// raw record, and the telemetry counters are derived views of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEvent {
    /// Virtual time of the event.
    pub at_ms: u64,
    /// What happened.
    pub kind: FlowEventKind,
}

/// The kinds of extension events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowEventKind {
    /// Session registered (test id, contributor id, demographics given).
    Registered,
    /// An integrated page was downloaded and opened in a tab.
    Visited {
        /// The page name.
        page: String,
        /// 1 for the first visit, 2 for the first revisit, …
        visit: u32,
    },
    /// A comparison question was answered.
    Answered {
        /// The page name.
        page: String,
        /// The question text.
        question: String,
        /// The answer given.
        answer: String,
    },
    /// The participant moved on from a page.
    PageCompleted {
        /// The page name.
        page: String,
    },
    /// The session finished and was uploaded.
    Uploaded,
    /// The session was interrupted (tab closed, browser crash) and
    /// checkpointed as a [`PartialSession`].
    Interrupted,
    /// A checkpointed session was resumed in a fresh browser.
    Resumed,
}

/// The answers and telemetry for one integrated webpage.
#[derive(Debug, Clone, PartialEq)]
pub struct PageResult {
    /// The page's name (as served by the core server).
    pub page_name: String,
    /// Answer per question text.
    pub answers: BTreeMap<String, String>,
    /// Total time spent on this comparison, milliseconds.
    pub duration_ms: u64,
    /// How many times the page was (re)visited.
    pub visits: u32,
}

/// Everything the extension uploads at the end of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The Kaleidoscope test id.
    pub test_id: String,
    /// The contributor (worker) id from the crowdsourcing platform.
    pub contributor_id: String,
    /// Stable client-generated idempotency key: every upload attempt of
    /// this session (including retries after a lost acknowledgment)
    /// carries the same id, so the server can deduplicate replays on
    /// `(test_id, contributor_id, submission_id)`.
    pub submission_id: String,
    /// Demographics as a JSON object (coarse, per §III-D).
    pub demographics: Value,
    /// Per-page results in presentation order.
    pub pages: Vec<PageResult>,
    /// Tabs created during the session.
    pub created_tabs: u32,
    /// Active-tab switches during the session.
    pub active_tab_switches: u32,
}

impl SessionRecord {
    /// Total session duration in milliseconds.
    pub fn total_duration_ms(&self) -> u64 {
        self.pages.iter().map(|p| p.duration_ms).sum()
    }

    /// Serializes to the JSON document POSTed to the core server.
    pub fn to_json(&self) -> Value {
        json!({
            "test_id": self.test_id,
            "contributor_id": self.contributor_id,
            "submission_id": self.submission_id,
            "demographics": self.demographics,
            "created_tabs": self.created_tabs,
            "active_tabs": self.active_tab_switches,
            "pages": self.pages.iter().map(|p| json!({
                "page": p.page_name,
                "answers": p.answers,
                "duration_ms": p.duration_ms,
                "visits": p.visits,
            })).collect::<Vec<_>>(),
        })
    }
}

/// The only answers the extension's UI offers (§III-B: "the response from
/// the participant must be one of the three").
pub const VALID_ANSWERS: [&str; 3] = ["Left", "Right", "Same"];

/// Hard-rule violations and sequencing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// An answer other than Left/Right/Same was submitted.
    InvalidAnswer(String),
    /// Tried to answer/advance before visiting the current page.
    PageNotVisited,
    /// Tried to advance without answering every question.
    UnansweredQuestions(Vec<String>),
    /// Tried to act after the session finished.
    SessionFinished,
    /// Tried to finish with pages remaining.
    PagesRemaining(usize),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidAnswer(a) => {
                write!(f, "'{a}' is not one of Left/Right/Same")
            }
            FlowError::PageNotVisited => write!(f, "current page has not been visited"),
            FlowError::UnansweredQuestions(qs) => {
                write!(f, "unanswered questions: {}", qs.join("; "))
            }
            FlowError::SessionFinished => write!(f, "session already finished"),
            FlowError::PagesRemaining(n) => write!(f, "{n} pages still to test"),
        }
    }
}

impl std::error::Error for FlowError {}

/// The Fig. 3 state machine.
#[derive(Debug)]
pub struct TestFlow {
    test_id: String,
    contributor_id: String,
    submission_id: String,
    demographics: Value,
    questions: Vec<String>,
    page_names: Vec<String>,
    browser: Browser,
    clock: SimClock,
    current: usize,
    current_visits: u32,
    current_answers: BTreeMap<String, String>,
    page_started_ms: u64,
    results: Vec<PageResult>,
    finished: bool,
    events: Vec<FlowEvent>,
    /// Tab telemetry carried over from interrupted attempts of the same
    /// session (the extension accumulates it across resumes).
    prior_created_tabs: u32,
    prior_tab_switches: u32,
}

/// Derives the client-side idempotency key for one session. The server
/// dedupes on the full `(test_id, contributor_id, submission_id)` triple
/// and a contributor registers once per test, so a deterministic digest
/// of that pair is unique where it must be — and, unlike a process-wide
/// counter, it is stable across client restarts *and* keeps same-seed
/// campaigns bit-reproducible.
fn next_submission_id(test_id: &str, contributor_id: &str) -> String {
    // FNV-1a over "test_id\0contributor_id".
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes().chain(std::iter::once(0)).chain(contributor_id.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("sub-{contributor_id}-{h:016x}")
}

impl TestFlow {
    /// Registers a participant for a test: the extension collects the test
    /// id and contributor id "acquired from the crowdsourcing platform" and
    /// the standard demographic information, then receives the list of
    /// integrated pages and the comparison questions.
    pub fn register(
        test_id: &str,
        contributor_id: &str,
        demographics: Value,
        questions: Vec<String>,
        page_names: Vec<String>,
    ) -> Self {
        Self {
            test_id: test_id.to_string(),
            contributor_id: contributor_id.to_string(),
            submission_id: next_submission_id(test_id, contributor_id),
            demographics,
            questions,
            page_names,
            browser: Browser::new(),
            clock: SimClock::new(),
            current: 0,
            current_visits: 0,
            current_answers: BTreeMap::new(),
            page_started_ms: 0,
            results: Vec::new(),
            finished: false,
            events: vec![FlowEvent { at_ms: 0, kind: FlowEventKind::Registered }],
            prior_created_tabs: 0,
            prior_tab_switches: 0,
        }
    }

    /// Overrides the client-generated submission id (builder style) — for
    /// tests that need a predictable idempotency key.
    pub fn with_submission_id(mut self, submission_id: &str) -> Self {
        self.submission_id = submission_id.to_string();
        self
    }

    /// The stable idempotency key stamped on every upload attempt.
    pub fn submission_id(&self) -> &str {
        &self.submission_id
    }

    /// The audit log so far, in chronological order.
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// The name of the integrated page the participant must test next, or
    /// `None` when all pages are done.
    pub fn current_page_name(&self) -> Option<&str> {
        self.page_names.get(self.current).map(String::as_str)
    }

    /// The comparison questions.
    pub fn questions(&self) -> &[String] {
        &self.questions
    }

    /// Visits (or revisits) the current page: opens it in a new tab and
    /// spends `dwell_ms` of session time looking at it. "The integrated
    /// webpage can be revisited as many times as one wants."
    ///
    /// # Errors
    ///
    /// [`FlowError::SessionFinished`] after the last page was completed.
    pub fn visit(&mut self, page: LoadedPage, dwell_ms: u64) -> Result<(), FlowError> {
        if self.finished {
            return Err(FlowError::SessionFinished);
        }
        let name = self.current_page_name().ok_or(FlowError::SessionFinished)?.to_string();
        if self.current_visits == 0 {
            self.page_started_ms = self.clock.now_ms();
        }
        self.events.push(FlowEvent {
            at_ms: self.clock.now_ms(),
            kind: FlowEventKind::Visited { page: name.clone(), visit: self.current_visits + 1 },
        });
        self.browser.open_tab(&name, page);
        self.clock.advance_ms(dwell_ms);
        self.current_visits += 1;
        Ok(())
    }

    /// Records the answer to one question on the current page.
    ///
    /// # Errors
    ///
    /// [`FlowError::PageNotVisited`] before the first visit;
    /// [`FlowError::SessionFinished`] after completion.
    pub fn answer(&mut self, question: &str, answer: &str) -> Result<(), FlowError> {
        if self.finished {
            return Err(FlowError::SessionFinished);
        }
        if self.current_visits == 0 {
            return Err(FlowError::PageNotVisited);
        }
        if !VALID_ANSWERS.contains(&answer) {
            return Err(FlowError::InvalidAnswer(answer.to_string()));
        }
        self.events.push(FlowEvent {
            at_ms: self.clock.now_ms(),
            kind: FlowEventKind::Answered {
                page: self.page_names[self.current].clone(),
                question: question.to_string(),
                answer: answer.to_string(),
            },
        });
        self.current_answers.insert(question.to_string(), answer.to_string());
        Ok(())
    }

    /// Moves to the next integrated page, enforcing the hard rule that all
    /// comparison questions are answered first.
    ///
    /// # Errors
    ///
    /// [`FlowError::UnansweredQuestions`] listing what is missing;
    /// [`FlowError::PageNotVisited`] / [`FlowError::SessionFinished`] on
    /// sequencing violations.
    pub fn next_page(&mut self) -> Result<(), FlowError> {
        if self.finished {
            return Err(FlowError::SessionFinished);
        }
        if self.current_visits == 0 {
            return Err(FlowError::PageNotVisited);
        }
        let missing: Vec<String> = self
            .questions
            .iter()
            .filter(|q| !self.current_answers.contains_key(*q))
            .cloned()
            .collect();
        if !missing.is_empty() {
            return Err(FlowError::UnansweredQuestions(missing));
        }
        let name = self.page_names[self.current].clone();
        self.events.push(FlowEvent {
            at_ms: self.clock.now_ms(),
            kind: FlowEventKind::PageCompleted { page: name.clone() },
        });
        self.results.push(PageResult {
            page_name: name,
            answers: std::mem::take(&mut self.current_answers),
            duration_ms: self.clock.now_ms() - self.page_started_ms,
            visits: self.current_visits,
        });
        self.current += 1;
        self.current_visits = 0;
        if self.current >= self.page_names.len() {
            self.finished = true;
        }
        Ok(())
    }

    /// Whether every page has been completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Uploads the session: consumes the flow and returns the record.
    ///
    /// # Errors
    ///
    /// [`FlowError::PagesRemaining`] if pages are left untested.
    pub fn upload(mut self) -> Result<SessionRecord, FlowError> {
        if !self.finished {
            return Err(FlowError::PagesRemaining(self.page_names.len() - self.current));
        }
        self.events.push(FlowEvent { at_ms: self.clock.now_ms(), kind: FlowEventKind::Uploaded });
        let telemetry = self.browser.telemetry();
        Ok(SessionRecord {
            test_id: self.test_id,
            contributor_id: self.contributor_id,
            submission_id: self.submission_id,
            demographics: self.demographics,
            pages: self.results,
            created_tabs: telemetry.created_tabs + self.prior_created_tabs,
            active_tab_switches: telemetry.active_tab_switches + self.prior_tab_switches,
        })
    }

    /// Interrupts the session (tab closed, browser crash, network gone):
    /// consumes the flow and returns a resumable [`PartialSession`]
    /// checkpoint instead of panicking. Whatever the participant already
    /// completed — finished pages, answers on the current page, tab
    /// telemetry, the audit log — is preserved.
    pub fn interrupt(mut self) -> PartialSession {
        self.events
            .push(FlowEvent { at_ms: self.clock.now_ms(), kind: FlowEventKind::Interrupted });
        let telemetry = self.browser.telemetry();
        PartialSession {
            test_id: self.test_id,
            contributor_id: self.contributor_id,
            submission_id: self.submission_id,
            demographics: self.demographics,
            questions: self.questions,
            page_names: self.page_names,
            current: self.current,
            current_answers: self.current_answers,
            completed: self.results,
            elapsed_ms: self.clock.now_ms(),
            events: self.events,
            created_tabs: telemetry.created_tabs + self.prior_created_tabs,
            active_tab_switches: telemetry.active_tab_switches + self.prior_tab_switches,
        }
    }
}

/// A checkpoint of an interrupted [`TestFlow`]: everything needed to
/// resume the session in a fresh browser, or to account for an abandoned
/// one. The submission id survives the interruption, so a resumed
/// session's upload deduplicates against any copy that did get through.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSession {
    /// The Kaleidoscope test id.
    pub test_id: String,
    /// The contributor id.
    pub contributor_id: String,
    /// The stable idempotency key of the interrupted attempt.
    pub submission_id: String,
    /// Demographics as given at registration.
    pub demographics: Value,
    /// The comparison questions.
    pub questions: Vec<String>,
    /// All integrated page names in presentation order.
    pub page_names: Vec<String>,
    /// Index of the page the participant was on when interrupted.
    pub current: usize,
    /// Answers already given on the interrupted page.
    pub current_answers: BTreeMap<String, String>,
    /// Fully completed pages.
    pub completed: Vec<PageResult>,
    /// Session time elapsed before the interruption, milliseconds.
    pub elapsed_ms: u64,
    /// The audit log up to and including the interruption.
    pub events: Vec<FlowEvent>,
    /// Tabs created before the interruption.
    pub created_tabs: u32,
    /// Active-tab switches before the interruption.
    pub active_tab_switches: u32,
}

impl PartialSession {
    /// Number of pages fully completed before the interruption.
    pub fn completed_pages(&self) -> usize {
        self.completed.len()
    }

    /// Fraction of the test finished, in [0, 1].
    pub fn progress(&self) -> f64 {
        if self.page_names.is_empty() {
            1.0
        } else {
            self.completed.len() as f64 / self.page_names.len() as f64
        }
    }

    /// Resumes the session in a fresh browser. Completed pages, current
    /// answers, the submission id, and the audit log carry over; the
    /// interrupted page must be re-visited (its tab is gone), so its dwell
    /// clock restarts.
    pub fn resume(mut self) -> TestFlow {
        self.events.push(FlowEvent { at_ms: self.elapsed_ms, kind: FlowEventKind::Resumed });
        let finished = self.current >= self.page_names.len();
        TestFlow {
            test_id: self.test_id,
            contributor_id: self.contributor_id,
            submission_id: self.submission_id,
            demographics: self.demographics,
            questions: self.questions,
            page_names: self.page_names,
            browser: Browser::new(),
            clock: SimClock::starting_at(self.elapsed_ms),
            current: self.current,
            current_visits: 0,
            current_answers: self.current_answers,
            page_started_ms: self.elapsed_ms,
            results: self.completed,
            finished,
            events: self.events,
            prior_created_tabs: self.created_tabs,
            prior_tab_switches: self.active_tab_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> LoadedPage {
        LoadedPage::from_html("<iframe src='a.html'></iframe><iframe src='b.html'></iframe>")
    }

    fn flow() -> TestFlow {
        TestFlow::register(
            "t1",
            "w-1",
            json!({"age": "25-34"}),
            vec!["Which is better?".to_string()],
            vec!["p0.html".to_string(), "p1.html".to_string()],
        )
    }

    #[test]
    fn happy_path() {
        let mut f = flow();
        assert_eq!(f.current_page_name(), Some("p0.html"));
        f.visit(page(), 30_000).unwrap();
        f.answer("Which is better?", "Left").unwrap();
        f.next_page().unwrap();
        assert_eq!(f.current_page_name(), Some("p1.html"));
        f.visit(page(), 45_000).unwrap();
        f.answer("Which is better?", "Same").unwrap();
        f.next_page().unwrap();
        assert!(f.is_finished());
        let rec = f.upload().unwrap();
        assert_eq!(rec.pages.len(), 2);
        assert_eq!(rec.pages[0].answers["Which is better?"], "Left");
        assert_eq!(rec.pages[0].duration_ms, 30_000);
        assert_eq!(rec.total_duration_ms(), 75_000);
        assert_eq!(rec.created_tabs, 2);
    }

    #[test]
    fn hard_rule_all_questions_required() {
        let mut f = TestFlow::register(
            "t",
            "w",
            json!({}),
            vec!["q1".to_string(), "q2".to_string()],
            vec!["p".to_string()],
        );
        f.visit(page(), 1000).unwrap();
        f.answer("q1", "Left").unwrap();
        match f.next_page() {
            Err(FlowError::UnansweredQuestions(missing)) => {
                assert_eq!(missing, vec!["q2".to_string()]);
            }
            other => panic!("expected hard-rule violation, got {other:?}"),
        }
        f.answer("q2", "Right").unwrap();
        f.next_page().unwrap();
        assert!(f.is_finished());
    }

    #[test]
    fn only_the_three_answers_are_accepted() {
        let mut f = flow();
        f.visit(page(), 1000).unwrap();
        assert_eq!(
            f.answer("Which is better?", "Both"),
            Err(FlowError::InvalidAnswer("Both".into()))
        );
        for ok in ["Left", "Right", "Same"] {
            f.answer("Which is better?", ok).unwrap();
        }
    }

    #[test]
    fn cannot_answer_before_visiting() {
        let mut f = flow();
        assert_eq!(f.answer("Which is better?", "Left"), Err(FlowError::PageNotVisited));
        assert_eq!(f.next_page(), Err(FlowError::PageNotVisited));
    }

    #[test]
    fn revisits_accumulate_time_and_visits() {
        let mut f = flow();
        f.visit(page(), 10_000).unwrap();
        f.visit(page(), 5_000).unwrap();
        f.answer("Which is better?", "Right").unwrap();
        f.next_page().unwrap();
        f.visit(page(), 1_000).unwrap();
        f.answer("Which is better?", "Same").unwrap();
        f.next_page().unwrap();
        let rec = f.upload().unwrap();
        assert_eq!(rec.pages[0].visits, 2);
        assert_eq!(rec.pages[0].duration_ms, 15_000);
        assert_eq!(rec.created_tabs, 3);
    }

    #[test]
    fn upload_requires_completion() {
        let mut f = flow();
        f.visit(page(), 100).unwrap();
        f.answer("Which is better?", "Left").unwrap();
        f.next_page().unwrap();
        let err = f.upload().unwrap_err();
        assert_eq!(err, FlowError::PagesRemaining(1));
    }

    #[test]
    fn acting_after_finish_is_an_error() {
        let mut f = TestFlow::register("t", "w", json!({}), vec![], vec!["p".to_string()]);
        f.visit(page(), 100).unwrap();
        f.next_page().unwrap();
        assert!(f.is_finished());
        assert_eq!(f.visit(page(), 1), Err(FlowError::SessionFinished));
        assert_eq!(f.answer("q", "a"), Err(FlowError::SessionFinished));
        assert_eq!(f.next_page(), Err(FlowError::SessionFinished));
    }

    #[test]
    fn record_serializes_to_server_document() {
        let mut f = flow();
        f.visit(page(), 100).unwrap();
        f.answer("Which is better?", "Left").unwrap();
        f.next_page().unwrap();
        f.visit(page(), 100).unwrap();
        f.answer("Which is better?", "Right").unwrap();
        f.next_page().unwrap();
        let doc = f.upload().unwrap().to_json();
        assert_eq!(doc["test_id"], json!("t1"));
        assert_eq!(doc["pages"].as_array().unwrap().len(), 2);
        assert_eq!(doc["pages"][1]["answers"]["Which is better?"], json!("Right"));
    }

    #[test]
    fn event_log_records_the_fig3_flow() {
        let mut f = flow();
        f.visit(page(), 10_000).unwrap();
        f.answer("Which is better?", "Left").unwrap();
        f.visit(page(), 5_000).unwrap(); // revisit
        f.next_page().unwrap();
        f.visit(page(), 2_000).unwrap();
        f.answer("Which is better?", "Same").unwrap();
        f.next_page().unwrap();
        let events: Vec<FlowEventKind> = f.events().iter().map(|e| e.kind.clone()).collect();
        // Registered first, then visit/answer/complete per page.
        assert_eq!(events[0], FlowEventKind::Registered);
        assert!(matches!(
            &events[1],
            FlowEventKind::Visited { page, visit: 1 } if page == "p0.html"
        ));
        assert!(matches!(&events[2], FlowEventKind::Answered { answer, .. } if answer == "Left"));
        assert!(matches!(&events[3], FlowEventKind::Visited { visit: 2, .. }));
        assert!(matches!(&events[4], FlowEventKind::PageCompleted { page } if page == "p0.html"));
        // Timestamps are monotone.
        assert!(f.events().windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn upload_appends_final_event() {
        let mut f = TestFlow::register("t", "w", json!({}), vec![], vec!["p".to_string()]);
        f.visit(page(), 100).unwrap();
        f.next_page().unwrap();
        let n_before = f.events().len();
        let clock_end = f.events().last().unwrap().at_ms;
        let rec = f.upload().unwrap();
        let _ = (n_before, clock_end, rec);
    }

    #[test]
    fn submission_id_is_stable_per_session() {
        let f = flow();
        let id = f.submission_id().to_string();
        assert!(id.starts_with("sub-w-1-"));
        // Re-registering the same session (a client restart before any
        // upload) derives the same key, so the retry still dedupes.
        assert_eq!(id, flow().submission_id());
        // A different session gets a different key.
        let other = TestFlow::register(
            "t1",
            "w-2",
            json!({}),
            vec!["Which is better?".to_string()],
            vec!["p0.html".to_string()],
        );
        assert_ne!(id, other.submission_id());
        let other_test = TestFlow::register(
            "t2",
            "w-1",
            json!({}),
            vec!["Which is better?".to_string()],
            vec!["p0.html".to_string()],
        );
        assert_ne!(id, other_test.submission_id());
        let doc_flow = flow().with_submission_id("sub-fixed");
        assert_eq!(doc_flow.submission_id(), "sub-fixed");
    }

    #[test]
    fn interrupt_checkpoints_and_resume_completes() {
        let mut f = flow().with_submission_id("sub-x");
        f.visit(page(), 30_000).unwrap();
        f.answer("Which is better?", "Left").unwrap();
        f.next_page().unwrap();
        f.visit(page(), 10_000).unwrap();
        let partial = f.interrupt();
        assert_eq!(partial.completed_pages(), 1);
        assert!((partial.progress() - 0.5).abs() < 1e-12);
        assert_eq!(partial.submission_id, "sub-x");
        assert_eq!(partial.elapsed_ms, 40_000);
        assert!(matches!(partial.events.last().unwrap().kind, FlowEventKind::Interrupted));

        let mut resumed = partial.resume();
        assert_eq!(resumed.submission_id(), "sub-x");
        assert_eq!(resumed.current_page_name(), Some("p1.html"));
        // The interrupted page's tab is gone: it must be re-visited.
        assert_eq!(resumed.answer("Which is better?", "Same"), Err(FlowError::PageNotVisited));
        resumed.visit(page(), 5_000).unwrap();
        resumed.answer("Which is better?", "Same").unwrap();
        resumed.next_page().unwrap();
        let rec = resumed.upload().unwrap();
        assert_eq!(rec.submission_id, "sub-x");
        assert_eq!(rec.pages.len(), 2);
        assert_eq!(rec.pages[0].answers["Which is better?"], "Left");
        // Tab telemetry accumulates across the interruption: two visits
        // before the checkpoint plus the re-visit after resuming.
        assert_eq!(rec.created_tabs, 3);
    }

    #[test]
    fn resume_audit_log_spans_both_attempts() {
        let mut f = flow();
        f.visit(page(), 1_000).unwrap();
        let mut resumed = f.interrupt().resume();
        resumed.visit(page(), 1_000).unwrap();
        let kinds: Vec<FlowEventKind> = resumed.events().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(kinds[0], FlowEventKind::Registered);
        assert!(kinds.contains(&FlowEventKind::Interrupted));
        assert!(kinds.contains(&FlowEventKind::Resumed));
        assert!(resumed.events().windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn interrupt_mid_questionnaire_preserves_answers() {
        let mut f = TestFlow::register(
            "t",
            "w",
            json!({}),
            vec!["q1".to_string(), "q2".to_string()],
            vec!["p".to_string()],
        )
        .with_submission_id("sub-y");
        f.visit(page(), 1_000).unwrap();
        f.answer("q1", "Left").unwrap();
        let partial = f.interrupt();
        assert_eq!(partial.current_answers.len(), 1);
        let mut resumed = partial.resume();
        resumed.visit(page(), 500).unwrap();
        // q1's answer survived; only q2 is still missing.
        match resumed.next_page() {
            Err(FlowError::UnansweredQuestions(missing)) => {
                assert_eq!(missing, vec!["q2".to_string()]);
            }
            other => panic!("expected q2 missing, got {other:?}"),
        }
        resumed.answer("q2", "Right").unwrap();
        resumed.next_page().unwrap();
        assert!(resumed.is_finished());
    }

    #[test]
    fn record_json_carries_submission_id() {
        let mut f = TestFlow::register("t", "w", json!({}), vec![], vec!["p".to_string()])
            .with_submission_id("sub-z");
        f.visit(page(), 100).unwrap();
        f.next_page().unwrap();
        let doc = f.upload().unwrap().to_json();
        assert_eq!(doc["submission_id"], json!("sub-z"));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FlowError::InvalidAnswer("Maybe".into()),
            FlowError::PageNotVisited,
            FlowError::UnansweredQuestions(vec!["q".into()]),
            FlowError::SessionFinished,
            FlowError::PagesRemaining(2),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
