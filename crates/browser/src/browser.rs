//! Tabs and behaviour telemetry.

use crate::page::LoadedPage;

/// Identifies a tab within a [`Browser`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TabId(usize);

/// Counters matching what the extension records (Fig. 5's axes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Tabs created during the session.
    pub created_tabs: u32,
    /// Active-tab changes (including the activation of a new tab).
    pub active_tab_switches: u32,
}

/// A minimal tabbed browser: open pages, switch between them, and count
/// what the extension's behaviour monitor would see.
#[derive(Debug, Default)]
pub struct Browser {
    tabs: Vec<(String, LoadedPage)>,
    active: Option<usize>,
    telemetry: Telemetry,
}

impl Browser {
    /// A browser with no tabs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens `page` in a new tab (named for logging) and makes it active.
    pub fn open_tab(&mut self, name: &str, page: LoadedPage) -> TabId {
        self.tabs.push((name.to_string(), page));
        let id = TabId(self.tabs.len() - 1);
        self.telemetry.created_tabs += 1;
        self.activate(id);
        id
    }

    /// Switches the active tab.
    ///
    /// # Panics
    ///
    /// Panics if the tab does not exist.
    pub fn activate(&mut self, id: TabId) {
        assert!(id.0 < self.tabs.len(), "no such tab");
        if self.active != Some(id.0) {
            self.active = Some(id.0);
            self.telemetry.active_tab_switches += 1;
        }
    }

    /// The active tab's page.
    pub fn active_page(&self) -> Option<&LoadedPage> {
        self.active.map(|i| &self.tabs[i].1)
    }

    /// The active tab's name.
    pub fn active_name(&self) -> Option<&str> {
        self.active.map(|i| self.tabs[i].0.as_str())
    }

    /// A tab's page by id.
    pub fn page(&self, id: TabId) -> Option<&LoadedPage> {
        self.tabs.get(id.0).map(|(_, p)| p)
    }

    /// Number of open tabs.
    pub fn tab_count(&self) -> usize {
        self.tabs.len()
    }

    /// The session telemetry so far.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> LoadedPage {
        LoadedPage::from_html("<p>x</p>")
    }

    #[test]
    fn open_and_switch() {
        let mut b = Browser::new();
        let t1 = b.open_tab("page-0", page());
        let t2 = b.open_tab("page-1", page());
        assert_eq!(b.tab_count(), 2);
        assert_eq!(b.active_name(), Some("page-1"));
        b.activate(t1);
        assert_eq!(b.active_name(), Some("page-0"));
        assert!(b.page(t2).is_some());
    }

    #[test]
    fn telemetry_counts() {
        let mut b = Browser::new();
        let t1 = b.open_tab("a", page());
        let _t2 = b.open_tab("b", page());
        b.activate(t1); // switch
        b.activate(t1); // no-op: already active
        let t = b.telemetry();
        assert_eq!(t.created_tabs, 2);
        // open a (1) + open b (2) + switch back (3); the no-op not counted.
        assert_eq!(t.active_tab_switches, 3);
    }

    #[test]
    fn empty_browser_has_no_active_page() {
        let b = Browser::new();
        assert!(b.active_page().is_none());
        assert_eq!(b.telemetry(), Telemetry::default());
    }

    #[test]
    #[should_panic(expected = "no such tab")]
    fn activate_missing_tab_panics() {
        let mut b = Browser::new();
        b.activate(TabId(3));
    }
}
