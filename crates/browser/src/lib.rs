//! Virtual browser and browser-extension test flow.
//!
//! The paper's testers run a Chrome extension that downloads integrated
//! webpages, shows them in sequence, enforces hard rules ("participants
//! must answer all comparison questions in order to move to the next
//! integrated webpage"), allows revisits, records behaviour telemetry (tabs
//! created, active-tab switches, per-comparison time), and uploads results
//! (Fig. 3). Rendering fidelity is irrelevant to every reported result, so
//! we substitute Chrome with a virtual browser:
//!
//! * [`SimClock`] — deterministic virtual time in milliseconds.
//! * [`Browser`] — tabs + telemetry counters.
//! * [`LoadedPage`] — a parsed page that *executes the injected
//!   `kscope-reveal` script*: the plan is parsed back out of the page's own
//!   script element, laid out, and turned into a paint timeline, so the
//!   artifact the aggregator produced is what actually drives perception.
//! * [`extension::TestFlow`] — the Fig. 3 state machine with hard-rule
//!   enforcement.
//! * [`fetch::ExtensionClient`] — the extension's HTTP side: page
//!   downloads and result upload over one keep-alive connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod clock;
pub mod extension;
pub mod fetch;
pub mod page;

pub use browser::{Browser, TabId};
pub use clock::SimClock;
pub use extension::{
    FlowError, FlowEvent, FlowEventKind, PageResult, PartialSession, SessionRecord, TestFlow,
};
pub use fetch::{ExtensionClient, FetchError};
pub use page::LoadedPage;
