//! Deterministic virtual time.

/// A simulated millisecond clock. All session timing (page visits,
/// comparison durations, arrival offsets) runs on this clock so campaigns
/// are reproducible and can simulate days of wall time instantly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at an offset (e.g. a worker's arrival time).
    pub fn starting_at(now_ms: u64) -> Self {
        Self { now_ms }
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock.
    pub fn advance_ms(&mut self, delta: u64) {
        self.now_ms += delta;
    }

    /// Advances by fractional minutes (used by the behaviour models, which
    /// speak minutes like the paper's figures).
    pub fn advance_minutes(&mut self, minutes: f64) {
        assert!(minutes >= 0.0 && minutes.is_finite(), "time cannot go backwards");
        self.now_ms += (minutes * 60_000.0).round() as u64;
    }

    /// Elapsed milliseconds since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is in the future.
    pub fn since_ms(&self, earlier: SimClock) -> u64 {
        self.now_ms.checked_sub(earlier.now_ms).expect("`earlier` must not be in the future")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(250);
        c.advance_minutes(1.5);
        assert_eq!(c.now_ms(), 250 + 90_000);
    }

    #[test]
    fn since() {
        let start = SimClock::starting_at(1000);
        let mut later = start;
        later.advance_ms(234);
        assert_eq!(later.since_ms(start), 234);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn since_rejects_future() {
        let a = SimClock::starting_at(10);
        let b = SimClock::starting_at(20);
        let _ = a.since_ms(b);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_minutes_rejected() {
        SimClock::new().advance_minutes(-1.0);
    }
}
