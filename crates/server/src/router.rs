//! Method + path-pattern routing.

use crate::http::{Method, Request, Response, StatusCode};
use std::collections::HashMap;
use std::sync::Arc;

/// Path parameters captured from `:name` pattern segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    values: HashMap<String, String>,
}

impl Params {
    /// A captured parameter by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Number of captured parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Param(String),
    /// `*rest` — matches the remainder of the path (including slashes).
    Wildcard(String),
}

/// Routes requests to handlers by method and path pattern.
///
/// Patterns: literal segments, `:name` captures, and a trailing `*name`
/// wildcard, e.g. `/api/tests/:id/pages/*file`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({} routes)", self.routes.len())
    }
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a route.
    ///
    /// # Panics
    ///
    /// Panics if a wildcard segment is not last.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        let segments: Vec<Segment> = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Segment::Wildcard(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        if let Some(pos) = segments.iter().position(|s| matches!(s, Segment::Wildcard(_))) {
            assert_eq!(pos, segments.len() - 1, "wildcard must be the last segment");
        }
        self.routes.push(Route { method, segments, handler: Arc::new(handler) });
        self
    }

    /// Convenience for GET routes.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, handler)
    }

    /// Convenience for POST routes.
    pub fn post<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, handler)
    }

    /// Dispatches a request: 404 if no pattern matches, 405 if a pattern
    /// matches under a different method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut saw_path_match = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &req.path) {
                if route.method == req.method {
                    return (route.handler)(req, &params);
                }
                saw_path_match = true;
            }
        }
        if saw_path_match {
            Response::json_with_status(
                StatusCode::METHOD_NOT_ALLOWED,
                &serde_json::json!({ "error": "method not allowed" }),
            )
        } else {
            Response::not_found("no such route")
        }
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

fn match_segments(pattern: &[Segment], path: &str) -> Option<Params> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
    let mut params = Params::default();
    let mut i = 0;
    for seg in pattern {
        match seg {
            Segment::Literal(lit) => {
                if parts.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            Segment::Param(name) => {
                let value = parts.get(i)?;
                params.values.insert(name.clone(), (*value).to_string());
                i += 1;
            }
            Segment::Wildcard(name) => {
                if i >= parts.len() {
                    return None;
                }
                params.values.insert(name.clone(), parts[i..].join("/"));
                return Some(params);
            }
        }
    }
    if i == parts.len() {
        Some(params)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(tag: &'static str) -> impl Fn(&Request, &Params) -> Response {
        move |_req, params| {
            let mut body = serde_json::json!({ "route": tag });
            if let Some(id) = params.get("id") {
                body["id"] = serde_json::json!(id);
            }
            if let Some(file) = params.get("file") {
                body["file"] = serde_json::json!(file);
            }
            Response::json(&body)
        }
    }

    fn req(method: Method, path: &str) -> Request {
        Request::new(method, path)
    }

    #[test]
    fn literal_match() {
        let mut r = Router::new();
        r.get("/healthz", ok("health"));
        let resp = r.dispatch(&req(Method::Get, "/healthz"));
        assert_eq!(resp.status, StatusCode::OK);
        assert!(resp.text().contains("health"));
    }

    #[test]
    fn param_capture() {
        let mut r = Router::new();
        r.get("/api/tests/:id", ok("test"));
        let resp = r.dispatch(&req(Method::Get, "/api/tests/t-42"));
        assert_eq!(resp.json_body().unwrap()["id"], serde_json::json!("t-42"));
    }

    #[test]
    fn wildcard_captures_rest() {
        let mut r = Router::new();
        r.get("/files/*file", ok("files"));
        let resp = r.dispatch(&req(Method::Get, "/files/a/b/c.html"));
        assert_eq!(resp.json_body().unwrap()["file"], serde_json::json!("a/b/c.html"));
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let mut r = Router::new();
        r.get("/only-get", ok("g"));
        assert_eq!(r.dispatch(&req(Method::Get, "/nope")).status, StatusCode::NOT_FOUND);
        assert_eq!(
            r.dispatch(&req(Method::Post, "/only-get")).status,
            StatusCode::METHOD_NOT_ALLOWED
        );
    }

    #[test]
    fn longer_paths_do_not_match_shorter_patterns() {
        let mut r = Router::new();
        r.get("/a/:id", ok("a"));
        assert_eq!(r.dispatch(&req(Method::Get, "/a/1/extra")).status, StatusCode::NOT_FOUND);
        assert_eq!(r.dispatch(&req(Method::Get, "/a")).status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn first_matching_route_wins() {
        let mut r = Router::new();
        r.get("/x/special", ok("special"));
        r.get("/x/:id", ok("generic"));
        let resp = r.dispatch(&req(Method::Get, "/x/special"));
        assert!(resp.text().contains("special"));
        let resp = r.dispatch(&req(Method::Get, "/x/other"));
        assert!(resp.text().contains("generic"));
    }

    #[test]
    fn trailing_slash_insensitive() {
        let mut r = Router::new();
        r.get("/a/b", ok("ab"));
        assert_eq!(r.dispatch(&req(Method::Get, "/a/b/")).status, StatusCode::OK);
    }

    #[test]
    #[should_panic(expected = "wildcard must be the last segment")]
    fn wildcard_must_be_last() {
        let mut r = Router::new();
        r.get("/a/*rest/b", ok("bad"));
    }

    #[test]
    fn empty_wildcard_does_not_match() {
        let mut r = Router::new();
        r.get("/files/*file", ok("files"));
        assert_eq!(r.dispatch(&req(Method::Get, "/files")).status, StatusCode::NOT_FOUND);
    }
}
