//! Method + path-pattern routing.

use crate::http::{Method, Request, Response, StatusCode};
use kscope_telemetry::{Counter, Histogram, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Path parameters captured from `:name` pattern segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    values: HashMap<String, String>,
}

impl Params {
    /// A captured parameter by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Number of captured parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

/// Per-route telemetry handles, registered once when a registry is
/// attached — request-time updates are pure atomics.
#[derive(Debug, Clone)]
struct RouteMetrics {
    requests: Counter,
    latency: Histogram,
}

impl RouteMetrics {
    fn register(registry: &Registry, method: Method, pattern: &str) -> Self {
        let labels = [("method", method.as_str()), ("route", pattern)];
        Self {
            requests: registry.counter_with("server.requests_total", &labels),
            latency: registry.histogram_with("server.handler_latency_us", &labels),
        }
    }
}

struct Route {
    method: Method,
    pattern: String,
    segments: Vec<Segment>,
    handler: Handler,
    metrics: Option<RouteMetrics>,
}

enum Segment {
    Literal(String),
    Param(String),
    /// `*rest` — matches the remainder of the path (including slashes).
    Wildcard(String),
}

/// Routes requests to handlers by method and path pattern.
///
/// Patterns: literal segments, `:name` captures, and a trailing `*name`
/// wildcard, e.g. `/api/tests/:id/pages/*file`.
///
/// Attach a [`Registry`] with [`Router::set_telemetry`] to count requests
/// and time handlers per route (`server.requests_total` /
/// `server.handler_latency_us`, labelled by method and route pattern).
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    telemetry: Option<Arc<Registry>>,
    unrouted: Option<Counter>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({} routes)", self.routes.len())
    }
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a route.
    ///
    /// # Panics
    ///
    /// Panics if a wildcard segment is not last.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        let segments: Vec<Segment> = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Segment::Wildcard(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        if let Some(pos) = segments.iter().position(|s| matches!(s, Segment::Wildcard(_))) {
            assert_eq!(pos, segments.len() - 1, "wildcard must be the last segment");
        }
        let metrics = self
            .telemetry
            .as_ref()
            .map(|registry| RouteMetrics::register(registry, method, pattern));
        self.routes.push(Route {
            method,
            pattern: pattern.to_string(),
            segments,
            handler: Arc::new(handler),
            metrics,
        });
        self
    }

    /// Attaches a metric registry: every already-registered route (and any
    /// added later) gets a request counter and a handler-latency histogram
    /// labelled `{method, route}`; unmatched requests are counted under
    /// `server.unrouted_total`. Idempotent for a given registry — handles
    /// are looked up by name, so re-attaching reuses the same metrics.
    pub fn set_telemetry(&mut self, registry: &Arc<Registry>) {
        for route in &mut self.routes {
            route.metrics = Some(RouteMetrics::register(registry, route.method, &route.pattern));
        }
        self.unrouted = Some(registry.counter("server.unrouted_total"));
        self.telemetry = Some(Arc::clone(registry));
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// Convenience for GET routes.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, handler)
    }

    /// Convenience for POST routes.
    pub fn post<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, handler)
    }

    /// Convenience for PUT routes.
    pub fn put<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Put, pattern, handler)
    }

    /// Convenience for DELETE routes.
    pub fn delete<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Delete, pattern, handler)
    }

    /// Dispatches a request: 404 if no pattern matches, 405 if a pattern
    /// matches under a different method.
    pub fn dispatch(&self, req: &Request) -> Response {
        let mut saw_path_match = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &req.path) {
                if route.method == req.method {
                    let timer = route.metrics.as_ref().map(|m| {
                        m.requests.inc();
                        m.latency.start_timer()
                    });
                    let response = (route.handler)(req, &params);
                    drop(timer);
                    return response;
                }
                saw_path_match = true;
            }
        }
        if let Some(unrouted) = &self.unrouted {
            unrouted.inc();
        }
        if saw_path_match {
            Response::json_with_status(
                StatusCode::METHOD_NOT_ALLOWED,
                &serde_json::json!({ "error": "method not allowed" }),
            )
        } else {
            Response::not_found("no such route")
        }
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

fn match_segments(pattern: &[Segment], path: &str) -> Option<Params> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
    let mut params = Params::default();
    let mut i = 0;
    for seg in pattern {
        match seg {
            Segment::Literal(lit) => {
                if parts.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            Segment::Param(name) => {
                let value = parts.get(i)?;
                params.values.insert(name.clone(), (*value).to_string());
                i += 1;
            }
            Segment::Wildcard(name) => {
                if i >= parts.len() {
                    return None;
                }
                params.values.insert(name.clone(), parts[i..].join("/"));
                return Some(params);
            }
        }
    }
    if i == parts.len() {
        Some(params)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(tag: &'static str) -> impl Fn(&Request, &Params) -> Response {
        move |_req, params| {
            let mut body = serde_json::json!({ "route": tag });
            if let Some(id) = params.get("id") {
                body["id"] = serde_json::json!(id);
            }
            if let Some(file) = params.get("file") {
                body["file"] = serde_json::json!(file);
            }
            Response::json(&body)
        }
    }

    fn req(method: Method, path: &str) -> Request {
        Request::new(method, path)
    }

    #[test]
    fn literal_match() {
        let mut r = Router::new();
        r.get("/healthz", ok("health"));
        let resp = r.dispatch(&req(Method::Get, "/healthz"));
        assert_eq!(resp.status, StatusCode::OK);
        assert!(resp.text().contains("health"));
    }

    #[test]
    fn param_capture() {
        let mut r = Router::new();
        r.get("/api/tests/:id", ok("test"));
        let resp = r.dispatch(&req(Method::Get, "/api/tests/t-42"));
        assert_eq!(resp.json_body().unwrap()["id"], serde_json::json!("t-42"));
    }

    #[test]
    fn wildcard_captures_rest() {
        let mut r = Router::new();
        r.get("/files/*file", ok("files"));
        let resp = r.dispatch(&req(Method::Get, "/files/a/b/c.html"));
        assert_eq!(resp.json_body().unwrap()["file"], serde_json::json!("a/b/c.html"));
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let mut r = Router::new();
        r.get("/only-get", ok("g"));
        assert_eq!(r.dispatch(&req(Method::Get, "/nope")).status, StatusCode::NOT_FOUND);
        assert_eq!(
            r.dispatch(&req(Method::Post, "/only-get")).status,
            StatusCode::METHOD_NOT_ALLOWED
        );
    }

    #[test]
    fn put_and_delete_conveniences() {
        let mut r = Router::new();
        r.put("/api/tests/:id", ok("put"));
        r.delete("/api/tests/:id", ok("delete"));
        assert!(r.dispatch(&req(Method::Put, "/api/tests/t1")).text().contains("put"));
        assert!(r.dispatch(&req(Method::Delete, "/api/tests/t1")).text().contains("delete"));
        assert_eq!(
            r.dispatch(&req(Method::Get, "/api/tests/t1")).status,
            StatusCode::METHOD_NOT_ALLOWED
        );
    }

    #[test]
    fn longer_paths_do_not_match_shorter_patterns() {
        let mut r = Router::new();
        r.get("/a/:id", ok("a"));
        assert_eq!(r.dispatch(&req(Method::Get, "/a/1/extra")).status, StatusCode::NOT_FOUND);
        assert_eq!(r.dispatch(&req(Method::Get, "/a")).status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn first_matching_route_wins() {
        let mut r = Router::new();
        r.get("/x/special", ok("special"));
        r.get("/x/:id", ok("generic"));
        let resp = r.dispatch(&req(Method::Get, "/x/special"));
        assert!(resp.text().contains("special"));
        let resp = r.dispatch(&req(Method::Get, "/x/other"));
        assert!(resp.text().contains("generic"));
    }

    #[test]
    fn trailing_slash_insensitive() {
        let mut r = Router::new();
        r.get("/a/b", ok("ab"));
        assert_eq!(r.dispatch(&req(Method::Get, "/a/b/")).status, StatusCode::OK);
    }

    #[test]
    #[should_panic(expected = "wildcard must be the last segment")]
    fn wildcard_must_be_last() {
        let mut r = Router::new();
        r.get("/a/*rest/b", ok("bad"));
    }

    #[test]
    fn empty_wildcard_does_not_match() {
        let mut r = Router::new();
        r.get("/files/*file", ok("files"));
        assert_eq!(r.dispatch(&req(Method::Get, "/files")).status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn telemetry_counts_per_route_and_unrouted() {
        let registry = Arc::new(Registry::new());
        let mut r = Router::new();
        r.get("/a/:id", ok("a"));
        r.set_telemetry(&registry);
        // Routes added after attach are instrumented too.
        r.get("/b", ok("b"));

        r.dispatch(&req(Method::Get, "/a/1"));
        r.dispatch(&req(Method::Get, "/a/2"));
        r.dispatch(&req(Method::Get, "/b"));
        r.dispatch(&req(Method::Get, "/nope"));

        let route_a = [("method", "GET"), ("route", "/a/:id")];
        assert_eq!(registry.counter_value("server.requests_total", &route_a), Some(2));
        assert_eq!(
            registry.counter_value("server.requests_total", &[("method", "GET"), ("route", "/b")]),
            Some(1)
        );
        assert_eq!(registry.counter_value("server.unrouted_total", &[]), Some(1));
        // Handler latency observed once per dispatch.
        let snap = registry.snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(k, _)| {
                k.name == "server.handler_latency_us" && k.labels.iter().any(|(_, v)| v == "/a/:id")
            })
            .expect("latency histogram registered");
        assert_eq!(hist.count(), 2);
    }
}
