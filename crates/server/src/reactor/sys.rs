//! Raw epoll bindings for Linux, implemented with stable inline assembly.
//!
//! The workspace builds fully offline, so `libc` is not available; the four
//! syscalls the reactor needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`/`epoll_pwait`, `close`) are invoked directly. Everything
//! unsafe in the server crate lives in this module; the rest of the crate
//! denies `unsafe_code`.
//!
//! On platforms without these bindings ([`SUPPORTED`] is `false`) the stub
//! functions return `Unsupported` errors and the reactor falls back to the
//! portable [`ScanPoller`](super::poller::ScanPoller).
#![allow(unsafe_code)]

use std::io;

/// Whether raw epoll is available on this target.
pub const SUPPORTED: bool =
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")));

/// `EPOLL_CLOEXEC` flag for [`epoll_create1`].
pub const EPOLL_CLOEXEC: i32 = 0x8_0000;
/// Add a new fd to the interest list.
pub const EPOLL_CTL_ADD: i32 = 1;
/// Remove an fd from the interest list.
pub const EPOLL_CTL_DEL: i32 = 2;
/// Change the event mask of a registered fd.
pub const EPOLL_CTL_MOD: i32 = 3;
/// Readable readiness.
pub const EPOLLIN: u32 = 0x1;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition (always reported, no need to request).
pub const EPOLLERR: u32 = 0x8;
/// Hang-up (always reported, no need to request).
pub const EPOLLHUP: u32 = 0x10;

/// Mirror of the kernel's `struct epoll_event`.
///
/// The x86_64 ABI packs this struct to 12 bytes; other architectures use
/// natural (16-byte) layout.
#[derive(Clone, Copy, Default)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token returned verbatim with the event.
    pub data: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use std::arch::asm;

    const NR_CLOSE: u64 = 3;
    const NR_EPOLL_WAIT: u64 = 232;
    const NR_EPOLL_CTL: u64 = 233;
    const NR_EPOLL_CREATE1: u64 = 291;

    /// # Safety
    /// Arguments must be valid for the given syscall number.
    unsafe fn syscall4(nr: u64, a0: u64, a1: u64, a2: u64, a3: u64) -> i64 {
        let ret: i64;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a0,
                in("rsi") a1,
                in("rdx") a2,
                in("r10") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    pub fn epoll_create1(flags: i32) -> i64 {
        unsafe { syscall4(NR_EPOLL_CREATE1, flags as u64, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut super::EpollEvent) -> i64 {
        unsafe { syscall4(NR_EPOLL_CTL, epfd as u64, op as u64, fd as u64, event as u64) }
    }

    pub fn epoll_wait(epfd: i32, events: *mut super::EpollEvent, max: i32, timeout_ms: i32) -> i64 {
        unsafe {
            syscall4(
                NR_EPOLL_WAIT,
                epfd as u64,
                events as u64,
                max as u64,
                timeout_ms as i64 as u64,
            )
        }
    }

    pub fn close(fd: i32) -> i64 {
        unsafe { syscall4(NR_CLOSE, fd as u64, 0, 0, 0) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod imp {
    use std::arch::asm;

    const NR_EPOLL_CREATE1: u64 = 20;
    const NR_EPOLL_CTL: u64 = 21;
    const NR_EPOLL_PWAIT: u64 = 22;
    const NR_CLOSE: u64 = 57;

    /// # Safety
    /// Arguments must be valid for the given syscall number.
    unsafe fn syscall5(nr: u64, a0: u64, a1: u64, a2: u64, a3: u64, a4: u64) -> i64 {
        let ret: i64;
        unsafe {
            asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a0 => ret,
                in("x1") a1,
                in("x2") a2,
                in("x3") a3,
                in("x4") a4,
                options(nostack),
            );
        }
        ret
    }

    pub fn epoll_create1(flags: i32) -> i64 {
        unsafe { syscall5(NR_EPOLL_CREATE1, flags as u64, 0, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut super::EpollEvent) -> i64 {
        unsafe { syscall5(NR_EPOLL_CTL, epfd as u64, op as u64, fd as u64, event as u64, 0) }
    }

    pub fn epoll_wait(epfd: i32, events: *mut super::EpollEvent, max: i32, timeout_ms: i32) -> i64 {
        // aarch64 has no epoll_wait; epoll_pwait with a null sigmask is
        // equivalent.
        unsafe {
            syscall5(
                NR_EPOLL_PWAIT,
                epfd as u64,
                events as u64,
                max as u64,
                timeout_ms as i64 as u64,
                0,
            )
        }
    }

    pub fn close(fd: i32) -> i64 {
        unsafe { syscall5(NR_CLOSE, fd as u64, 0, 0, 0, 0) }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    fn unsupported() -> i64 {
        // ENOSYS, surfaced as io::Error below.
        -38
    }

    pub fn epoll_create1(_flags: i32) -> i64 {
        unsupported()
    }

    pub fn epoll_ctl(_epfd: i32, _op: i32, _fd: i32, _event: *mut super::EpollEvent) -> i64 {
        unsupported()
    }

    pub fn epoll_wait(
        _epfd: i32,
        _events: *mut super::EpollEvent,
        _max: i32,
        _timeout_ms: i32,
    ) -> i64 {
        unsupported()
    }

    pub fn close(_fd: i32) -> i64 {
        unsupported()
    }
}

fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

/// Creates a new epoll instance; returns its fd.
///
/// # Errors
/// The raw OS error on failure, or `ENOSYS` on unsupported targets.
pub fn epoll_create1(flags: i32) -> io::Result<i32> {
    check(imp::epoll_create1(flags)).map(|fd| fd as i32)
}

/// Adds, modifies, or removes `fd` on the epoll interest list.
///
/// # Errors
/// The raw OS error on failure (e.g. `EEXIST`, `ENOENT`).
pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, mut event: EpollEvent) -> io::Result<()> {
    check(imp::epoll_ctl(epfd, op, fd, &mut event)).map(|_| ())
}

/// Waits up to `timeout_ms` (−1 = forever) for readiness events, filling
/// `events`; returns how many were written.
///
/// # Errors
/// The raw OS error on failure. `EINTR` is retried internally.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let ret = imp::epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms);
        // EINTR: retry. (Timeout accuracy is not critical for the reactor;
        // a full re-wait is acceptable.)
        if ret == -4 {
            continue;
        }
        return check(ret).map(|n| n as usize);
    }
}

/// Closes a raw fd (used for the epoll fd itself).
///
/// # Errors
/// The raw OS error on failure.
pub fn close(fd: i32) -> io::Result<()> {
    check(imp::close(fd)).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_create_and_close_roundtrip() {
        if !SUPPORTED {
            return;
        }
        let epfd = epoll_create1(EPOLL_CLOEXEC).expect("epoll_create1");
        assert!(epfd >= 0);
        // Empty wait with zero timeout returns immediately with no events.
        let mut events = [EpollEvent::default(); 4];
        let n = epoll_wait(epfd, &mut events, 0).expect("epoll_wait");
        assert_eq!(n, 0);
        close(epfd).expect("close");
    }

    #[test]
    fn epoll_reports_readable_listener() {
        if !SUPPORTED {
            return;
        }
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let epfd = epoll_create1(EPOLL_CLOEXEC).unwrap();
        epoll_ctl(
            epfd,
            EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            EpollEvent { events: EPOLLIN, data: 77 },
        )
        .unwrap();

        // No pending connection: nothing ready.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll_wait(epfd, &mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.write_all(b"x").unwrap();
        let n = epoll_wait(epfd, &mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 77);
        assert_ne!({ ev.events } & EPOLLIN, 0);
        close(epfd).unwrap();
    }
}
