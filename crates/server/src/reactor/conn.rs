//! Generation-checked slab: maps compact poller tokens to connection
//! state, with stale-token detection.
//!
//! A token packs a 31-bit generation and a 32-bit slot index; the top bit
//! is reserved for the reactor's special tokens (listener, waker). When a
//! slot is reused its generation bumps, so a readiness or completion event
//! carrying a token from a connection that has since been closed fails the
//! generation check and is dropped instead of acting on the new tenant.

/// Token bit reserved for non-connection registrations.
pub const SPECIAL_BIT: u64 = 1 << 63;
/// Poller token of the shard's listener registration.
pub const LISTENER_TOKEN: u64 = SPECIAL_BIT;
/// Poller token of the shard's wake pipe.
pub const WAKER_TOKEN: u64 = SPECIAL_BIT | 1;

struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A slab keyed by generation-checked tokens.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Slab<T> {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    fn pack(gen: u32, idx: u32) -> u64 {
        // Keep the top bit clear for SPECIAL_BIT.
        ((gen as u64 & 0x7FFF_FFFF) << 32) | idx as u64
    }

    fn unpack(token: u64) -> Option<(u32, u32)> {
        if token & SPECIAL_BIT != 0 {
            return None;
        }
        Some(((token >> 32) as u32, token as u32))
    }

    /// Inserts a value and returns its token.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.value = Some(value);
            return Self::pack(slot.gen, idx);
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot { gen: 0, value: Some(value) });
        Self::pack(0, idx)
    }

    fn slot_for(&self, token: u64) -> Option<usize> {
        let (gen, idx) = Self::unpack(token)?;
        let slot = self.slots.get(idx as usize)?;
        (slot.gen & 0x7FFF_FFFF == gen && slot.value.is_some()).then_some(idx as usize)
    }

    /// Looks up a live entry; stale or foreign tokens return None.
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let idx = self.slot_for(token)?;
        self.slots[idx].value.as_mut()
    }

    /// Removes and returns a live entry, bumping the slot generation so
    /// in-flight tokens for it become stale.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let idx = self.slot_for(token)?;
        let slot = &mut self.slots[idx];
        let value = slot.value.take();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        value
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tokens of every live entry (used for drain sweeps).
    pub fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.value.is_some())
            .map(|(idx, s)| Self::pack(s.gen, idx as u32))
            .collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get_mut(a), Some(&mut "a"));
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get_mut(a), None, "removed token must be dead");
    }

    #[test]
    fn reused_slot_rejects_stale_token() {
        let mut slab = Slab::new();
        let old = slab.insert(1u32);
        slab.remove(old);
        let new = slab.insert(2u32);
        // Same slot index, different generation.
        assert_ne!(old, new);
        assert_eq!(slab.get_mut(old), None);
        assert_eq!(slab.remove(old), None);
        assert_eq!(slab.get_mut(new), Some(&mut 2));
    }

    #[test]
    fn special_tokens_never_alias_slab_tokens() {
        let mut slab = Slab::new();
        for _ in 0..100 {
            let token = slab.insert(());
            assert_eq!(token & SPECIAL_BIT, 0);
            assert_ne!(token, LISTENER_TOKEN);
            assert_ne!(token, WAKER_TOKEN);
        }
        assert_eq!(slab.get_mut(LISTENER_TOKEN), None);
        assert_eq!(slab.get_mut(WAKER_TOKEN), None);
    }

    #[test]
    fn tokens_lists_live_entries() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        slab.remove(b);
        let mut tokens = slab.tokens();
        tokens.sort_unstable();
        let mut expected = vec![a, c];
        expected.sort_unstable();
        assert_eq!(tokens, expected);
    }
}
