//! Readiness pollers: the epoll-backed fast path and a portable scan
//! fallback, behind one small trait so shard loops and the load generator
//! are poller-agnostic.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

use super::sys;

/// What readiness a registered fd wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// No interest — stay registered but report nothing (level-triggered
    /// mute while a request is in flight on the worker pool).
    pub const NONE: Interest = Interest { readable: false, writable: false };

    fn to_epoll(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// A readiness event delivered by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or in an error/hang-up state).
    pub readable: bool,
    /// The fd is writable (or in an error/hang-up state).
    pub writable: bool,
}

/// Minimal readiness-notification interface.
///
/// Implementations are level-triggered: a ready fd keeps being reported
/// until the condition is drained or interest is removed.
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    /// I/O error from the underlying mechanism (e.g. `EEXIST`).
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Changes the interest set of an already-registered fd.
    ///
    /// # Errors
    /// I/O error from the underlying mechanism (e.g. `ENOENT`).
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    /// I/O error from the underlying mechanism.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks up to `timeout` (None = forever) and fills `events` with
    /// ready fds; returns how many were written.
    ///
    /// # Errors
    /// I/O error from the underlying mechanism.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;

    /// Implementation name, for telemetry and logs.
    fn name(&self) -> &'static str;
}

/// epoll-backed poller (Linux fast path).
pub struct EpollPoller {
    epfd: i32,
    buf: Vec<sys::EpollEvent>,
}

impl EpollPoller {
    /// Creates a new epoll instance.
    ///
    /// # Errors
    /// Fails where epoll is unavailable (non-Linux targets).
    pub fn new() -> io::Result<EpollPoller> {
        let epfd = sys::epoll_create1(sys::EPOLL_CLOEXEC)?;
        Ok(EpollPoller { epfd, buf: vec![sys::EpollEvent::default(); 256] })
    }
}

impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EpollEvent { events: interest.to_epoll(), data: token },
        )
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            sys::EpollEvent { events: interest.to_epoll(), data: token },
        )
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, sys::EpollEvent::default())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 500µs timeout doesn't busy-spin at 0ms.
            Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as i32,
            None => -1,
        };
        let n = sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms)?;
        for raw in &self.buf[..n] {
            let bits = { raw.events };
            let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                token: { raw.data },
                // Errors/hang-ups surface as both-ready so whichever path
                // the connection is in observes the failure promptly.
                readable: bits & sys::EPOLLIN != 0 || err,
                writable: bits & sys::EPOLLOUT != 0 || err,
            });
        }
        if n == self.buf.len() {
            // Full batch: likely more pending; grow so big fleets drain in
            // fewer syscalls.
            self.buf.resize(self.buf.len() * 2, sys::EpollEvent::default());
        }
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

impl Drop for EpollPoller {
    fn drop(&mut self) {
        let _ = sys::close(self.epfd);
    }
}

/// Portable fallback poller: keeps a registry of fds and reports every
/// registered fd as ready after a short sleep. Correct (callers must
/// already tolerate spurious readiness / `WouldBlock` under level
/// triggering) but burns CPU proportional to registered fds; only used
/// where epoll is unavailable or when explicitly forced for testing.
pub struct ScanPoller {
    registered: HashMap<RawFd, (u64, Interest)>,
}

impl ScanPoller {
    /// Creates an empty scan poller.
    pub fn new() -> ScanPoller {
        ScanPoller { registered: HashMap::new() }
    }
}

impl Default for ScanPoller {
    fn default() -> Self {
        ScanPoller::new()
    }
}

impl Poller for ScanPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.registered.insert(fd, (token, interest)).is_some() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.registered.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.registered.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        // Pace the scan: without real readiness information, sleeping a
        // couple of milliseconds bounds the busy-loop while keeping worst
        // case latency low.
        let pause = timeout.unwrap_or(Duration::from_millis(2)).min(Duration::from_millis(2));
        std::thread::sleep(pause);
        let mut n = 0;
        for &(token, interest) in self.registered.values() {
            if !interest.readable && !interest.writable {
                continue;
            }
            events.push(Event { token, readable: interest.readable, writable: interest.writable });
            n += 1;
        }
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

/// Builds the best poller available: epoll where supported, scan fallback
/// elsewhere (or when `force_scan` asks for the portable path explicitly).
pub fn new_poller(force_scan: bool) -> Box<dyn Poller> {
    if !force_scan && sys::SUPPORTED {
        if let Ok(p) = EpollPoller::new() {
            return Box::new(p);
        }
    }
    Box::new(ScanPoller::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn exercise_poller(poller: &mut dyn Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(listener.as_raw_fd(), 9, Interest::READABLE).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.write_all(b"hi").unwrap();

        // The pending connection must surface as a readable event within
        // a bounded number of waits.
        let mut events = Vec::new();
        let mut seen = false;
        for _ in 0..200 {
            events.clear();
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                seen = true;
                break;
            }
        }
        assert!(seen, "poller {} never reported the listener readable", poller.name());

        // Muted interest reports nothing (epoll) or is skipped (scan).
        poller.reregister(listener.as_raw_fd(), 9, Interest::NONE).unwrap();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.iter().all(|e| e.token != 9));

        poller.deregister(listener.as_raw_fd()).unwrap();
        assert!(poller.deregister(listener.as_raw_fd()).is_err());
    }

    #[test]
    fn scan_poller_reports_registered_fds() {
        exercise_poller(&mut ScanPoller::new());
    }

    #[test]
    fn epoll_poller_reports_real_readiness() {
        if !sys::SUPPORTED {
            return;
        }
        exercise_poller(&mut EpollPoller::new().unwrap());
    }

    #[test]
    fn new_poller_picks_epoll_where_supported() {
        let poller = new_poller(false);
        if sys::SUPPORTED {
            assert_eq!(poller.name(), "epoll");
        } else {
            assert_eq!(poller.name(), "scan");
        }
        assert_eq!(new_poller(true).name(), "scan");
    }
}
