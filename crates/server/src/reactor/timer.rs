//! Hashed timer wheel for connection idle deadlines.
//!
//! Each shard owns one wheel. Entries are `(token, deadline)` pairs hashed
//! into a fixed ring of slots by deadline tick; [`TimerWheel::expire`]
//! drains every slot the clock has passed since the previous call, firing
//! entries whose deadline has arrived and re-hashing the rest (a deadline
//! far in the future lands in its slot again until its final lap).
//!
//! Cancellation is lazy: connections keep at most one wheel entry alive and
//! simply bump their own `idle_deadline` field on activity; when the stale
//! entry fires the shard re-arms it at the connection's current deadline
//! instead of killing the connection. This keeps activity O(1) with zero
//! wheel traffic on the hot path.

use std::time::{Duration, Instant};

/// One scheduled timeout.
#[derive(Clone, Copy, Debug)]
struct Entry {
    token: u64,
    deadline: Instant,
}

/// A fixed-size hashed timer wheel.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    origin: Instant,
    /// Next tick index to drain (ticks since `origin`).
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel sized for deadlines around `horizon` (e.g. the
    /// configured idle timeout): the tick is `horizon / 8` clamped to
    /// [1ms, 50ms], so a 200ms idle timeout fires within tens of
    /// milliseconds of its deadline while a 10s timeout costs almost no
    /// wheel traffic.
    pub fn new(horizon: Duration, now: Instant) -> TimerWheel {
        let tick = (horizon / 8).max(Duration::from_millis(1)).min(Duration::from_millis(50));
        TimerWheel {
            slots: (0..64).map(|_| Vec::new()).collect(),
            tick,
            origin: now,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        // Round up: an entry must never land in a slot the cursor has
        // already passed this lap, or it would wait a full extra lap.
        elapsed.as_nanos().div_ceil(self.tick.as_nanos().max(1)) as u64
    }

    /// Schedules `token` to fire at `deadline`. Duplicate tokens are the
    /// caller's concern — the reactor keeps one live entry per connection.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, deadline });
        self.len += 1;
    }

    /// Number of live entries across all slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How long until the next slot boundary — a suitable poll timeout so
    /// the shard wakes in time to fire deadlines.
    pub fn next_wakeup(&self, now: Instant) -> Duration {
        let next_tick_at = self.origin + self.tick * (self.cursor as u32 + 1);
        next_tick_at.saturating_duration_since(now).max(Duration::from_millis(1))
    }

    /// Drains every slot the clock has passed, appending fired tokens to
    /// `fired`. Entries scheduled for a later lap are re-hashed.
    pub fn expire(&mut self, now: Instant, fired: &mut Vec<u64>) {
        let target = self.tick_of(now);
        let nslots = self.slots.len() as u64;
        // Cap the walk at one full lap: beyond that every slot has already
        // been visited once and re-hashing handles the rest.
        let steps = (target - self.cursor).min(nslots);
        let mut requeue = Vec::new();
        for i in 0..=steps {
            let slot = ((self.cursor + i) % nslots) as usize;
            let mut kept = Vec::new();
            for entry in std::mem::take(&mut self.slots[slot]) {
                if entry.deadline <= now {
                    fired.push(entry.token);
                    self.len -= 1;
                } else if self.tick_of(entry.deadline) <= self.cursor + i {
                    // Same slot, future lap that has now arrived — should
                    // not happen given deadline > now, but keep it safe.
                    kept.push(entry);
                } else if (self.tick_of(entry.deadline) % nslots) as usize == slot {
                    // Future lap, same slot: stays put.
                    kept.push(entry);
                } else {
                    requeue.push(entry);
                }
            }
            self.slots[slot] = kept;
        }
        self.cursor = target;
        for entry in requeue {
            self.len -= 1;
            self.schedule(entry.token, entry.deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(200), t0);
        wheel.schedule(1, t0 + Duration::from_millis(100));
        wheel.schedule(2, t0 + Duration::from_millis(300));
        assert_eq!(wheel.len(), 2);

        let mut fired = Vec::new();
        wheel.expire(t0 + Duration::from_millis(50), &mut fired);
        assert!(fired.is_empty(), "nothing due yet: {fired:?}");

        wheel.expire(t0 + Duration::from_millis(120), &mut fired);
        assert_eq!(fired, vec![1]);

        fired.clear();
        wheel.expire(t0 + Duration::from_millis(400), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_deadlines_survive_multiple_laps() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(8), t0); // 1ms tick, 64 slots
                                                                       // 5 laps out.
        wheel.schedule(7, t0 + Duration::from_millis(320));
        let mut fired = Vec::new();
        for step in 1..=12 {
            wheel.expire(t0 + Duration::from_millis(step * 30), &mut fired);
            if step * 30 < 320 {
                assert!(fired.is_empty(), "fired early at {}ms", step * 30);
            }
        }
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn expire_after_long_gap_fires_everything_due() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(200), t0);
        for token in 0..50u64 {
            wheel.schedule(token, t0 + Duration::from_millis(10 + token));
        }
        let mut fired = Vec::new();
        // One giant jump — several laps at once.
        wheel.expire(t0 + Duration::from_secs(30), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (0..50).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_wakeup_is_bounded_by_tick() {
        let t0 = Instant::now();
        let wheel = TimerWheel::new(Duration::from_millis(200), t0);
        let wakeup = wheel.next_wakeup(t0);
        assert!(wakeup >= Duration::from_millis(1));
        assert!(wakeup <= Duration::from_millis(50));
    }
}
