//! Readiness-driven connection reactor.
//!
//! The server's socket I/O runs on a small set of shard threads, each
//! owning an event loop over nonblocking sockets: an epoll-backed poller
//! (with a portable scan fallback — see [`poller`]), a generation-checked
//! connection slab ([`conn`]), and a hashed timer wheel for idle deadlines
//! ([`timer`]). Every shard registers the one shared nonblocking listener,
//! so accepts spread across shards without a dedicated acceptor thread.
//!
//! Handlers still run on the worker pool: a shard parses a complete
//! request, dispatches a [`Job`] over the bounded worker channel (shedding
//! a `503` when it is full, exactly like the old accept-queue), mutes read
//! interest while the request is in flight, and resumes when the worker's
//! [`Completion`] comes back — announced through a [`Waker`] so responses
//! are flushed within microseconds rather than a poll interval.
//!
//! One connection therefore never pins a thread: 10k idle keep-alive
//! sessions cost 10k slab entries and timer-wheel slots, not 10k blocked
//! worker threads.

pub mod conn;
pub mod poller;
pub mod sys;
pub mod timer;

use crate::http::{HttpParseError, RequestParser, Response, StatusCode};
use crate::metrics::ServerMetrics;
use conn::{Slab, LISTENER_TOKEN, WAKER_TOKEN};
use crossbeam::channel::{Receiver, Sender, TrySendError};
use poller::{Interest, Poller};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use timer::TimerWheel;

/// A parsed request handed from a shard to the worker pool.
pub(crate) struct Job {
    /// The complete parsed request.
    pub(crate) request: crate::http::Request,
    /// Slab token of the originating connection.
    pub(crate) token: u64,
    /// Whether the connection must close after this response.
    pub(crate) close: bool,
    /// Completion channel of the owning shard.
    pub(crate) reply: Sender<Completion>,
    /// Waker of the owning shard, rung after `reply.send`.
    pub(crate) waker: Arc<Waker>,
}

/// A handler's response travelling back to the owning shard.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) close: bool,
    pub(crate) response: Response,
}

/// Wakes a shard blocked in `Poller::wait` from another thread.
///
/// Implemented as one side of a loopback TCP pair whose read end is
/// registered in the shard's poller. The `pending` flag coalesces bursts:
/// only the first wake between two drains writes a byte.
pub struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    /// Builds a waker and the nonblocking read end the shard registers.
    pub(crate) fn pair() -> std::io::Result<(Arc<Waker>, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok((Arc::new(Waker { tx, pending: AtomicBool::new(false) }), rx))
    }

    /// Interrupts the shard's current (or next) poll.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.tx).write(&[1]);
        }
    }

    /// Re-arms the waker; called by the shard after draining the pipe and
    /// *before* draining the completion queue, so no wake is lost.
    pub(crate) fn clear(&self) {
        self.pending.store(false, Ordering::SeqCst);
    }
}

/// What the accept loop should do after an `accept()` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptDecision {
    /// Transient per-connection error (e.g. `ECONNABORTED`): keep
    /// accepting.
    Retry,
    /// Nothing pending (`EWOULDBLOCK`): wait for the next readiness event.
    WaitForReadiness,
    /// Resource exhaustion (`EMFILE`/`ENFILE`): stop accepting for the
    /// given delay so existing connections can finish and release fds.
    Backoff(Duration),
}

/// Pure accept-error policy: classifies errors and tracks exponential
/// backoff under fd exhaustion. Separated from the event loop so the
/// `EMFILE` path is unit-testable without actually exhausting fds.
#[derive(Debug)]
pub struct AcceptBackoff {
    delay: Duration,
    resume_at: Option<Instant>,
}

/// First backoff delay after an `EMFILE`/`ENFILE`.
const BACKOFF_INITIAL: Duration = Duration::from_millis(10);
/// Backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(1);

impl AcceptBackoff {
    /// Fresh policy: no backoff pending.
    pub fn new() -> AcceptBackoff {
        AcceptBackoff { delay: BACKOFF_INITIAL, resume_at: None }
    }

    /// Classifies an accept error, arming (and doubling) the backoff on
    /// fd exhaustion.
    pub fn on_error(&mut self, err: &std::io::Error, now: Instant) -> AcceptDecision {
        if err.kind() == std::io::ErrorKind::WouldBlock {
            return AcceptDecision::WaitForReadiness;
        }
        // EMFILE (24) / ENFILE (23): the process or system is out of fds.
        // Accepting again immediately would spin on the same error; the
        // pending connection stays in the backlog until we resume.
        if matches!(err.raw_os_error(), Some(24) | Some(23)) {
            let delay = self.delay;
            self.resume_at = Some(now + delay);
            self.delay = (delay * 2).min(BACKOFF_MAX);
            return AcceptDecision::Backoff(delay);
        }
        AcceptDecision::Retry
    }

    /// Resets after a successful accept.
    pub fn on_success(&mut self) {
        self.delay = BACKOFF_INITIAL;
        self.resume_at = None;
    }

    /// When accepting may resume, if currently backing off.
    pub fn resume_at(&self) -> Option<Instant> {
        self.resume_at
    }

    /// Whether a pending backoff has elapsed.
    pub fn ready_to_resume(&self, now: Instant) -> bool {
        self.resume_at.is_some_and(|at| now >= at)
    }
}

impl Default for AcceptBackoff {
    fn default() -> Self {
        AcceptBackoff::new()
    }
}

/// Connection-lifecycle knobs a shard needs (a subset of `ServerConfig`).
#[derive(Clone)]
pub(crate) struct ShardConfig {
    pub(crate) idle_timeout: Duration,
    pub(crate) max_requests_per_connection: usize,
    pub(crate) max_body_bytes: usize,
    pub(crate) drain_deadline: Duration,
}

/// Per-connection state owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    written: usize,
    served: usize,
    in_flight: bool,
    close_after_write: bool,
    peer_eof: bool,
    idle_deadline: Instant,
    timer_armed: bool,
    interest: Interest,
}

/// Upper bound on accepts drained per listener readiness event, so one
/// connect burst cannot starve existing connections of loop iterations.
const ACCEPT_BATCH: usize = 128;
/// Upper bound on 16 KiB reads per readiness event per connection.
const READ_BURSTS: usize = 16;
/// Poll timeout ceiling: bounds how stale the stop-flag check can get even
/// if a wake is lost.
const POLL_CAP: Duration = Duration::from_millis(25);

/// One reactor shard: an event loop over a private slab of connections.
pub(crate) struct Shard {
    poller: Box<dyn Poller>,
    slab: Slab<Conn>,
    wheel: TimerWheel,
    listener: Option<Arc<TcpListener>>,
    listener_registered: bool,
    backoff: AcceptBackoff,
    waker: Arc<Waker>,
    waker_rx: TcpStream,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    dispatch: Sender<Job>,
    stop: Arc<AtomicBool>,
    metrics: Option<Arc<ServerMetrics>>,
    config: ShardConfig,
    draining: bool,
    drain_until: Instant,
}

impl Shard {
    /// Builds a shard: fresh poller, waker pair, completion channel, and
    /// the shared listener registered for readiness.
    pub(crate) fn new(
        listener: Arc<TcpListener>,
        dispatch: Sender<Job>,
        stop: Arc<AtomicBool>,
        metrics: Option<Arc<ServerMetrics>>,
        config: ShardConfig,
        force_scan_poller: bool,
    ) -> std::io::Result<(Shard, Arc<Waker>)> {
        let mut poller = poller::new_poller(force_scan_poller);
        let (waker, waker_rx) = Waker::pair()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        poller.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READABLE)?;
        let (completions_tx, completions_rx) = crossbeam::channel::unbounded();
        let now = Instant::now();
        let shard = Shard {
            poller,
            slab: Slab::new(),
            wheel: TimerWheel::new(config.idle_timeout, now),
            listener: Some(listener),
            listener_registered: true,
            backoff: AcceptBackoff::new(),
            waker: Arc::clone(&waker),
            waker_rx,
            completions_tx,
            completions_rx,
            dispatch,
            stop,
            metrics,
            config,
            draining: false,
            drain_until: now,
        };
        Ok((shard, waker))
    }

    /// The shard event loop; returns once draining finishes.
    pub(crate) fn run(mut self) {
        let mut events = Vec::with_capacity(256);
        loop {
            let now = Instant::now();
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain(now);
            }
            if self.draining {
                if self.slab.is_empty() {
                    break;
                }
                if now >= self.drain_until {
                    self.force_close_all();
                    break;
                }
            }
            if !self.draining && self.listener.is_some() && !self.listener_registered {
                // EMFILE backoff elapsed: resume accepting.
                if self.backoff.ready_to_resume(now) {
                    self.resume_listener();
                }
            }
            let timeout = self.wheel.next_wakeup(now).min(POLL_CAP);
            events.clear();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A broken poller cannot make progress; treat as drain.
                self.force_close_all();
                break;
            }
            if let Some(m) = &self.metrics {
                m.reactor_ready_peak.set_max(events.len() as i64);
            }
            let now = Instant::now();
            for event in events.drain(..) {
                match event.token {
                    LISTENER_TOKEN => self.accept_burst(now),
                    WAKER_TOKEN => self.drain_waker(),
                    token => {
                        if event.readable {
                            self.on_readable(token, now);
                        }
                        if event.writable {
                            self.after_io(token, now);
                        }
                    }
                }
            }
            while let Ok(completion) = self.completions_rx.try_recv() {
                self.on_completion(completion, now);
            }
            let mut fired = Vec::new();
            self.wheel.expire(Instant::now(), &mut fired);
            if let Some(m) = &self.metrics {
                m.reactor_timer_entries.add(-(fired.len() as i64));
            }
            for token in fired {
                self.on_timer(token, Instant::now());
            }
        }
    }

    /// Drains the wake pipe and re-arms the waker. The clear happens
    /// before the caller drains completions, so a completion enqueued
    /// between the two always produces a fresh wake byte.
    fn drain_waker(&mut self) {
        let mut scratch = [0u8; 64];
        while matches!(self.waker_rx.read(&mut scratch), Ok(n) if n > 0) {}
        self.waker.clear();
    }

    fn accept_burst(&mut self, now: Instant) {
        if !self.listener_registered {
            return;
        }
        let Some(listener) = self.listener.clone() else { return };
        for _ in 0..ACCEPT_BATCH {
            match listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.on_success();
                    // Accepted sockets do NOT inherit the listener's
                    // nonblocking flag.
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(m) = &self.metrics {
                        m.accepted_total.inc();
                    }
                    let fd = stream.as_raw_fd();
                    let token = self.slab.insert(Conn {
                        stream,
                        parser: RequestParser::new(self.config.max_body_bytes),
                        out: Vec::new(),
                        written: 0,
                        served: 0,
                        in_flight: false,
                        close_after_write: false,
                        peer_eof: false,
                        idle_deadline: now,
                        timer_armed: false,
                        interest: Interest::READABLE,
                    });
                    if self.poller.register(fd, token, Interest::READABLE).is_err() {
                        self.slab.remove(token);
                        continue;
                    }
                    if let Some(m) = &self.metrics {
                        m.reactor_fds.inc();
                    }
                    self.touch_timer(token, now);
                    // The first request may already be on the wire.
                    self.on_readable(token, now);
                }
                Err(e) => match self.backoff.on_error(&e, now) {
                    AcceptDecision::Retry => continue,
                    AcceptDecision::WaitForReadiness => break,
                    AcceptDecision::Backoff(_) => {
                        self.suspend_listener();
                        break;
                    }
                },
            }
        }
    }

    /// Takes the listener out of the poller during EMFILE backoff.
    fn suspend_listener(&mut self) {
        if let Some(listener) = &self.listener {
            if self.listener_registered {
                let _ = self.poller.deregister(listener.as_raw_fd());
                self.listener_registered = false;
            }
        }
    }

    /// Puts the listener back after backoff and drains the backlog that
    /// piled up meanwhile.
    fn resume_listener(&mut self) {
        let Some(listener) = self.listener.clone() else { return };
        if self.poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE).is_ok() {
            self.listener_registered = true;
            self.backoff.on_success();
            self.accept_burst(Instant::now());
        }
    }

    fn on_readable(&mut self, token: u64, now: Instant) {
        let mut buf = [0u8; 16 << 10];
        let mut broken = false;
        {
            let Some(conn) = self.slab.get_mut(token) else { return };
            if conn.close_after_write || conn.in_flight {
                // Reads are muted in these states; a level-triggered
                // straggler event is ignored.
                return;
            }
            for _ in 0..READ_BURSTS {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        conn.parser.set_eof();
                        break;
                    }
                    Ok(n) => conn.parser.feed(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
        }
        if broken {
            self.close_conn(token);
            return;
        }
        self.touch_timer(token, now);
        self.try_advance(token, now);
    }

    /// Parses the next buffered request if the dispatch rules allow it
    /// (at most one in flight per connection — the next parse happens when
    /// its completion lands), then flushes.
    fn try_advance(&mut self, token: u64, now: Instant) {
        'advance: {
            let Some(conn) = self.slab.get_mut(token) else { return };
            if conn.in_flight || conn.close_after_write {
                break 'advance;
            }
            match conn.parser.poll() {
                Ok(None) => break 'advance,
                Ok(Some(request)) => {
                    conn.served += 1;
                    if conn.served > 1 {
                        if let Some(m) = &self.metrics {
                            m.keepalive_reuses_total.inc();
                        }
                    }
                    // Admission control: a request whose propagated
                    // deadline has already passed is refused before it
                    // ever queues — nobody is waiting for the answer.
                    if request.deadline_epoch_ms().is_some_and(|d| crate::overload::epoch_ms() >= d)
                    {
                        if let Some(m) = &self.metrics {
                            m.expired_admission_total.inc();
                        }
                        let response = Response::overloaded(
                            StatusCode::GATEWAY_TIMEOUT,
                            "deadline already expired",
                            1,
                        );
                        Self::queue_close_response(conn, self.metrics.as_deref(), response);
                        break 'advance;
                    }
                    let close = self.stop.load(Ordering::SeqCst)
                        || conn.served >= self.config.max_requests_per_connection
                        || request.wants_close();
                    let job = Job {
                        request,
                        token,
                        close,
                        reply: self.completions_tx.clone(),
                        waker: Arc::clone(&self.waker),
                    };
                    match self.dispatch.try_send(job) {
                        Ok(()) => {
                            conn.in_flight = true;
                            if let Some(m) = &self.metrics {
                                m.accept_queue_depth.inc();
                            }
                            break 'advance;
                        }
                        Err(TrySendError::Full(_)) => {
                            // Same load-shedding contract as the old
                            // accept-queue: immediate 503 + retry-after,
                            // then close.
                            if let Some(m) = &self.metrics {
                                m.shed_total.inc();
                            }
                            let response = Response::overloaded(
                                StatusCode::SERVICE_UNAVAILABLE,
                                "server overloaded, retry later",
                                1,
                            );
                            Self::queue_close_response(conn, self.metrics.as_deref(), response);
                            break 'advance;
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            conn.close_after_write = true;
                            break 'advance;
                        }
                    }
                }
                Err(HttpParseError::ConnectionClosed) => {
                    conn.close_after_write = true;
                    break 'advance;
                }
                Err(HttpParseError::BodyTooLarge(_)) => {
                    if let Some(m) = &self.metrics {
                        m.body_too_large_total.inc();
                    }
                    let response = Response::json_with_status(
                        StatusCode::PAYLOAD_TOO_LARGE,
                        &serde_json::json!({ "error": "body too large" }),
                    );
                    Self::queue_close_response(conn, self.metrics.as_deref(), response);
                    break 'advance;
                }
                Err(HttpParseError::HeadersTooLarge(_)) => {
                    if let Some(m) = &self.metrics {
                        m.headers_too_large_total.inc();
                    }
                    let response = Response::json_with_status(
                        StatusCode::HEADERS_TOO_LARGE,
                        &serde_json::json!({ "error": "header block too large" }),
                    );
                    Self::queue_close_response(conn, self.metrics.as_deref(), response);
                    break 'advance;
                }
                Err(_) => {
                    if let Some(m) = &self.metrics {
                        m.parse_errors_total.inc();
                    }
                    let response = Response::bad_request("malformed request");
                    Self::queue_close_response(conn, self.metrics.as_deref(), response);
                    break 'advance;
                }
            }
        }
        self.after_io(token, now);
    }

    /// Serializes a shard-generated (error/shed) response and marks the
    /// connection to close once it is flushed.
    fn queue_close_response(
        conn: &mut Conn,
        metrics: Option<&ServerMetrics>,
        mut response: Response,
    ) {
        response.set_connection(true);
        if let Some(m) = metrics {
            m.record_response(response.status.0);
        }
        let _ = response.write_to(&mut conn.out);
        conn.close_after_write = true;
    }

    /// Flushes pending output, closes if finished-and-closing (or the peer
    /// is fully gone), and reconciles poller interest with the new state.
    fn after_io(&mut self, token: u64, _now: Instant) {
        let mut do_close = false;
        {
            let Some(conn) = self.slab.get_mut(token) else { return };
            while conn.written < conn.out.len() {
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => {
                        do_close = true;
                        break;
                    }
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        do_close = true;
                        break;
                    }
                }
            }
            if conn.written >= conn.out.len() {
                conn.out.clear();
                conn.written = 0;
            }
            let flushed = conn.out.is_empty();
            if flushed && conn.close_after_write {
                do_close = true;
            }
            // Peer half-closed and nothing left to do: mirror the blocking
            // server, which treated peek() == 0 between requests as Closed.
            if flushed
                && conn.peer_eof
                && !conn.in_flight
                && !conn.parser.mid_message()
                && conn.parser.buffered() == 0
            {
                do_close = true;
            }
            if !do_close {
                let desired = Interest {
                    readable: !conn.in_flight && !conn.close_after_write,
                    writable: !conn.out.is_empty(),
                };
                if desired != conn.interest {
                    let fd = conn.stream.as_raw_fd();
                    conn.interest = desired;
                    let _ = self.poller.reregister(fd, token, desired);
                }
            }
        }
        if do_close {
            self.close_conn(token);
        }
    }

    fn on_completion(&mut self, completion: Completion, now: Instant) {
        let draining = self.draining;
        {
            let Some(conn) = self.slab.get_mut(completion.token) else {
                // The connection died (force-closed) while its request was
                // on the worker pool: drop the response.
                return;
            };
            conn.in_flight = false;
            let _ = completion.response.write_to(&mut conn.out);
            if completion.close || draining {
                conn.close_after_write = true;
            }
        }
        self.touch_timer(completion.token, now);
        // Flush this response and, if the client pipelined, dispatch the
        // next buffered request.
        self.try_advance(completion.token, now);
    }

    /// Pushes the connection's idle deadline out and makes sure exactly
    /// one wheel entry is armed. Cancellation is lazy: stale entries fire,
    /// notice the newer deadline, and re-arm (see [`timer`]).
    fn touch_timer(&mut self, token: u64, now: Instant) {
        let mut arm_at = None;
        if let Some(conn) = self.slab.get_mut(token) {
            conn.idle_deadline = now + self.config.idle_timeout;
            if !conn.timer_armed {
                conn.timer_armed = true;
                arm_at = Some(conn.idle_deadline);
            }
        }
        if let Some(deadline) = arm_at {
            self.wheel.schedule(token, deadline);
            if let Some(m) = &self.metrics {
                m.reactor_timer_entries.inc();
            }
        }
    }

    /// A wheel entry fired: idle-close the connection, or re-arm if it was
    /// active since the entry was scheduled.
    fn on_timer(&mut self, token: u64, now: Instant) {
        let mut rearm_at = None;
        let mut expired = false;
        {
            let Some(conn) = self.slab.get_mut(token) else { return };
            conn.timer_armed = false;
            if conn.idle_deadline > now {
                // Activity moved the deadline since this entry was armed.
                rearm_at = Some(conn.idle_deadline);
            } else if conn.in_flight || !conn.out.is_empty() {
                // Never idle-kill a connection with work in progress — a
                // response mid-write gets a full fresh idle period.
                rearm_at = Some(now + self.config.idle_timeout);
            } else {
                expired = true;
            }
            if rearm_at.is_some() {
                conn.timer_armed = true;
            }
        }
        if let Some(deadline) = rearm_at {
            self.wheel.schedule(token, deadline);
            if let Some(m) = &self.metrics {
                m.reactor_timer_entries.inc();
            }
            return;
        }
        if !expired {
            return;
        }
        if let Some(m) = &self.metrics {
            m.timeout_errors_total.inc();
        }
        let Some(conn) = self.slab.get_mut(token) else { return };
        if conn.served == 0 {
            // The client connected but never completed a request: tell it
            // why before hanging up.
            let response = Response::json_with_status(
                StatusCode::REQUEST_TIMEOUT,
                &serde_json::json!({ "error": "request timed out" }),
            );
            Self::queue_close_response(conn, self.metrics.as_deref(), response);
        } else {
            // An idle keep-alive connection: close silently, as every
            // HTTP server does.
            conn.close_after_write = true;
        }
        self.after_io(token, now);
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.slab.remove(token) else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if let Some(m) = &self.metrics {
            m.connections_total.inc();
            m.reactor_fds.dec();
        }
        // Dropping the stream closes the socket.
    }

    /// Stops accepting and closes idle connections; in-flight requests and
    /// unflushed responses get until the drain deadline.
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_until = now + self.config.drain_deadline;
        self.suspend_listener();
        // Drop the listener Arc: once every shard has, the socket closes
        // and new connects are refused.
        self.listener = None;
        let mut to_close = Vec::new();
        for token in self.slab.tokens() {
            let Some(conn) = self.slab.get_mut(token) else { continue };
            if conn.in_flight || !conn.out.is_empty() {
                conn.close_after_write = true;
            } else {
                to_close.push(token);
            }
        }
        for token in to_close {
            self.close_conn(token);
        }
    }

    fn force_close_all(&mut self) {
        for token in self.slab.tokens() {
            self.close_conn(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os_err(code: i32) -> std::io::Error {
        std::io::Error::from_raw_os_error(code)
    }

    #[test]
    fn backoff_classifies_accept_errors() {
        let mut policy = AcceptBackoff::new();
        let now = Instant::now();
        assert_eq!(
            policy.on_error(&std::io::Error::from(std::io::ErrorKind::WouldBlock), now),
            AcceptDecision::WaitForReadiness
        );
        // ECONNABORTED (103 on Linux): the one connection is gone, keep
        // accepting the rest of the burst.
        assert_eq!(policy.on_error(&os_err(103), now), AcceptDecision::Retry);
        assert!(policy.resume_at().is_none());
    }

    #[test]
    fn emfile_backs_off_exponentially_and_resets_on_success() {
        let mut policy = AcceptBackoff::new();
        let now = Instant::now();
        let AcceptDecision::Backoff(first) = policy.on_error(&os_err(24), now) else {
            panic!("EMFILE must back off");
        };
        let AcceptDecision::Backoff(second) = policy.on_error(&os_err(24), now) else {
            panic!("EMFILE must back off");
        };
        assert_eq!(second, first * 2, "delay doubles under sustained exhaustion");
        assert!(policy.resume_at().is_some());
        assert!(!policy.ready_to_resume(now), "must wait out the delay");
        assert!(policy.ready_to_resume(now + second + Duration::from_millis(1)));

        policy.on_success();
        assert!(policy.resume_at().is_none());
        let AcceptDecision::Backoff(after_reset) = policy.on_error(&os_err(24), now) else {
            panic!("EMFILE must back off");
        };
        assert_eq!(after_reset, first, "success resets the delay ladder");
    }

    #[test]
    fn enfile_is_treated_like_emfile() {
        let mut policy = AcceptBackoff::new();
        assert!(matches!(policy.on_error(&os_err(23), Instant::now()), AcceptDecision::Backoff(_)));
    }

    #[test]
    fn backoff_delay_is_capped() {
        let mut policy = AcceptBackoff::new();
        let now = Instant::now();
        let mut last = Duration::ZERO;
        for _ in 0..20 {
            if let AcceptDecision::Backoff(d) = policy.on_error(&os_err(24), now) {
                last = d;
            }
        }
        assert_eq!(last, BACKOFF_MAX);
    }

    #[test]
    fn waker_coalesces_and_clears() {
        let (waker, mut rx) = Waker::pair().unwrap();
        waker.wake();
        waker.wake();
        waker.wake();
        std::thread::sleep(Duration::from_millis(20));
        let mut buf = [0u8; 16];
        let n = rx.read(&mut buf).unwrap();
        assert_eq!(n, 1, "coalesced wakes write a single byte");
        waker.clear();
        waker.wake();
        std::thread::sleep(Duration::from_millis(20));
        let n = rx.read(&mut buf).unwrap();
        assert_eq!(n, 1, "after clear the next wake writes again");
    }
}
