//! A small blocking HTTP client for the extension simulator and tests.
//!
//! Two shapes: the free functions ([`get`], [`post_json`], [`request`])
//! open one `connection: close` socket per call, while [`Session`] keeps a
//! single keep-alive socket across requests, reconnecting transparently
//! when the server has closed it (idle timeout, request cap, drain) and
//! retrying fresh-connection failures under the client discipline of
//! DESIGN.md §15: full-jitter backoff, a token-bucket retry budget, a
//! per-host circuit breaker, propagated deadlines, and a single hedged
//! re-issue for slow idempotent GETs.
//!
//! The socket layer is pluggable via [`Transport`]/[`Wire`], so a test
//! harness can interpose a deterministic fault injector (torn writes,
//! mid-body resets, refused connects) without touching the retry logic.

use crate::http::{HttpParseError, Method, Request, Response};
use crate::overload::{
    epoch_ms, BreakerState, CircuitBreaker, FullJitterBackoff, RetryBudget, DEADLINE_HEADER,
};
use kscope_telemetry::{Counter, Gauge, Registry};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Largest response body the client will allocate for. An untrusted
/// `content-length` must not drive an unbounded `vec![0; len]`.
pub const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// Error performing a client request.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or transmit.
    Io(std::io::Error),
    /// The response could not be parsed.
    Parse(HttpParseError),
    /// The propagated deadline had already passed before the request was
    /// sent — working for it would only waste server capacity.
    DeadlineExceeded,
    /// The per-host circuit breaker is open after consecutive transport
    /// failures; the request was rejected locally without touching the
    /// network.
    BreakerOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Parse(e) => write!(f, "client parse error: {e}"),
            ClientError::DeadlineExceeded => write!(f, "client deadline exceeded"),
            ClientError::BreakerOpen => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A bidirectional byte stream a [`Session`] can speak HTTP over.
///
/// [`TcpStream`] is the production implementation; fault-injecting test
/// transports wrap one and corrupt traffic deterministically.
pub trait Wire: Read + Write + Send {
    /// Adjusts the read timeout for subsequent reads (used by GET
    /// hedging to shorten the wait to the observed p99).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error, if any.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Wire for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

/// Connection factory for [`Session`]: how to reach `addr`.
pub trait Transport: Send + Sync {
    /// Opens a new wire to `addr`, with `timeout` applied to the connect
    /// and to subsequent reads/writes.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the connection cannot be established.
    fn connect(&self, addr: SocketAddr, timeout: Duration) -> std::io::Result<Box<dyn Wire>>;
}

/// The default [`Transport`]: a plain `TcpStream` with connect, read and
/// write timeouts.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    fn connect(&self, addr: SocketAddr, timeout: Duration) -> std::io::Result<Box<dyn Wire>> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Box::new(stream))
    }
}

/// Sends `req` to `addr` on a fresh connection and reads the response
/// (one request per connection; `connection: close` is sent explicitly).
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn request(addr: SocketAddr, mut req: Request) -> Result<Response, ClientError> {
    req.headers.entry("connection".into()).or_insert_with(|| "close".into());
    let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT).map_err(ClientError::Io)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).map_err(ClientError::Io)?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT)).map_err(ClientError::Io)?;
    let mut writer = stream.try_clone().map_err(ClientError::Io)?;
    req.write_to(&mut writer).map_err(ClientError::Io)?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader, MAX_RESPONSE_BYTES).map_err(ClientError::Parse)
}

/// GET a path.
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, ClientError> {
    request(addr, Request::new(Method::Get, path))
}

/// POST a JSON body to a path.
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    body: &serde_json::Value,
) -> Result<Response, ClientError> {
    let mut req = Request::new(Method::Post, path).with_body(body.to_string().into_bytes());
    req.headers.insert("content-type".into(), "application/json".into());
    request(addr, req)
}

/// Tuning for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Connect/read/write timeout per socket operation.
    pub timeout: Duration,
    /// Retries after a failure on a *fresh* connection (a stale keep-alive
    /// socket is renewed without consuming the retry budget).
    pub retries: u32,
    /// Base backoff sleep; attempt `n` sleeps a uniformly random duration
    /// in `[0, min(backoff_cap, backoff * 2^n)]` (full jitter).
    pub backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the jitter RNG — fixed per session so test schedules
    /// replay deterministically.
    pub jitter_seed: u64,
    /// Token-bucket capacity for the retry budget: the most retries the
    /// session can have "banked" at once.
    pub retry_budget_cap: f64,
    /// Tokens deposited per successful request; 0.1 keeps steady-state
    /// retries at or below 10% of successes.
    pub retry_budget_ratio: f64,
    /// Consecutive transport failures before the circuit breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects locally before admitting one
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// Whether idempotent GETs may hedge: after enough latency samples,
    /// shorten the read timeout to the observed p99 and re-issue once on
    /// timeout.
    pub hedge_gets: bool,
    /// Largest response body the session will allocate for.
    pub max_response_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            timeout: CLIENT_TIMEOUT,
            retries: 2,
            backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x6b73_636f_7065,
            retry_budget_cap: 10.0,
            retry_budget_ratio: 0.1,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
            hedge_gets: true,
            max_response_bytes: MAX_RESPONSE_BYTES,
        }
    }
}

/// Counters a [`Session`] keeps about its connection reuse and overload
/// discipline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that rode an already-used keep-alive socket — TCP
    /// handshakes saved versus one-connection-per-request.
    pub reuses: u64,
    /// Sockets opened.
    pub connects: u64,
    /// Stale keep-alive sockets renewed after the server closed them.
    pub reconnects: u64,
    /// Fresh-connection failures retried with backoff.
    pub retries: u64,
    /// Retries refused because the token-bucket retry budget was empty.
    pub budget_denied: u64,
    /// Requests rejected locally because the circuit breaker was open.
    pub breaker_rejections: u64,
    /// Idempotent GETs re-issued after the shortened p99 read timeout.
    pub hedges: u64,
    /// Requests rejected locally because the propagated deadline had
    /// already passed.
    pub deadline_rejections: u64,
}

/// Telemetry handles published when [`Session::set_telemetry`] is called.
struct ClientMetrics {
    attempts_total: Counter,
    retries_total: Counter,
    budget_spent_total: Counter,
    budget_denied_total: Counter,
    budget_tokens: Gauge,
    breaker_state: Gauge,
    breaker_open_total: Counter,
    hedges_total: Counter,
    deadline_expired_total: Counter,
}

impl ClientMetrics {
    fn register(registry: &Arc<Registry>) -> Self {
        Self {
            attempts_total: registry.counter("client.attempts_total"),
            retries_total: registry.counter("client.retries_total"),
            budget_spent_total: registry.counter("client.retry_budget_spent_total"),
            budget_denied_total: registry.counter("client.retry_budget_denied_total"),
            budget_tokens: registry.gauge("client.retry_budget_tokens"),
            breaker_state: registry.gauge("client.breaker_state"),
            breaker_open_total: registry.counter("client.breaker_open_total"),
            hedges_total: registry.counter("client.hedges_total"),
            deadline_expired_total: registry.counter("client.deadline_expired_total"),
        }
    }
}

struct Conn {
    stream: BufReader<Box<dyn Wire>>,
    /// Requests already served on this socket.
    served: u64,
}

/// How many latency samples the hedger keeps (and needs before arming).
const LATENCY_WINDOW: usize = 512;
const HEDGE_MIN_SAMPLES: usize = 32;
const HEDGE_FLOOR: Duration = Duration::from_millis(25);

/// A connection-reusing HTTP client: one keep-alive socket across
/// requests, with reconnect-on-stale, full-jitter retry/backoff under a
/// token-bucket budget, a per-host circuit breaker, deadline propagation,
/// and p99 GET hedging.
pub struct Session {
    addr: SocketAddr,
    config: SessionConfig,
    transport: Arc<dyn Transport>,
    conn: Option<Conn>,
    stats: SessionStats,
    backoff: FullJitterBackoff,
    budget: RetryBudget,
    breaker: CircuitBreaker,
    breaker_opens_seen: u64,
    /// Absolute wall-clock deadline stamped onto outgoing requests.
    deadline_ms: Option<u64>,
    /// `Retry-After` from the most recent 503/504, consumed by the next
    /// backoff computation.
    retry_after_hint: Option<Duration>,
    /// Recent request latencies (microseconds), ring-buffered.
    latencies_us: Vec<u64>,
    metrics: Option<ClientMetrics>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Session({}, connected: {}, breaker: {:?})",
            self.addr,
            self.conn.is_some(),
            self.breaker.state()
        )
    }
}

impl Session {
    /// A session for `addr` with default tuning. Connects lazily on the
    /// first request.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, SessionConfig::default())
    }

    /// A session with explicit tuning.
    pub fn with_config(addr: SocketAddr, config: SessionConfig) -> Self {
        Self::with_transport(addr, config, Arc::new(TcpTransport))
    }

    /// A session with explicit tuning and a custom socket layer — the
    /// hook the chaos harness uses to interpose deterministic faults.
    pub fn with_transport(
        addr: SocketAddr,
        config: SessionConfig,
        transport: Arc<dyn Transport>,
    ) -> Self {
        let backoff = FullJitterBackoff::new(config.backoff_cap, config.jitter_seed);
        let budget = RetryBudget::new(config.retry_budget_cap, config.retry_budget_ratio);
        let breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        Self {
            addr,
            config,
            transport,
            conn: None,
            stats: SessionStats::default(),
            backoff,
            budget,
            breaker,
            breaker_opens_seen: 0,
            deadline_ms: None,
            retry_after_hint: None,
            latencies_us: Vec::new(),
            metrics: None,
        }
    }

    /// Publishes the session's overload counters/gauges on `registry`
    /// under the `client.*` namespace.
    pub fn set_telemetry(&mut self, registry: &Arc<Registry>) {
        self.metrics = Some(ClientMetrics::register(registry));
        self.publish_gauges();
    }

    /// Sets (or clears) the absolute epoch-milliseconds deadline stamped
    /// onto every outgoing request as `x-kscope-deadline-ms`. Requests
    /// issued after the deadline fail locally with
    /// [`ClientError::DeadlineExceeded`].
    pub fn set_deadline_ms(&mut self, deadline: Option<u64>) {
        self.deadline_ms = deadline;
    }

    /// Connection-reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Retry-budget tokens currently banked.
    pub fn retry_budget_tokens(&self) -> f64 {
        self.budget.tokens()
    }

    /// Whether a socket is currently open.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// The next full-jitter backoff sleep for `attempt`, honoring (and
    /// consuming) any `Retry-After` hint captured from a 503/504
    /// response. Shared by [`Session::request`] and the browser
    /// extension's upload retry loop so there is exactly one backoff
    /// policy.
    pub fn next_backoff(
        &mut self,
        attempt: u32,
        base: Duration,
        hint: Option<Duration>,
    ) -> Duration {
        let hint = hint.or_else(|| self.retry_after_hint.take());
        self.backoff.delay(base, attempt, hint)
    }

    /// Tries to withdraw one retry token. `false` means the budget is
    /// exhausted — retries would exceed ~10% of successes — and the
    /// caller must fail fast instead of retrying.
    pub fn acquire_retry_token(&mut self) -> bool {
        if self.budget.try_spend() {
            if let Some(m) = &self.metrics {
                m.budget_spent_total.inc();
            }
            self.publish_gauges();
            true
        } else {
            self.stats.budget_denied += 1;
            if let Some(m) = &self.metrics {
                m.budget_denied_total.inc();
            }
            false
        }
    }

    /// Sends `req` over the kept connection, reconnecting and retrying as
    /// configured. The request is sent with `connection: keep-alive`
    /// unless the caller set the header explicitly, and carries the
    /// session deadline as `x-kscope-deadline-ms` when one is set.
    ///
    /// # Errors
    ///
    /// Returns the last [`ClientError`] once retries or the retry budget
    /// are spent, [`ClientError::DeadlineExceeded`] when the deadline has
    /// already passed, or [`ClientError::BreakerOpen`] when the circuit
    /// breaker rejects the request locally.
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        if let Some(deadline) = self.deadline_ms {
            if epoch_ms() >= deadline {
                self.stats.deadline_rejections += 1;
                if let Some(m) = &self.metrics {
                    m.deadline_expired_total.inc();
                }
                return Err(ClientError::DeadlineExceeded);
            }
            req.headers.entry(DEADLINE_HEADER.into()).or_insert_with(|| deadline.to_string());
        }
        if !self.breaker.admit(Instant::now()) {
            self.stats.breaker_rejections += 1;
            self.publish_gauges();
            return Err(ClientError::BreakerOpen);
        }
        req.headers.entry("connection".into()).or_insert_with(|| "keep-alive".into());

        // Hedge arming: idempotent GETs with enough history shorten the
        // first read to the observed p99 and get one free re-issue.
        let mut hedge_timeout = self.hedge_timeout(&req);
        let mut attempt = 0u32;
        loop {
            let reused = self.conn.as_ref().is_some_and(|c| c.served > 0);
            if let Some(m) = &self.metrics {
                m.attempts_total.inc();
            }
            let started = Instant::now();
            match self.try_once(&req, hedge_timeout) {
                Ok(response) => {
                    self.stats.requests += 1;
                    if reused {
                        self.stats.reuses += 1;
                    }
                    self.record_latency(started.elapsed());
                    self.budget.on_success();
                    self.breaker.on_success();
                    self.publish_gauges();
                    if matches!(response.status.0, 503 | 504) {
                        self.retry_after_hint = response.retry_after();
                    }
                    if response.is_close() {
                        self.conn = None;
                    }
                    return Ok(response);
                }
                Err(err) => {
                    self.conn = None;
                    if reused {
                        // The server closed a keep-alive socket between
                        // requests (idle timeout, request cap, drain).
                        // Renewing it is routine, not a failure: retry
                        // immediately without consuming the budget. The
                        // next attempt runs on a fresh socket, so this
                        // cannot loop.
                        self.stats.reconnects += 1;
                        continue;
                    }
                    if hedge_timeout.take().is_some() && is_timeout(&err) {
                        // The p99 read window elapsed on a fresh socket:
                        // hedge once, immediately, at the full timeout.
                        // Not charged to the retry budget — the original
                        // request may still complete server-side and the
                        // re-issue is idempotent.
                        self.stats.hedges += 1;
                        if let Some(m) = &self.metrics {
                            m.hedges_total.inc();
                        }
                        continue;
                    }
                    self.breaker.on_failure(Instant::now());
                    if self.breaker.opened_total() > self.breaker_opens_seen {
                        self.breaker_opens_seen = self.breaker.opened_total();
                        if let Some(m) = &self.metrics {
                            m.breaker_open_total.inc();
                        }
                    }
                    self.publish_gauges();
                    if attempt >= self.config.retries {
                        return Err(err);
                    }
                    if !self.acquire_retry_token() {
                        return Err(err);
                    }
                    let delay = self.next_backoff(attempt, self.config.backoff, None);
                    std::thread::sleep(delay);
                    attempt += 1;
                    self.stats.retries += 1;
                    if let Some(m) = &self.metrics {
                        m.retries_total.inc();
                    }
                }
            }
        }
    }

    /// GET a path over the kept connection.
    ///
    /// # Errors
    ///
    /// Returns the last [`ClientError`] once the retry budget is spent.
    pub fn get(&mut self, path: &str) -> Result<Response, ClientError> {
        self.request(Request::new(Method::Get, path))
    }

    /// POST a JSON body over the kept connection.
    ///
    /// # Errors
    ///
    /// Returns the last [`ClientError`] once the retry budget is spent.
    pub fn post_json(
        &mut self,
        path: &str,
        body: &serde_json::Value,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new(Method::Post, path).with_body(body.to_string().into_bytes());
        req.headers.insert("content-type".into(), "application/json".into());
        self.request(req)
    }

    /// Closes the kept socket (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn publish_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.budget_tokens.set(self.budget.tokens() as i64);
            m.breaker_state.set(self.breaker.state().as_gauge());
        }
    }

    fn record_latency(&mut self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if self.latencies_us.len() >= LATENCY_WINDOW {
            self.latencies_us.remove(0);
        }
        self.latencies_us.push(us);
    }

    /// The shortened first-read timeout for a hedgeable request, or
    /// `None` when hedging does not apply.
    fn hedge_timeout(&self, req: &Request) -> Option<Duration> {
        if !self.config.hedge_gets
            || req.method != Method::Get
            || self.latencies_us.len() < HEDGE_MIN_SAMPLES
        {
            return None;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() * 99 / 100).min(sorted.len() - 1);
        let p99 = Duration::from_micros(sorted[idx]);
        Some(p99.max(HEDGE_FLOOR).min(self.config.timeout))
    }

    fn try_once(
        &mut self,
        req: &Request,
        read_timeout: Option<Duration>,
    ) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            let wire =
                self.transport.connect(self.addr, self.config.timeout).map_err(ClientError::Io)?;
            self.conn = Some(Conn { stream: BufReader::new(wire), served: 0 });
            self.stats.connects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let effective = read_timeout.unwrap_or(self.config.timeout);
        conn.stream.get_ref().set_read_timeout(Some(effective)).map_err(ClientError::Io)?;
        req.write_to(conn.stream.get_mut()).map_err(ClientError::Io)?;
        let response = Response::read_from(&mut conn.stream, self.config.max_response_bytes)
            .map_err(ClientError::Parse)?;
        conn.served += 1;
        Ok(response)
    }
}

/// Whether an error is a socket read timeout (possibly wrapped in a
/// parse error by `Response::read_from`).
fn is_timeout(err: &ClientError) -> bool {
    let io_err = match err {
        ClientError::Io(e) => Some(e),
        ClientError::Parse(HttpParseError::Io(e)) => Some(e),
        _ => None,
    };
    io_err.is_some_and(|e| {
        matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
    })
}
