//! A small blocking HTTP client for the extension simulator and tests.

use crate::http::{HttpParseError, Method, Request, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Error performing a client request.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or transmit.
    Io(std::io::Error),
    /// The response could not be parsed.
    Parse(HttpParseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Parse(e) => write!(f, "client parse error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Sends `req` to `addr` and reads the response (one request per
/// connection; the server speaks `connection: close`).
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn request(addr: SocketAddr, req: Request) -> Result<Response, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT).map_err(ClientError::Io)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).map_err(ClientError::Io)?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT)).map_err(ClientError::Io)?;
    let mut writer = stream.try_clone().map_err(ClientError::Io)?;
    req.write_to(&mut writer).map_err(ClientError::Io)?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader).map_err(ClientError::Parse)
}

/// GET a path.
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, ClientError> {
    request(addr, Request::new(Method::Get, path))
}

/// POST a JSON body to a path.
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    body: &serde_json::Value,
) -> Result<Response, ClientError> {
    let mut req = Request::new(Method::Post, path).with_body(body.to_string().into_bytes());
    req.headers.insert("content-type".into(), "application/json".into());
    request(addr, req)
}
