//! A small blocking HTTP client for the extension simulator and tests.
//!
//! Two shapes: the free functions ([`get`], [`post_json`], [`request`])
//! open one `connection: close` socket per call, while [`Session`] keeps a
//! single keep-alive socket across requests, reconnecting transparently
//! when the server has closed it (idle timeout, request cap, drain) and
//! retrying fresh-connection failures with bounded exponential backoff.

use crate::http::{HttpParseError, Method, Request, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Largest response body the client will allocate for. An untrusted
/// `content-length` must not drive an unbounded `vec![0; len]`.
pub const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// Error performing a client request.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or transmit.
    Io(std::io::Error),
    /// The response could not be parsed.
    Parse(HttpParseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Parse(e) => write!(f, "client parse error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Sends `req` to `addr` on a fresh connection and reads the response
/// (one request per connection; `connection: close` is sent explicitly).
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn request(addr: SocketAddr, mut req: Request) -> Result<Response, ClientError> {
    req.headers.entry("connection".into()).or_insert_with(|| "close".into());
    let stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT).map_err(ClientError::Io)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT)).map_err(ClientError::Io)?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT)).map_err(ClientError::Io)?;
    let mut writer = stream.try_clone().map_err(ClientError::Io)?;
    req.write_to(&mut writer).map_err(ClientError::Io)?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader, MAX_RESPONSE_BYTES).map_err(ClientError::Parse)
}

/// GET a path.
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, ClientError> {
    request(addr, Request::new(Method::Get, path))
}

/// POST a JSON body to a path.
///
/// # Errors
///
/// Returns [`ClientError`] on connection or parse failures.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    body: &serde_json::Value,
) -> Result<Response, ClientError> {
    let mut req = Request::new(Method::Post, path).with_body(body.to_string().into_bytes());
    req.headers.insert("content-type".into(), "application/json".into());
    request(addr, req)
}

/// Tuning for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Connect/read/write timeout per socket operation.
    pub timeout: Duration,
    /// Retries after a failure on a *fresh* connection (a stale keep-alive
    /// socket is renewed without consuming the retry budget).
    pub retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff: Duration,
    /// Largest response body the session will allocate for.
    pub max_response_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            timeout: CLIENT_TIMEOUT,
            retries: 2,
            backoff: Duration::from_millis(25),
            max_response_bytes: MAX_RESPONSE_BYTES,
        }
    }
}

/// Counters a [`Session`] keeps about its connection reuse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that rode an already-used keep-alive socket — TCP
    /// handshakes saved versus one-connection-per-request.
    pub reuses: u64,
    /// Sockets opened.
    pub connects: u64,
    /// Stale keep-alive sockets renewed after the server closed them.
    pub reconnects: u64,
    /// Fresh-connection failures retried with backoff.
    pub retries: u64,
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Requests already served on this socket.
    served: u64,
}

/// A connection-reusing HTTP client: one keep-alive socket across
/// requests, with reconnect-on-stale and bounded retry/backoff.
pub struct Session {
    addr: SocketAddr,
    config: SessionConfig,
    conn: Option<Conn>,
    stats: SessionStats,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Session({}, connected: {})", self.addr, self.conn.is_some())
    }
}

impl Session {
    /// A session for `addr` with default tuning. Connects lazily on the
    /// first request.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, SessionConfig::default())
    }

    /// A session with explicit tuning.
    pub fn with_config(addr: SocketAddr, config: SessionConfig) -> Self {
        Self { addr, config, conn: None, stats: SessionStats::default() }
    }

    /// Connection-reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Whether a socket is currently open.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Sends `req` over the kept connection, reconnecting and retrying as
    /// configured. The request is sent with `connection: keep-alive`
    /// unless the caller set the header explicitly.
    ///
    /// # Errors
    ///
    /// Returns the last [`ClientError`] once the retry budget is spent.
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        req.headers.entry("connection".into()).or_insert_with(|| "keep-alive".into());
        let mut attempt = 0u32;
        loop {
            let reused = self.conn.as_ref().is_some_and(|c| c.served > 0);
            match self.try_once(&req) {
                Ok(response) => {
                    self.stats.requests += 1;
                    if reused {
                        self.stats.reuses += 1;
                    }
                    if response.is_close() {
                        self.conn = None;
                    }
                    return Ok(response);
                }
                Err(err) => {
                    self.conn = None;
                    if reused {
                        // The server closed a keep-alive socket between
                        // requests (idle timeout, request cap, drain).
                        // Renewing it is routine, not a failure: retry
                        // immediately without consuming the budget. The
                        // next attempt runs on a fresh socket, so this
                        // cannot loop.
                        self.stats.reconnects += 1;
                        continue;
                    }
                    if attempt >= self.config.retries {
                        return Err(err);
                    }
                    std::thread::sleep(self.config.backoff * 2u32.saturating_pow(attempt));
                    attempt += 1;
                    self.stats.retries += 1;
                }
            }
        }
    }

    /// GET a path over the kept connection.
    ///
    /// # Errors
    ///
    /// Returns the last [`ClientError`] once the retry budget is spent.
    pub fn get(&mut self, path: &str) -> Result<Response, ClientError> {
        self.request(Request::new(Method::Get, path))
    }

    /// POST a JSON body over the kept connection.
    ///
    /// # Errors
    ///
    /// Returns the last [`ClientError`] once the retry budget is spent.
    pub fn post_json(
        &mut self,
        path: &str,
        body: &serde_json::Value,
    ) -> Result<Response, ClientError> {
        let mut req = Request::new(Method::Post, path).with_body(body.to_string().into_bytes());
        req.headers.insert("content-type".into(), "application/json".into());
        self.request(req)
    }

    /// Closes the kept socket (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn try_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.timeout)
                .map_err(ClientError::Io)?;
            stream.set_read_timeout(Some(self.config.timeout)).map_err(ClientError::Io)?;
            stream.set_write_timeout(Some(self.config.timeout)).map_err(ClientError::Io)?;
            let writer = stream.try_clone().map_err(ClientError::Io)?;
            self.conn = Some(Conn { writer, reader: BufReader::new(stream), served: 0 });
            self.stats.connects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        req.write_to(&mut conn.writer).map_err(ClientError::Io)?;
        let response = Response::read_from(&mut conn.reader, self.config.max_response_bytes)
            .map_err(ClientError::Parse)?;
        conn.served += 1;
        Ok(response)
    }
}
