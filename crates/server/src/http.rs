//! HTTP/1.1 message types, parsing, and serialization.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Request methods the core server supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
    /// HTTP PUT.
    Put,
    /// HTTP DELETE.
    Delete,
}

impl Method {
    /// Parses a method token.
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes the API uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200.
    pub const OK: StatusCode = StatusCode(200);
    /// 201.
    pub const CREATED: StatusCode = StatusCode(201);
    /// 400.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 500.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);

    /// Standard reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request for client use.
    pub fn new(method: Method, path: &str) -> Self {
        let (path, query) = split_query(path);
        Self { method, path, query, headers: BTreeMap::new(), body: Vec::new() }
    }

    /// Sets the body (client side).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// First query value by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors for malformed bodies.
    pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reads one request from a stream.
    ///
    /// # Errors
    ///
    /// Returns [`HttpParseError`] on malformed framing, unknown methods, or
    /// bodies above `max_body` bytes.
    pub fn read_from<R: Read>(
        reader: &mut BufReader<R>,
        max_body: usize,
    ) -> Result<Self, HttpParseError> {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(HttpParseError::Io)?;
        if line.is_empty() {
            return Err(HttpParseError::ConnectionClosed);
        }
        let mut parts = line.split_whitespace();
        let method =
            parts.next().and_then(Method::from_token).ok_or(HttpParseError::BadRequestLine)?;
        let target = parts.next().ok_or(HttpParseError::BadRequestLine)?;
        let _version = parts.next().ok_or(HttpParseError::BadRequestLine)?;
        let (path, query) = split_query(target);

        let mut headers = BTreeMap::new();
        loop {
            let mut hline = String::new();
            reader.read_line(&mut hline).map_err(HttpParseError::Io)?;
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let len: usize = headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
        if len > max_body {
            return Err(HttpParseError::BodyTooLarge(len));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(HttpParseError::Io)?;
        Ok(Self { method, path, query, headers, body })
    }

    /// Serializes the request for sending (client side).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        let query = if self.query.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = self
                .query
                .iter()
                .map(|(n, v)| format!("{}={}", url_encode(n), url_encode(v)))
                .collect();
            format!("?{}", pairs.join("&"))
        };
        write!(writer, "{} {}{} HTTP/1.1\r\n", self.method, encode_path(&self.path), query)?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "content-length: {}\r\n", self.body.len())?;
        write!(writer, "connection: close\r\n\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn with_status(status: StatusCode) -> Self {
        Self { status, headers: BTreeMap::new(), body: Vec::new() }
    }

    /// A 200 JSON response.
    pub fn json(value: &serde_json::Value) -> Self {
        let mut r = Self::with_status(StatusCode::OK);
        r.headers.insert("content-type".into(), "application/json".into());
        r.body = value.to_string().into_bytes();
        r
    }

    /// A JSON response with an explicit status.
    pub fn json_with_status(status: StatusCode, value: &serde_json::Value) -> Self {
        let mut r = Self::json(value);
        r.status = status;
        r
    }

    /// A 200 response with arbitrary content.
    pub fn content(mime: &str, body: impl Into<Vec<u8>>) -> Self {
        let mut r = Self::with_status(StatusCode::OK);
        r.headers.insert("content-type".into(), mime.to_string());
        r.body = body.into();
        r
    }

    /// A 404 with a JSON error body.
    pub fn not_found(message: &str) -> Self {
        Self::json_with_status(StatusCode::NOT_FOUND, &serde_json::json!({ "error": message }))
    }

    /// A 400 with a JSON error body.
    pub fn bad_request(message: &str) -> Self {
        Self::json_with_status(StatusCode::BAD_REQUEST, &serde_json::json!({ "error": message }))
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors for malformed bodies.
    pub fn json_body(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serializes the response to a stream.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason())?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "content-length: {}\r\n", self.body.len())?;
        write!(writer, "connection: close\r\n\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }

    /// Reads one response from a stream (client side).
    ///
    /// # Errors
    ///
    /// Returns [`HttpParseError`] on malformed framing.
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> Result<Self, HttpParseError> {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(HttpParseError::Io)?;
        if line.is_empty() {
            return Err(HttpParseError::ConnectionClosed);
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let _version = parts.next().ok_or(HttpParseError::BadRequestLine)?;
        let status: u16 =
            parts.next().and_then(|s| s.parse().ok()).ok_or(HttpParseError::BadRequestLine)?;
        let mut headers = BTreeMap::new();
        loop {
            let mut hline = String::new();
            reader.read_line(&mut hline).map_err(HttpParseError::Io)?;
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let len: usize = headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(HttpParseError::Io)?;
        Ok(Self { status: StatusCode(status), headers, body })
    }
}

/// Errors raised while parsing HTTP messages.
#[derive(Debug)]
pub enum HttpParseError {
    /// The peer closed the connection before a full message arrived.
    ConnectionClosed,
    /// Malformed request/status line or unknown method.
    BadRequestLine,
    /// Declared content length above the configured limit.
    BodyTooLarge(usize),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::ConnectionClosed => write!(f, "connection closed"),
            HttpParseError::BadRequestLine => write!(f, "malformed request line"),
            HttpParseError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes too large"),
            HttpParseError::Io(e) => write!(f, "http i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpParseError {}

fn split_query(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (url_decode(target), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((n, v)) => (url_decode(n), url_decode(v)),
                    None => (url_decode(pair), String::new()),
                })
                .collect();
            (url_decode(path), query)
        }
    }
}

/// Percent-decodes a URL component (also folds `+` to space in queries).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // Work on raw bytes: slicing the &str here could split a
                // UTF-8 character and panic.
                let hex =
                    (i + 2 < bytes.len()).then(|| (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])));
                if let Some((Some(hi), Some(lo))) = hex {
                    out.push(hi * 16 + lo);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a query component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-encodes a path, preserving `/` separators.
fn encode_path(path: &str) -> String {
    path.split('/').map(url_encode).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_request(raw: &str) -> Result<Request, HttpParseError> {
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        Request::read_from(&mut reader, 1 << 20)
    }

    #[test]
    fn parse_get() {
        let req = parse_request("GET /api/tests/t1?full=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/api/tests/t1");
        assert_eq!(req.query_param("full"), Some("1"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parse_post_with_body() {
        let req =
            parse_request("POST /api/responses HTTP/1.1\r\ncontent-length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.json().unwrap()["a"], serde_json::json!(1));
    }

    #[test]
    fn parse_rejects_unknown_method() {
        assert!(matches!(
            parse_request("BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpParseError::BadRequestLine)
        ));
    }

    #[test]
    fn parse_rejects_oversized_body() {
        let raw = "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n0123456789";
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        assert!(matches!(
            Request::read_from(&mut reader, 5),
            Err(HttpParseError::BodyTooLarge(10))
        ));
    }

    #[test]
    fn parse_empty_stream_is_closed() {
        assert!(matches!(parse_request(""), Err(HttpParseError::ConnectionClosed)));
    }

    #[test]
    fn request_roundtrip() {
        let req =
            Request::new(Method::Post, "/a/b?x=1&y=two words").with_body(br#"{"k":true}"#.to_vec());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(Cursor::new(buf));
        let parsed = Request::read_from(&mut reader, 1 << 20).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/a/b");
        assert_eq!(parsed.query_param("y"), Some("two words"));
        assert_eq!(parsed.body, br#"{"k":true}"#);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::json(&serde_json::json!({"ok": true}));
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(Cursor::new(buf));
        let parsed = Response::read_from(&mut reader).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.json_body().unwrap()["ok"], serde_json::json!(true));
        assert_eq!(
            parsed.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
    }

    #[test]
    fn error_response_helpers() {
        let nf = Response::not_found("no such test");
        assert_eq!(nf.status, StatusCode::NOT_FOUND);
        assert!(nf.text().contains("no such test"));
        let br = Response::bad_request("bad json");
        assert_eq!(br.status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn url_codec() {
        assert_eq!(url_encode("a b/c"), "a%20b%2Fc");
        assert_eq!(url_decode("a%20b%2Fc"), "a b/c");
        assert_eq!(url_decode("x+y"), "x y");
        assert_eq!(url_decode("bad%zz"), "bad%zz");
        let original = "worker-42 &?=/x";
        assert_eq!(url_decode(&url_encode(original)), original);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode(599).reason(), "Unknown");
    }
}
