//! HTTP/1.1 message types, parsing, and serialization.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Request methods the core server supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
    /// HTTP PUT.
    Put,
    /// HTTP DELETE.
    Delete,
}

impl Method {
    /// Parses a method token.
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes the API uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200.
    pub const OK: StatusCode = StatusCode(200);
    /// 201.
    pub const CREATED: StatusCode = StatusCode(201);
    /// 400.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 408.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 413.
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 431.
    pub const HEADERS_TOO_LARGE: StatusCode = StatusCode(431);
    /// 500.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// 504 — the request's propagated deadline expired before (or while)
    /// the server could work on it.
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);
    /// 507 — the store is in read-only mode (WAL append failed, usually
    /// disk pressure); writes are rejected until a compaction frees space.
    pub const INSUFFICIENT_STORAGE: StatusCode = StatusCode(507);

    /// Standard reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            507 => "Insufficient Storage",
            _ => "Unknown",
        }
    }
}

/// Cap on the cumulative size of one message's header block (request line
/// excluded), shared by the server and client parsers. An untrusted peer
/// must not be able to grow memory without bound by streaming header
/// lines that never end.
pub const MAX_HEADER_BYTES: usize = 32 << 10;

/// Reads the `name: value` header block up to the blank line, enforcing
/// [`MAX_HEADER_BYTES`] and treating EOF before the blank line as a
/// truncated message rather than an empty header block.
fn read_header_block<R: Read>(
    reader: &mut BufReader<R>,
) -> Result<BTreeMap<String, String>, HttpParseError> {
    let mut headers = BTreeMap::new();
    let mut total = 0usize;
    loop {
        let mut hline = String::new();
        let n = reader.read_line(&mut hline).map_err(HttpParseError::Io)?;
        if n == 0 {
            // EOF mid-headers: the peer hung up before the blank line that
            // ends the block. This must not parse as a complete message.
            return Err(HttpParseError::ConnectionClosed);
        }
        total += n;
        if total > MAX_HEADER_BYTES {
            return Err(HttpParseError::HeadersTooLarge(total));
        }
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok(headers)
}

/// Whether a header map asks for the connection to be closed after this
/// message (`connection: close`, case-insensitive).
fn connection_close(headers: &BTreeMap<String, String>) -> bool {
    headers.get("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request for client use.
    pub fn new(method: Method, path: &str) -> Self {
        let (path, query) = split_query(path);
        Self { method, path, query, headers: BTreeMap::new(), body: Vec::new() }
    }

    /// Sets the body (client side).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// First query value by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors for malformed bodies.
    pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reads one request from a stream.
    ///
    /// # Errors
    ///
    /// Returns [`HttpParseError`] on malformed framing, unknown methods, or
    /// bodies above `max_body` bytes.
    pub fn read_from<R: Read>(
        reader: &mut BufReader<R>,
        max_body: usize,
    ) -> Result<Self, HttpParseError> {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(HttpParseError::Io)?;
        if line.is_empty() {
            return Err(HttpParseError::ConnectionClosed);
        }
        let mut parts = line.split_whitespace();
        let method =
            parts.next().and_then(Method::from_token).ok_or(HttpParseError::BadRequestLine)?;
        let target = parts.next().ok_or(HttpParseError::BadRequestLine)?;
        let _version = parts.next().ok_or(HttpParseError::BadRequestLine)?;
        let (path, query) = split_query(target);

        let headers = read_header_block(reader)?;
        let len: usize = headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
        if len > max_body {
            return Err(HttpParseError::BodyTooLarge(len));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(HttpParseError::Io)?;
        Ok(Self { method, path, query, headers, body })
    }

    /// Whether this request asks the server to close the connection after
    /// responding. Absent a `connection` header, HTTP/1.1 defaults to
    /// keep-alive.
    pub fn wants_close(&self) -> bool {
        connection_close(&self.headers)
    }

    /// The propagated client deadline (absolute epoch milliseconds) from
    /// the [`crate::overload::DEADLINE_HEADER`], if the client stamped
    /// one.
    pub fn deadline_epoch_ms(&self) -> Option<u64> {
        self.headers.get(crate::overload::DEADLINE_HEADER).and_then(|v| v.parse().ok())
    }

    /// How much of the client's deadline budget remains, in milliseconds
    /// (negative once expired). `None` when the request carries no
    /// deadline. Handlers use this to bail out of expensive work nobody
    /// is waiting for anymore.
    pub fn remaining_budget_ms(&self) -> Option<i64> {
        self.deadline_epoch_ms()
            .map(|deadline| deadline as i64 - crate::overload::epoch_ms() as i64)
    }

    /// Serializes the request for sending (client side).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        let query = if self.query.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = self
                .query
                .iter()
                .map(|(n, v)| format!("{}={}", url_encode(n), url_encode(v)))
                .collect();
            format!("?{}", pairs.join("&"))
        };
        write!(writer, "{} {}{} HTTP/1.1\r\n", self.method, encode_path(&self.path), query)?;
        for (name, value) in &self.headers {
            if name == "content-length" {
                continue;
            }
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "content-length: {}\r\n\r\n", self.body.len())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn with_status(status: StatusCode) -> Self {
        Self { status, headers: BTreeMap::new(), body: Vec::new() }
    }

    /// A 200 JSON response.
    pub fn json(value: &serde_json::Value) -> Self {
        let mut r = Self::with_status(StatusCode::OK);
        r.headers.insert("content-type".into(), "application/json".into());
        r.body = value.to_string().into_bytes();
        r
    }

    /// A JSON response with an explicit status.
    pub fn json_with_status(status: StatusCode, value: &serde_json::Value) -> Self {
        let mut r = Self::json(value);
        r.status = status;
        r
    }

    /// A 200 response with arbitrary content.
    pub fn content(mime: &str, body: impl Into<Vec<u8>>) -> Self {
        let mut r = Self::with_status(StatusCode::OK);
        r.headers.insert("content-type".into(), mime.to_string());
        r.body = body.into();
        r
    }

    /// A 404 with a JSON error body.
    pub fn not_found(message: &str) -> Self {
        Self::json_with_status(StatusCode::NOT_FOUND, &serde_json::json!({ "error": message }))
    }

    /// A 400 with a JSON error body.
    pub fn bad_request(message: &str) -> Self {
        Self::json_with_status(StatusCode::BAD_REQUEST, &serde_json::json!({ "error": message }))
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors for malformed bodies.
    pub fn json_body(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serializes the response to a stream.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason())?;
        for (name, value) in &self.headers {
            if name == "content-length" {
                continue;
            }
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "content-length: {}\r\n\r\n", self.body.len())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }

    /// Sets the `connection` header to `close` or `keep-alive`.
    pub fn set_connection(&mut self, close: bool) -> &mut Self {
        self.headers.insert("connection".into(), if close { "close" } else { "keep-alive" }.into());
        self
    }

    /// Whether this response announces the connection will close after it.
    pub fn is_close(&self) -> bool {
        connection_close(&self.headers)
    }

    /// An overloaded-server response (`503` shed or `504` expired) with
    /// the mandatory `retry-after` hint, in seconds. The hint is the
    /// server's half of the backoff contract: clients cap their own
    /// exponential backoff at it (see [`crate::overload`]).
    pub fn overloaded(status: StatusCode, error: &str, retry_after_secs: u64) -> Self {
        let mut r = Self::json_with_status(status, &serde_json::json!({ "error": error }));
        r.headers.insert("retry-after".into(), retry_after_secs.to_string());
        r
    }

    /// The `retry-after` hint, if the server sent one.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        self.headers
            .get("retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map(std::time::Duration::from_secs)
    }

    /// Reads one response from a stream (client side), rejecting declared
    /// bodies above `max_body` bytes *before* allocating — an untrusted
    /// `content-length` must not drive an unbounded allocation.
    ///
    /// # Errors
    ///
    /// Returns [`HttpParseError`] on malformed framing or oversized
    /// headers/bodies.
    pub fn read_from<R: Read>(
        reader: &mut BufReader<R>,
        max_body: usize,
    ) -> Result<Self, HttpParseError> {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(HttpParseError::Io)?;
        if line.is_empty() {
            return Err(HttpParseError::ConnectionClosed);
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let _version = parts.next().ok_or(HttpParseError::BadRequestLine)?;
        let status: u16 =
            parts.next().and_then(|s| s.parse().ok()).ok_or(HttpParseError::BadRequestLine)?;
        let headers = read_header_block(reader)?;
        let len: usize = headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
        if len > max_body {
            return Err(HttpParseError::BodyTooLarge(len));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(HttpParseError::Io)?;
        Ok(Self { status: StatusCode(status), headers, body })
    }
}

/// What one request-line/header/body parse is currently waiting for.
#[derive(Debug)]
enum ParsePhase {
    /// Waiting for the `METHOD target HTTP/x.y` line.
    RequestLine,
    /// Waiting for the header block's terminating blank line.
    Headers {
        method: Method,
        path: String,
        query: Vec<(String, String)>,
        headers: BTreeMap<String, String>,
        /// Cumulative header-line bytes, for the [`MAX_HEADER_BYTES`] cap.
        header_bytes: usize,
    },
    /// Waiting for `remaining` more body bytes.
    Body {
        method: Method,
        path: String,
        query: Vec<(String, String)>,
        headers: BTreeMap<String, String>,
        body: Vec<u8>,
        remaining: usize,
    },
}

/// An incremental, push-based request parser for nonblocking sockets.
///
/// The reactor feeds whatever bytes a readiness event produced via
/// [`RequestParser::feed`] and asks for a complete message with
/// [`RequestParser::poll`]; `Ok(None)` means "need more bytes". The state
/// machine mirrors the blocking [`Request::read_from`] decision for
/// decision — same [`MAX_HEADER_BYTES`] cap, same EOF-mid-message
/// [`HttpParseError::ConnectionClosed`], same treatment of an unparseable
/// `content-length` as zero — so a request parsed one byte per event is
/// indistinguishable from one parsed off a blocking stream. Leftover bytes
/// after a complete request stay buffered: pipelined requests parse on the
/// next `poll`.
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by the state machine.
    pos: usize,
    phase: ParsePhase,
    eof: bool,
    /// Whether this parser has produced at least one byte of progress on
    /// the current message (used to distinguish "clean close between
    /// requests" from "truncated message").
    started: bool,
}

/// Outcome of draining one line out of the parser's buffer.
enum LineStep {
    /// A complete line (terminator stripped, like `read_line` + trim).
    Line(String),
    /// No terminator yet; wait for more bytes.
    NeedMore,
    /// EOF with an empty buffer: the stream ended exactly here.
    Eof,
}

impl RequestParser {
    /// A parser enforcing `max_body` on declared request bodies.
    pub fn new(max_body: usize) -> Self {
        Self {
            max_body,
            buf: Vec::new(),
            pos: 0,
            phase: ParsePhase::RequestLine,
            eof: false,
            started: false,
        }
    }

    /// Appends bytes received from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Marks the read side closed: an incomplete message becomes
    /// [`HttpParseError::ConnectionClosed`] (or a final unterminated line,
    /// exactly as `read_line` yields one at EOF).
    pub fn set_eof(&mut self) {
        self.eof = true;
    }

    /// Bytes buffered but not yet consumed by a completed parse.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the current message has consumed any bytes — i.e. an EOF
    /// now would truncate a message rather than close an idle connection.
    pub fn mid_message(&self) -> bool {
        self.started || self.buffered() > 0
    }

    /// Pulls the next `\n`-terminated line (mimicking `read_line`: at EOF a
    /// trailing unterminated chunk counts as one final line). Returns the
    /// raw byte length consumed alongside the trimmed text.
    fn take_line(&mut self) -> Result<(LineStep, usize), HttpParseError> {
        let rest = &self.buf[self.pos..];
        let (raw_len, had_newline) = match rest.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None if self.eof && !rest.is_empty() => (rest.len(), false),
            None if self.eof => return Ok((LineStep::Eof, 0)),
            None => return Ok((LineStep::NeedMore, 0)),
        };
        let _ = had_newline;
        let raw = &self.buf[self.pos..self.pos + raw_len];
        let text = std::str::from_utf8(raw)
            .map_err(|_| {
                HttpParseError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "stream did not contain valid UTF-8",
                ))
            })?
            .trim_end()
            .to_string();
        self.pos += raw_len;
        Ok((LineStep::Line(text), raw_len))
    }

    /// Drops consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// # Errors
    ///
    /// The same [`HttpParseError`] variants, under the same conditions, as
    /// the blocking [`Request::read_from`]. After an error the parser is
    /// poisoned — the connection is expected to close.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpParseError> {
        loop {
            // Take the phase out so line extraction can borrow `self`
            // freely; every early return below has either restored it or
            // errored (errors poison the parser: the connection closes).
            let phase = std::mem::replace(&mut self.phase, ParsePhase::RequestLine);
            match phase {
                ParsePhase::RequestLine => {
                    // Bound a request line that never ends: reuse the
                    // header-block cap.
                    if self.buffered() > MAX_HEADER_BYTES {
                        return Err(HttpParseError::HeadersTooLarge(self.buffered()));
                    }
                    match self.take_line()?.0 {
                        LineStep::NeedMore => return Ok(None),
                        LineStep::Eof => return Err(HttpParseError::ConnectionClosed),
                        LineStep::Line(line) => {
                            self.started = true;
                            let mut parts = line.split_whitespace();
                            let method = parts
                                .next()
                                .and_then(Method::from_token)
                                .ok_or(HttpParseError::BadRequestLine)?;
                            let target = parts.next().ok_or(HttpParseError::BadRequestLine)?;
                            let _version = parts.next().ok_or(HttpParseError::BadRequestLine)?;
                            let (path, query) = split_query(target);
                            self.phase = ParsePhase::Headers {
                                method,
                                path,
                                query,
                                headers: BTreeMap::new(),
                                header_bytes: 0,
                            };
                        }
                    }
                }
                ParsePhase::Headers { method, path, query, mut headers, mut header_bytes } => {
                    // A single header line longer than the whole cap can
                    // be rejected before its newline ever arrives.
                    if header_bytes + self.buffered() > MAX_HEADER_BYTES
                        && !self.buf[self.pos..].contains(&b'\n')
                    {
                        return Err(HttpParseError::HeadersTooLarge(
                            header_bytes + self.buffered(),
                        ));
                    }
                    let (step, raw_len) = self.take_line()?;
                    match step {
                        LineStep::NeedMore => {
                            self.phase =
                                ParsePhase::Headers { method, path, query, headers, header_bytes };
                            return Ok(None);
                        }
                        // EOF mid-headers: a truncated message, never an
                        // empty header block.
                        LineStep::Eof => return Err(HttpParseError::ConnectionClosed),
                        LineStep::Line(line) => {
                            header_bytes += raw_len;
                            if header_bytes > MAX_HEADER_BYTES {
                                return Err(HttpParseError::HeadersTooLarge(header_bytes));
                            }
                            if line.is_empty() {
                                let len: usize = headers
                                    .get("content-length")
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or(0);
                                if len > self.max_body {
                                    return Err(HttpParseError::BodyTooLarge(len));
                                }
                                self.phase = ParsePhase::Body {
                                    method,
                                    path,
                                    query,
                                    headers,
                                    body: Vec::with_capacity(len.min(64 << 10)),
                                    remaining: len,
                                };
                            } else {
                                if let Some((name, value)) = line.split_once(':') {
                                    headers.insert(
                                        name.trim().to_ascii_lowercase(),
                                        value.trim().to_string(),
                                    );
                                }
                                self.phase = ParsePhase::Headers {
                                    method,
                                    path,
                                    query,
                                    headers,
                                    header_bytes,
                                };
                            }
                        }
                    }
                }
                ParsePhase::Body { method, path, query, headers, mut body, mut remaining } => {
                    let available = (self.buf.len() - self.pos).min(remaining);
                    body.extend_from_slice(&self.buf[self.pos..self.pos + available]);
                    self.pos += available;
                    remaining -= available;
                    if remaining > 0 {
                        if self.eof {
                            // read_exact would have failed with
                            // UnexpectedEof here.
                            return Err(HttpParseError::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "connection closed mid-body",
                            )));
                        }
                        self.phase =
                            ParsePhase::Body { method, path, query, headers, body, remaining };
                        return Ok(None);
                    }
                    self.started = false;
                    self.compact();
                    return Ok(Some(Request { method, path, query, headers, body }));
                }
            }
        }
    }
}

/// Errors raised while parsing HTTP messages.
#[derive(Debug)]
pub enum HttpParseError {
    /// The peer closed the connection before a full message arrived.
    ConnectionClosed,
    /// Malformed request/status line or unknown method.
    BadRequestLine,
    /// Declared content length above the configured limit.
    BodyTooLarge(usize),
    /// Header block larger than [`MAX_HEADER_BYTES`].
    HeadersTooLarge(usize),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::ConnectionClosed => write!(f, "connection closed"),
            HttpParseError::BadRequestLine => write!(f, "malformed request line"),
            HttpParseError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes too large"),
            HttpParseError::HeadersTooLarge(n) => {
                write!(f, "header block of {n} bytes too large")
            }
            HttpParseError::Io(e) => write!(f, "http i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpParseError {}

fn split_query(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (url_decode_path(target), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((n, v)) => (url_decode(n), url_decode(v)),
                    None => (url_decode(pair), String::new()),
                })
                .collect();
            (url_decode_path(path), query)
        }
    }
}

/// Percent-decodes a query component, folding `+` to space
/// (`application/x-www-form-urlencoded` semantics).
pub fn url_decode(s: &str) -> String {
    url_decode_with(s, true)
}

/// Percent-decodes a path component. Unlike query components, a literal
/// `+` in a path segment is just a plus sign — `/pages/a+b.html` must not
/// become `/pages/a b.html`.
pub fn url_decode_path(s: &str) -> String {
    url_decode_with(s, false)
}

fn url_decode_with(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // Work on raw bytes: slicing the &str here could split a
                // UTF-8 character and panic.
                let hex =
                    (i + 2 < bytes.len()).then(|| (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])));
                if let Some((Some(hi), Some(lo))) = hex {
                    out.push(hi * 16 + lo);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a query component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-encodes a path, preserving `/` separators.
fn encode_path(path: &str) -> String {
    path.split('/').map(url_encode).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_request(raw: &str) -> Result<Request, HttpParseError> {
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        Request::read_from(&mut reader, 1 << 20)
    }

    #[test]
    fn parse_get() {
        let req = parse_request("GET /api/tests/t1?full=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/api/tests/t1");
        assert_eq!(req.query_param("full"), Some("1"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parse_post_with_body() {
        let req =
            parse_request("POST /api/responses HTTP/1.1\r\ncontent-length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.json().unwrap()["a"], serde_json::json!(1));
    }

    #[test]
    fn parse_rejects_unknown_method() {
        assert!(matches!(
            parse_request("BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpParseError::BadRequestLine)
        ));
    }

    #[test]
    fn parse_rejects_oversized_body() {
        let raw = "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n0123456789";
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        assert!(matches!(
            Request::read_from(&mut reader, 5),
            Err(HttpParseError::BodyTooLarge(10))
        ));
    }

    #[test]
    fn parse_empty_stream_is_closed() {
        assert!(matches!(parse_request(""), Err(HttpParseError::ConnectionClosed)));
    }

    #[test]
    fn request_roundtrip() {
        let req =
            Request::new(Method::Post, "/a/b?x=1&y=two words").with_body(br#"{"k":true}"#.to_vec());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(Cursor::new(buf));
        let parsed = Request::read_from(&mut reader, 1 << 20).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/a/b");
        assert_eq!(parsed.query_param("y"), Some("two words"));
        assert_eq!(parsed.body, br#"{"k":true}"#);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::json(&serde_json::json!({"ok": true}));
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(Cursor::new(buf));
        let parsed = Response::read_from(&mut reader, 1 << 20).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.json_body().unwrap()["ok"], serde_json::json!(true));
        assert_eq!(
            parsed.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
    }

    #[test]
    fn error_response_helpers() {
        let nf = Response::not_found("no such test");
        assert_eq!(nf.status, StatusCode::NOT_FOUND);
        assert!(nf.text().contains("no such test"));
        let br = Response::bad_request("bad json");
        assert_eq!(br.status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn url_codec() {
        assert_eq!(url_encode("a b/c"), "a%20b%2Fc");
        assert_eq!(url_decode("a%20b%2Fc"), "a b/c");
        assert_eq!(url_decode("x+y"), "x y");
        assert_eq!(url_decode("bad%zz"), "bad%zz");
        let original = "worker-42 &?=/x";
        assert_eq!(url_decode(&url_encode(original)), original);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode::SERVICE_UNAVAILABLE.reason(), "Service Unavailable");
        assert_eq!(StatusCode(599).reason(), "Unknown");
    }

    // --- regression: EOF mid-headers must not parse as a complete message ---

    #[test]
    fn truncated_request_headers_are_rejected() {
        // No blank line: the client died mid-headers. Before the fix,
        // read_line returning 0 produced an empty line that ended the
        // header block, and the truncated request was dispatched.
        for raw in [
            "GET /api/tests HTTP/1.1\r\nhost: x\r\n",
            "GET /api/tests HTTP/1.1\r\n",
            "POST /api/responses HTTP/1.1\r\ncontent-length: 5\r\nhost",
        ] {
            assert!(
                matches!(parse_request(raw), Err(HttpParseError::ConnectionClosed)),
                "raw {raw:?} must be treated as a truncated message"
            );
        }
    }

    #[test]
    fn truncated_response_headers_are_rejected() {
        let raw = "HTTP/1.1 200 OK\r\ncontent-type: text/html\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        assert!(matches!(
            Response::read_from(&mut reader, 1 << 20),
            Err(HttpParseError::ConnectionClosed)
        ));
    }

    // --- regression: `+` must survive in path segments ---

    #[test]
    fn plus_is_preserved_in_paths_but_folded_in_queries() {
        let req = parse_request("GET /pages/a+b.html?q=x+y HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/pages/a+b.html");
        assert_eq!(req.query_param("q"), Some("x y"));
        assert_eq!(url_decode_path("a+b%20c"), "a+b c");
    }

    // --- regression: untrusted sizes must not drive unbounded allocations ---

    #[test]
    fn oversized_response_body_is_rejected_before_allocating() {
        let raw = format!("HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n", usize::MAX / 2);
        let mut reader = BufReader::new(Cursor::new(raw.into_bytes()));
        assert!(matches!(
            Response::read_from(&mut reader, 1 << 20),
            Err(HttpParseError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn oversized_header_block_is_rejected() {
        let huge = format!("GET / HTTP/1.1\r\nx-filler: {}\r\n\r\n", "a".repeat(MAX_HEADER_BYTES));
        assert!(matches!(parse_request(&huge), Err(HttpParseError::HeadersTooLarge(_))));
        let huge_resp =
            format!("HTTP/1.1 200 OK\r\nx-filler: {}\r\n\r\n", "a".repeat(MAX_HEADER_BYTES));
        let mut reader = BufReader::new(Cursor::new(huge_resp.into_bytes()));
        assert!(matches!(
            Response::read_from(&mut reader, 1 << 20),
            Err(HttpParseError::HeadersTooLarge(_))
        ));
    }

    #[test]
    fn many_small_headers_are_also_bounded() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..10_000 {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse_request(&raw), Err(HttpParseError::HeadersTooLarge(_))));
    }

    // --- connection header plumbing ---

    #[test]
    fn connection_header_is_honored_not_hardcoded() {
        let mut req = Request::new(Method::Get, "/x");
        assert!(!req.wants_close(), "HTTP/1.1 defaults to keep-alive");
        req.headers.insert("connection".into(), "Close".into());
        assert!(req.wants_close(), "case-insensitive close");

        // write_to no longer injects `connection: close` behind the
        // caller's back.
        let req = Request::new(Method::Get, "/x");
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let wire = String::from_utf8(buf).unwrap();
        assert!(!wire.to_ascii_lowercase().contains("connection:"), "wire: {wire}");

        let mut resp = Response::with_status(StatusCode::OK);
        resp.set_connection(false);
        assert!(!resp.is_close());
        resp.set_connection(true);
        assert!(resp.is_close());
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("connection: close"));
    }

    #[test]
    fn explicit_content_length_header_is_not_duplicated() {
        let mut req = Request::new(Method::Post, "/x").with_body(b"abc".to_vec());
        req.headers.insert("content-length".into(), "999".into());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let wire = String::from_utf8(buf).unwrap();
        assert_eq!(wire.matches("content-length").count(), 1);
        assert!(wire.contains("content-length: 3"), "computed length wins: {wire}");
    }

    /// Runs the incremental parser over `wire` one byte at a time (the
    /// worst fragmentation a reactor can see) and returns everything it
    /// produced plus its final error, if any.
    fn drip_parse(wire: &[u8], max_body: usize) -> (Vec<Request>, Option<HttpParseError>) {
        let mut parser = RequestParser::new(max_body);
        let mut requests = Vec::new();
        for &byte in wire {
            parser.feed(&[byte]);
            loop {
                match parser.poll() {
                    Ok(Some(request)) => requests.push(request),
                    Ok(None) => break,
                    Err(e) => return (requests, Some(e)),
                }
            }
        }
        parser.set_eof();
        loop {
            match parser.poll() {
                Ok(Some(request)) => requests.push(request),
                Ok(None) => break,
                Err(e) => return (requests, Some(e)),
            }
        }
        (requests, None)
    }

    /// Runs the blocking parser over the same bytes until it errors.
    fn blocking_parse(wire: &[u8], max_body: usize) -> (Vec<Request>, Option<HttpParseError>) {
        let mut reader = std::io::BufReader::new(wire);
        let mut requests = Vec::new();
        loop {
            match Request::read_from(&mut reader, max_body) {
                Ok(request) => requests.push(request),
                Err(e) => return (requests, Some(e)),
            }
        }
    }

    fn same_error(a: &Option<HttpParseError>, b: &Option<HttpParseError>) -> bool {
        match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => std::mem::discriminant(x) == std::mem::discriminant(y),
            _ => false,
        }
    }

    #[test]
    fn incremental_parser_matches_blocking_parser() {
        let corpus: &[&[u8]] = &[
            b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n",
            b"POST /echo HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello",
            b"GET /a?x=1&y=2 HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n",
            b"POST /u HTTP/1.1\r\nContent-Length: 3\r\nX-Mixed-Case: Yes\r\n\r\nabcGET /after HTTP/1.1\r\n\r\n",
            b"\x00\x01\x02\x03\x04",
            b"GARBAGE NONSENSE\r\n\r\n",
            b"GET\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: notanumber\r\n\r\n",
            b"",
            b"GET /partial HTTP/1.1\r\nhost: x\r\n",
            b"POST /t HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort",
            b"POST /big HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n",
            b"GET /nl-only HTTP/1.1\nhost: y\n\nGET /two HTTP/1.1\n\n",
        ];
        for wire in corpus {
            let (inc_reqs, inc_err) = drip_parse(wire, 1024);
            let (blk_reqs, blk_err) = blocking_parse(wire, 1024);
            let label = String::from_utf8_lossy(wire);
            assert_eq!(inc_reqs.len(), blk_reqs.len(), "request count diverged on: {label}");
            for (a, b) in inc_reqs.iter().zip(&blk_reqs) {
                assert_eq!(a.method, b.method, "method diverged on: {label}");
                assert_eq!(a.path, b.path, "path diverged on: {label}");
                assert_eq!(a.query, b.query, "query diverged on: {label}");
                assert_eq!(a.headers, b.headers, "headers diverged on: {label}");
                assert_eq!(a.body, b.body, "body diverged on: {label}");
            }
            assert!(
                same_error(&inc_err, &blk_err),
                "errors diverged on {label}: incremental={inc_err:?} blocking={blk_err:?}"
            );
        }
    }

    #[test]
    fn incremental_parser_enforces_header_cap_before_newline() {
        // A single endless header line must be rejected once the buffered
        // bytes exceed the cap — without waiting for a newline that may
        // never come (slow-loris defense).
        let mut parser = RequestParser::new(1024);
        parser.feed(b"GET / HTTP/1.1\r\nx-filler: ");
        assert!(matches!(parser.poll(), Ok(None)));
        parser.feed(&vec![b'a'; MAX_HEADER_BYTES + 1]);
        assert!(matches!(parser.poll(), Err(HttpParseError::HeadersTooLarge(_))));
    }

    #[test]
    fn incremental_parser_keeps_pipelined_leftovers() {
        let mut parser = RequestParser::new(1024);
        parser.feed(b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n");
        let one = parser.poll().unwrap().expect("first request complete");
        assert_eq!(one.path, "/one");
        let two = parser.poll().unwrap().expect("second request complete");
        assert_eq!(two.path, "/two");
        assert!(matches!(parser.poll(), Ok(None)));
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn incremental_parser_tracks_mid_message_state() {
        let mut parser = RequestParser::new(1024);
        assert!(!parser.mid_message());
        parser.feed(b"GET /x HT");
        assert!(parser.mid_message(), "buffered bytes mean a message is in progress");
        let _ = parser.poll();
        assert!(parser.mid_message(), "request line consumed but headers pending");
        parser.feed(b"TP/1.1\r\n\r\n");
        assert!(parser.poll().unwrap().is_some());
        assert!(!parser.mid_message(), "complete request resets the parser");
    }
}
