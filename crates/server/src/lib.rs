//! The Kaleidoscope core server.
//!
//! §III-C: "The core server is the key element connecting the test
//! resources, browser extension, and crowdsourcing platform. It has four
//! main functions: post the test task to the crowdsourcing platform, provide
//! test resources to the browser extension, collect responses from
//! participants, and analyze the final results. The core server is built as
//! a Web server using NodeJS — an event-driven architecture capable of
//! asynchronous I/O."
//!
//! We substitute NodeJS with a from-scratch event-driven HTTP/1.1 server
//! over nonblocking `std::net` (see DESIGN.md §13): [`HttpServer`] runs
//! readiness-driven [`reactor`] shards that own every connection, parse
//! requests incrementally, and dispatch complete requests to a small
//! worker pool over a bounded crossbeam channel; [`Router`] dispatches by
//! method and path pattern, and [`api::CoreServerApi`] wires the four
//! functions to a [`kscope_store::Database`] + [`kscope_store::GridStore`].
//! A small blocking [`client`] lets the browser-extension simulator and
//! the tests speak the real wire protocol over loopback TCP.
//!
//! # Example
//!
//! ```no_run
//! use kscope_server::{api::CoreServerApi, HttpServer};
//! use kscope_store::{Database, GridStore};
//!
//! let api = CoreServerApi::new(Database::new(), GridStore::new());
//! let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 4)?;
//! println!("core server on {}", server.local_addr());
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

// `deny` (not `forbid`) so the raw-syscall epoll shim — the one place the
// crate needs `unsafe` — can opt in with a module-scoped `allow`; see
// `reactor::sys`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod metrics;
pub mod overload;
pub mod reactor;
pub mod router;
pub mod server;

pub use client::Session;
pub use http::{Method, Request, Response, StatusCode};
pub use metrics::ServerMetrics;
pub use overload::{BreakerState, CircuitBreaker, FullJitterBackoff, RetryBudget, DEADLINE_HEADER};
pub use router::{Params, Router};
pub use server::{DrainReport, HttpServer, ServerConfig};
