//! The threaded HTTP server.
//!
//! An acceptor thread pushes connections into a crossbeam channel drained
//! by a fixed worker pool — the thread-pool equivalent of NodeJS's event
//! loop for our request/response workload. Each worker runs a keep-alive
//! loop over its connection: many requests ride one TCP socket until the
//! client asks to close, the connection idles past the timeout, or the
//! per-connection request cap is reached. When the queue is full the
//! acceptor sheds load with an immediate `503` instead of stalling the
//! accept loop, and [`HttpServer::shutdown`] drains in-flight connections
//! up to a deadline before force-closing.

use crate::http::{HttpParseError, Request, Response, StatusCode};
use crate::metrics::{panic_message, ServerMetrics};
use crate::router::Router;
use crossbeam::channel::{bounded, Sender, TrySendError};
use kscope_telemetry::Registry;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the connection lifecycle.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads (each owns one connection at a time).
    pub worker_count: usize,
    /// Bounded depth of the accepted-connection queue; when full, new
    /// connections are shed with a `503`.
    pub queue_capacity: usize,
    /// Keep-alive cap: a connection is closed after serving this many
    /// requests, so one client cannot pin a worker forever.
    pub max_requests_per_connection: usize,
    /// Socket read timeout — both the patience for a slow request and how
    /// long an idle keep-alive connection is kept before disconnecting.
    pub idle_timeout: Duration,
    /// How long [`HttpServer::shutdown`] waits for in-flight connections
    /// to finish before force-closing.
    pub drain_deadline: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            worker_count: 4,
            queue_capacity: 16,
            max_requests_per_connection: 1_000,
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_body_bytes: 32 << 20,
        }
    }
}

impl ServerConfig {
    /// A config sized for `worker_count` workers (queue = 4× workers).
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn with_workers(worker_count: usize) -> Self {
        assert!(worker_count > 0, "need at least one worker");
        Self { worker_count, queue_capacity: worker_count * 4, ..Self::default() }
    }
}

/// What [`HttpServer::shutdown`] observed while draining.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Wall-clock time from the stop signal to the last joined thread (or
    /// the drain deadline).
    pub duration: Duration,
    /// Worker threads that finished and were joined before the deadline.
    pub workers_joined: usize,
    /// Size of the worker pool.
    pub workers_total: usize,
    /// Whether every worker drained before the deadline (`false` means
    /// stragglers were force-abandoned; their sockets die with the
    /// process or their read timeout, whichever comes first).
    pub completed: bool,
}

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops the acceptor and workers.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Option<Arc<ServerMetrics>>,
    drain_deadline: Duration,
    drain_hook: Option<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("drain_deadline", &self.drain_deadline)
            .field("drain_hook", &self.drain_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// `worker_count` handler threads serving `router`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        worker_count: usize,
    ) -> std::io::Result<Self> {
        Self::bind_with_config(addr, router, ServerConfig::with_workers(worker_count), None)
    }

    /// Like [`HttpServer::bind`], but instruments the server on `registry`
    /// when one is given: per-route request counters and latency
    /// histograms (via [`Router::set_telemetry`]), accept-queue depth,
    /// worker utilization, status-class response counters, parse/timeout
    /// error counters, shed/keep-alive/drain lifecycle metrics, and a
    /// handler-panic counter with structured panic events.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn bind_with_telemetry<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        worker_count: usize,
        registry: Option<Arc<Registry>>,
    ) -> std::io::Result<Self> {
        Self::bind_with_config(addr, router, ServerConfig::with_workers(worker_count), registry)
    }

    /// Binds with explicit lifecycle tuning (see [`ServerConfig`]) and
    /// optional telemetry.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.worker_count == 0` or `config.queue_capacity == 0`.
    pub fn bind_with_config<A: ToSocketAddrs>(
        addr: A,
        mut router: Router,
        config: ServerConfig,
        registry: Option<Arc<Registry>>,
    ) -> std::io::Result<Self> {
        assert!(config.worker_count > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a non-empty accept queue");
        let metrics = registry.as_ref().map(|registry| {
            router.set_telemetry(registry);
            let m = ServerMetrics::register(registry);
            m.workers_total.set(config.worker_count as i64);
            m
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let (tx, rx) = bounded::<TcpStream>(config.queue_capacity);

        let workers: Vec<JoinHandle<()>> = (0..config.worker_count)
            .map(|_| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let metrics = metrics.clone();
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        if let Some(m) = &metrics {
                            m.accept_queue_depth.dec();
                            m.workers_busy.inc();
                            m.connections_total.inc();
                        }
                        handle_connection(stream, &router, metrics.as_deref(), &config, &stop);
                        if let Some(m) = &metrics {
                            m.workers_busy.dec();
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let metrics = metrics.clone();
            let idle_timeout = config.idle_timeout;
            std::thread::spawn(move || {
                accept_loop(listener, tx, stop, metrics, idle_timeout);
            })
        };

        Ok(Self {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers,
            metrics,
            drain_deadline: config.drain_deadline,
            drain_hook: None,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a hook that runs exactly once after the last worker has
    /// drained — on [`HttpServer::shutdown`] or on drop, whichever stops
    /// the server. The deployment uses this to checkpoint the durable
    /// database after the final in-flight write has landed. Registering
    /// again replaces an unfired hook.
    pub fn set_drain_hook(&mut self, hook: impl FnOnce() + Send + 'static) {
        self.drain_hook = Some(Box::new(hook));
    }

    /// Stops accepting, lets in-flight connections finish up to the drain
    /// deadline, then force-abandons stragglers. Idempotent (a second stop
    /// — e.g. the `Drop` after this call — is a no-op).
    pub fn shutdown(mut self) -> DrainReport {
        self.stop_threads().unwrap_or(DrainReport {
            duration: Duration::ZERO,
            workers_joined: 0,
            workers_total: 0,
            completed: true,
        })
    }

    fn stop_threads(&mut self) -> Option<DrainReport> {
        if self.stop.swap(true, Ordering::SeqCst) {
            return None;
        }
        let start = Instant::now();
        if let Some(m) = &self.metrics {
            m.draining.set(1);
        }
        // Unblock the acceptor with a throwaway connection; its exit drops
        // the channel sender, so workers stop once the queue drains.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let deadline = start + self.drain_deadline;
        let workers_total = self.workers.len();
        let mut workers_joined = 0;
        loop {
            let (finished, still_running): (Vec<_>, Vec<_>) =
                self.workers.drain(..).partition(JoinHandle::is_finished);
            workers_joined += finished.len();
            for handle in finished {
                let _ = handle.join();
            }
            self.workers = still_running;
            if self.workers.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Force-close: abandon stragglers past the deadline. Their sockets
        // carry read timeouts, so the threads cannot outlive one
        // idle-timeout period.
        let completed = self.workers.is_empty();
        self.workers.clear();
        // Workers are done (or abandoned): in-flight writes have landed,
        // so this is the safe moment for the drain hook (e.g. a final
        // database checkpoint).
        if let Some(hook) = self.drain_hook.take() {
            hook();
        }
        let duration = start.elapsed();
        if let Some(m) = &self.metrics {
            m.draining.set(0);
            m.shutdown_duration_ms.observe(duration.as_millis() as u64);
        }
        Some(DrainReport { duration, workers_joined, workers_total, completed })
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        let _ = self.stop_threads();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    stop: Arc<AtomicBool>,
    metrics: Option<Arc<ServerMetrics>>,
    idle_timeout: Duration,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(idle_timeout));
                let _ = s.set_write_timeout(Some(idle_timeout));
                if let Some(m) = &metrics {
                    m.accepted_total.inc();
                }
                // Never block the acceptor on a full worker queue: shed
                // the connection with an immediate 503 so bursts degrade
                // into fast failures instead of unbounded queueing.
                match tx.try_send(s) {
                    Ok(()) => {
                        if let Some(m) = &metrics {
                            m.accept_queue_depth.inc();
                        }
                    }
                    Err(TrySendError::Full(s)) => shed(s, metrics.as_deref()),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) => continue,
        }
    }
    // Dropping tx closes the channel and lets workers exit.
}

/// Refuses one connection with a `503 Service Unavailable`.
fn shed(mut stream: TcpStream, metrics: Option<&ServerMetrics>) {
    if let Some(m) = metrics {
        m.shed_total.inc();
        m.record_response(StatusCode::SERVICE_UNAVAILABLE.0);
    }
    let mut response = Response::json_with_status(
        StatusCode::SERVICE_UNAVAILABLE,
        &serde_json::json!({ "error": "server overloaded, retry later" }),
    );
    response.headers.insert("retry-after".into(), "1".into());
    response.set_connection(true);
    let _ = response.write_to(&mut stream);
    // Swallow whatever the client already sent before closing; closing
    // with unread data in the receive buffer sends an RST, which can
    // destroy the 503 in flight. Bounded: a few short reads at most.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 4096];
    for _ in 0..8 {
        match stream.read(&mut scratch) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// What [`wait_for_data`] saw while a connection idled between requests.
enum Wait {
    /// Bytes are available: parse the next request.
    Ready,
    /// Idle past the timeout.
    IdleExpired,
    /// Peer closed (or the socket broke).
    Closed,
    /// The server started draining while the connection was idle.
    Draining,
}

/// Waits for the next request's first byte without consuming it, polling
/// the stop flag so idle keep-alive connections release their workers
/// within one poll interval of a drain starting — not one idle timeout.
fn wait_for_data(reader: &mut BufReader<TcpStream>, idle: Duration, stop: &AtomicBool) -> Wait {
    if !reader.buffer().is_empty() {
        // A pipelined request is already buffered; the socket has nothing
        // to say about it.
        return Wait::Ready;
    }
    let interval = (idle / 8).clamp(Duration::from_millis(5), Duration::from_millis(100));
    if reader.get_ref().set_read_timeout(Some(interval)).is_err() {
        return Wait::Closed;
    }
    let started = Instant::now();
    let mut byte = [0u8; 1];
    loop {
        match reader.get_ref().peek(&mut byte) {
            Ok(0) => return Wait::Closed,
            Ok(_) => {
                // Restore the full timeout for the actual parse.
                if reader.get_ref().set_read_timeout(Some(idle)).is_err() {
                    return Wait::Closed;
                }
                return Wait::Ready;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Wait::Draining;
                }
                if started.elapsed() >= idle {
                    return Wait::IdleExpired;
                }
            }
            Err(_) => return Wait::Closed,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    router: &Router,
    metrics: Option<&ServerMetrics>,
    config: &ServerConfig,
    stop: &AtomicBool,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    // Keep-alive loop: requests ride this socket until the client asks to
    // close, the idle timeout fires, the request cap is reached, or the
    // server starts draining.
    loop {
        match wait_for_data(&mut reader, config.idle_timeout, stop) {
            Wait::Ready => {}
            Wait::Closed | Wait::Draining => {
                let _ = writer.shutdown(Shutdown::Both);
                return;
            }
            Wait::IdleExpired => {
                if let Some(m) = metrics {
                    m.timeout_errors_total.inc();
                }
                if served == 0 {
                    // The client connected but never sent a request: tell
                    // it why before hanging up.
                    let response = Response::json_with_status(
                        StatusCode::REQUEST_TIMEOUT,
                        &serde_json::json!({ "error": "request timed out" }),
                    );
                    respond_and_close(response, &mut writer, metrics);
                } else {
                    // An idle keep-alive connection: close silently, as
                    // every HTTP server does.
                    let _ = writer.shutdown(Shutdown::Both);
                }
                return;
            }
        }
        let request = match Request::read_from(&mut reader, config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpParseError::ConnectionClosed) => return,
            Err(HttpParseError::BodyTooLarge(_)) => {
                if let Some(m) = metrics {
                    m.body_too_large_total.inc();
                }
                let response = Response::json_with_status(
                    StatusCode::PAYLOAD_TOO_LARGE,
                    &serde_json::json!({ "error": "body too large" }),
                );
                respond_and_close(response, &mut writer, metrics);
                return;
            }
            Err(HttpParseError::HeadersTooLarge(_)) => {
                if let Some(m) = metrics {
                    m.headers_too_large_total.inc();
                }
                let response = Response::json_with_status(
                    StatusCode::HEADERS_TOO_LARGE,
                    &serde_json::json!({ "error": "header block too large" }),
                );
                respond_and_close(response, &mut writer, metrics);
                return;
            }
            Err(HttpParseError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                if let Some(m) = metrics {
                    m.timeout_errors_total.inc();
                }
                if served == 0 {
                    // The client never got a request out: tell it why
                    // before hanging up.
                    let response = Response::json_with_status(
                        StatusCode::REQUEST_TIMEOUT,
                        &serde_json::json!({ "error": "request timed out" }),
                    );
                    respond_and_close(response, &mut writer, metrics);
                } else {
                    // An idle keep-alive connection: close silently, as
                    // every HTTP server does.
                    let _ = writer.shutdown(Shutdown::Both);
                }
                return;
            }
            Err(_) => {
                if let Some(m) = metrics {
                    m.parse_errors_total.inc();
                }
                respond_and_close(Response::bad_request("malformed request"), &mut writer, metrics);
                return;
            }
        };
        served += 1;
        if served > 1 {
            if let Some(m) = metrics {
                m.keepalive_reuses_total.inc();
            }
        }
        let close = stop.load(Ordering::SeqCst)
            || served >= config.max_requests_per_connection
            || request.wants_close();

        // A panicking handler must not take the worker thread (and its
        // slot in the pool) down with it: convert panics into 500s — but
        // never silently. The panic is counted and its message kept as a
        // structured event for the operator.
        let mut response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.dispatch(&request)))
                .unwrap_or_else(|payload| {
                    if let Some(m) = metrics {
                        m.record_panic(
                            request.method.as_str(),
                            &request.path,
                            &panic_message(payload.as_ref()),
                        );
                    }
                    Response::json_with_status(
                        StatusCode::INTERNAL_SERVER_ERROR,
                        &serde_json::json!({ "error": "internal server error" }),
                    )
                });
        response.set_connection(close);
        if let Some(m) = metrics {
            m.record_response(response.status.0);
        }
        if response.write_to(&mut writer).is_err() || close {
            return;
        }
    }
}

fn respond_and_close(
    mut response: Response,
    writer: &mut TcpStream,
    metrics: Option<&ServerMetrics>,
) {
    response.set_connection(true);
    if let Some(m) = metrics {
        m.record_response(response.status.0);
    }
    let _ = response.write_to(writer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::http::Method;

    fn echo_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_req, _p| Response::json(&serde_json::json!({ "pong": true })));
        r.post("/echo", |req, _p| match req.json() {
            Ok(v) => Response::json(&v),
            Err(_) => Response::bad_request("not json"),
        });
        r.get("/tests/:id", |_req, p| {
            Response::json(&serde_json::json!({ "id": p.get("id").unwrap_or("") }))
        });
        r
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let addr = server.local_addr();
        let resp = client::get(addr, "/ping").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.json_body().unwrap()["pong"], serde_json::json!(true));
        server.shutdown();
    }

    #[test]
    fn drain_hook_runs_once_after_workers_join() {
        use std::sync::atomic::AtomicUsize;
        let fired = Arc::new(AtomicUsize::new(0));
        let mut server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let hook_fired = Arc::clone(&fired);
        server.set_drain_hook(move || {
            hook_fired.fetch_add(1, Ordering::SeqCst);
        });
        let resp = client::get(server.local_addr(), "/ping").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(fired.load(Ordering::SeqCst), 0, "hook must not fire while serving");
        let report = server.shutdown();
        assert!(report.completed);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires exactly once on drain");
    }

    #[test]
    fn drain_hook_fires_on_drop_too() {
        use std::sync::atomic::AtomicUsize;
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let mut server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
            let hook_fired = Arc::clone(&fired);
            server.set_drain_hook(move || {
                hook_fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "drop-path shutdown still checkpoints");
    }

    #[test]
    fn post_roundtrip() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let body = serde_json::json!({"answer": "Left", "worker": "w-9"});
        let resp = client::post_json(server.local_addr(), "/echo", &body).unwrap();
        assert_eq!(resp.json_body().unwrap(), body);
        server.shutdown();
    }

    #[test]
    fn path_params_over_the_wire() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let resp = client::get(server.local_addr(), "/tests/t-777").unwrap();
        assert_eq!(resp.json_body().unwrap()["id"], serde_json::json!("t-777"));
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        let resp = client::get(server.local_addr(), "/nope").unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 4).unwrap();
        let addr = server.local_addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for _ in 0..20 {
                        let resp = client::get(addr, "/ping").unwrap();
                        assert_eq!(resp.status, StatusCode::OK);
                    }
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn session_reuses_one_connection() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        let mut session = client::Session::new(server.local_addr());
        for _ in 0..5 {
            let resp = session.get("/ping").unwrap();
            assert_eq!(resp.status, StatusCode::OK);
        }
        let stats = session.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.reuses, 4, "4 of 5 requests must ride the first socket");
        assert_eq!(stats.reconnects, 0);
        server.shutdown();
    }

    #[test]
    fn request_cap_closes_but_session_reconnects() {
        let mut config = ServerConfig::with_workers(1);
        config.max_requests_per_connection = 3;
        let server =
            HttpServer::bind_with_config("127.0.0.1:0", echo_router(), config, None).unwrap();
        let mut session = client::Session::new(server.local_addr());
        for _ in 0..7 {
            assert_eq!(session.get("/ping").unwrap().status, StatusCode::OK);
        }
        // Connections are capped at 3 requests: 7 requests need ≥ 3
        // connections, and the session must have renewed transparently.
        assert!(session.stats().reconnects >= 1 || session.stats().connects >= 3);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let addr = server.local_addr();
        // Prove the server worked before shutdown.
        assert_eq!(client::get(addr, "/ping").unwrap().status, StatusCode::OK);
        let report = server.shutdown();
        // Every worker thread actually joined within the drain deadline.
        assert_eq!(report.workers_total, 2);
        assert_eq!(report.workers_joined, 2, "workers must join on shutdown");
        assert!(report.completed);
        // After shutdown the listener is gone: a full request must fail
        // (the connect is refused once the acceptor thread has exited and
        // dropped the listener).
        let result = client::request(addr, Request::new(Method::Get, "/ping"));
        assert!(result.is_err(), "server must not serve requests after shutdown");
        // Dropping another server also shuts down cleanly.
        let s2 = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        drop(s2);
    }
}
