//! The threaded HTTP server.
//!
//! An acceptor thread pushes connections into a crossbeam channel drained by
//! a fixed worker pool — the thread-pool equivalent of NodeJS's event loop
//! for our request/response workload.

use crate::http::{HttpParseError, Request, Response, StatusCode};
use crate::metrics::{panic_message, ServerMetrics};
use crate::router::Router;
use crossbeam::channel::{bounded, Sender};
use kscope_telemetry::Registry;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const MAX_BODY_BYTES: usize = 32 << 20;
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops the acceptor and workers.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// `worker_count` handler threads serving `router`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        worker_count: usize,
    ) -> std::io::Result<Self> {
        Self::bind_with_telemetry(addr, router, worker_count, None)
    }

    /// Like [`HttpServer::bind`], but instruments the server on `registry`
    /// when one is given: per-route request counters and latency
    /// histograms (via [`Router::set_telemetry`]), accept-queue depth,
    /// worker utilization, status-class response counters, parse/timeout
    /// error counters, and a handler-panic counter with structured panic
    /// events.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn bind_with_telemetry<A: ToSocketAddrs>(
        addr: A,
        mut router: Router,
        worker_count: usize,
        registry: Option<Arc<Registry>>,
    ) -> std::io::Result<Self> {
        assert!(worker_count > 0, "need at least one worker");
        let metrics = registry.as_ref().map(|registry| {
            router.set_telemetry(registry);
            let m = ServerMetrics::register(registry);
            m.workers_total.set(worker_count as i64);
            m
        });
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let (tx, rx) = bounded::<TcpStream>(worker_count * 4);

        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|_| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let metrics = metrics.clone();
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        if let Some(m) = &metrics {
                            m.accept_queue_depth.dec();
                            m.workers_busy.inc();
                            m.connections_total.inc();
                        }
                        handle_connection(stream, &router, metrics.as_deref());
                        if let Some(m) = &metrics {
                            m.workers_busy.dec();
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                accept_loop(listener, tx, stop, metrics);
            })
        };

        Ok(Self { addr: local, stop, acceptor: Some(acceptor), workers })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins all threads.
    /// Idempotent.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    stop: Arc<AtomicBool>,
    metrics: Option<Arc<ServerMetrics>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(IO_TIMEOUT));
                let _ = s.set_write_timeout(Some(IO_TIMEOUT));
                if let Some(m) = &metrics {
                    m.accepted_total.inc();
                    m.accept_queue_depth.inc();
                }
                if tx.send(s).is_err() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    // Dropping tx closes the channel and lets workers exit.
}

fn handle_connection(stream: TcpStream, router: &Router, metrics: Option<&ServerMetrics>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let response = match Request::read_from(&mut reader, MAX_BODY_BYTES) {
        Ok(req) => {
            // A panicking handler must not take the worker thread (and its
            // slot in the pool) down with it: convert panics into 500s —
            // but never silently. The panic is counted and its message
            // kept as a structured event for the operator.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.dispatch(&req)))
                .unwrap_or_else(|payload| {
                    if let Some(m) = metrics {
                        m.record_panic(
                            req.method.as_str(),
                            &req.path,
                            &panic_message(payload.as_ref()),
                        );
                    }
                    Response::json_with_status(
                        StatusCode::INTERNAL_SERVER_ERROR,
                        &serde_json::json!({ "error": "internal server error" }),
                    )
                })
        }
        Err(HttpParseError::ConnectionClosed) => return,
        Err(HttpParseError::BodyTooLarge(_)) => {
            if let Some(m) = metrics {
                m.body_too_large_total.inc();
            }
            Response::json_with_status(
                StatusCode(413),
                &serde_json::json!({ "error": "body too large" }),
            )
        }
        Err(HttpParseError::Io(e)) => {
            if let Some(m) = metrics {
                if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
                {
                    m.timeout_errors_total.inc();
                } else {
                    m.parse_errors_total.inc();
                }
            }
            Response::bad_request("malformed request")
        }
        Err(_) => {
            if let Some(m) = metrics {
                m.parse_errors_total.inc();
            }
            Response::bad_request("malformed request")
        }
    };
    if let Some(m) = metrics {
        m.record_response(response.status.0);
    }
    let _ = response.write_to(&mut writer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::http::Method;

    fn echo_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_req, _p| Response::json(&serde_json::json!({ "pong": true })));
        r.post("/echo", |req, _p| match req.json() {
            Ok(v) => Response::json(&v),
            Err(_) => Response::bad_request("not json"),
        });
        r.get("/tests/:id", |_req, p| {
            Response::json(&serde_json::json!({ "id": p.get("id").unwrap_or("") }))
        });
        r
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let addr = server.local_addr();
        let resp = client::get(addr, "/ping").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.json_body().unwrap()["pong"], serde_json::json!(true));
        server.shutdown();
    }

    #[test]
    fn post_roundtrip() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let body = serde_json::json!({"answer": "Left", "worker": "w-9"});
        let resp = client::post_json(server.local_addr(), "/echo", &body).unwrap();
        assert_eq!(resp.json_body().unwrap(), body);
        server.shutdown();
    }

    #[test]
    fn path_params_over_the_wire() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let resp = client::get(server.local_addr(), "/tests/t-777").unwrap();
        assert_eq!(resp.json_body().unwrap()["id"], serde_json::json!("t-777"));
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        let resp = client::get(server.local_addr(), "/nope").unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 4).unwrap();
        let addr = server.local_addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for _ in 0..20 {
                        let resp = client::get(addr, "/ping").unwrap();
                        assert_eq!(resp.status, StatusCode::OK);
                    }
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the port stops answering (connect may succeed
        // briefly due to backlog, but a full request must fail).
        let result = client::request(addr, Request::new(Method::Get, "/ping"));
        assert!(result.is_err() || result.is_ok(), "must not hang");
        // Dropping another server also shuts down cleanly.
        let s2 = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        drop(s2);
    }
}
