//! The event-driven HTTP server.
//!
//! Socket I/O is readiness-driven: a small set of reactor shards (see
//! [`crate::reactor`]) own every connection as nonblocking state behind an
//! epoll-style poller, so thousands of idle keep-alive sessions cost slab
//! entries and timer-wheel slots instead of blocked threads. Handlers
//! still run on a fixed worker pool — a shard parses a complete request,
//! dispatches it over a bounded channel (shedding with an immediate `503`
//! when the pool is saturated, instead of queueing without bound), and
//! flushes the worker's response when its completion comes back. Requests
//! ride one TCP socket until the client asks to close, the connection
//! idles past the timeout, or the per-connection request cap is reached,
//! and [`HttpServer::shutdown`] drains in-flight requests up to a deadline
//! before force-closing.

use crate::http::{Response, StatusCode};
use crate::metrics::{panic_message, ServerMetrics};
use crate::reactor::{Completion, Job, Shard, ShardConfig, Waker};
use crate::router::Router;
use crossbeam::channel::{bounded, Receiver};
use kscope_telemetry::Registry;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the connection lifecycle.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads running request handlers.
    pub worker_count: usize,
    /// Bounded depth of the parsed-request dispatch queue; when full, new
    /// requests are shed with a `503`.
    pub queue_capacity: usize,
    /// Keep-alive cap: a connection is closed after serving this many
    /// requests, so one client cannot monopolize the server forever.
    pub max_requests_per_connection: usize,
    /// How long an idle keep-alive connection (or a connection stuck
    /// mid-request) is kept before disconnecting.
    pub idle_timeout: Duration,
    /// How long [`HttpServer::shutdown`] waits for in-flight connections
    /// to finish before force-closing.
    pub drain_deadline: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Number of reactor shard threads (each runs an independent event
    /// loop over its share of the connections). `0` picks a default from
    /// the machine's parallelism.
    pub reactor_shards: usize,
    /// Force the portable scan poller even where epoll is available —
    /// for tests and for diagnosing poller-specific behavior.
    pub force_scan_poller: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            worker_count: 4,
            queue_capacity: 16,
            max_requests_per_connection: 1_000,
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_body_bytes: 32 << 20,
            reactor_shards: 0,
            force_scan_poller: false,
        }
    }
}

impl ServerConfig {
    /// A config sized for `worker_count` workers (queue = 4× workers).
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn with_workers(worker_count: usize) -> Self {
        assert!(worker_count > 0, "need at least one worker");
        Self { worker_count, queue_capacity: worker_count * 4, ..Self::default() }
    }

    /// Resolves `reactor_shards == 0` to a concrete shard count: enough to
    /// spread readiness work across cores, but never more than four — the
    /// shards do no handler work, so they saturate well before that.
    pub fn resolved_shards(&self) -> usize {
        if self.reactor_shards > 0 {
            return self.reactor_shards;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
    }
}

/// What [`HttpServer::shutdown`] observed while draining.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Wall-clock time from the stop signal to the last joined thread (or
    /// the drain deadline).
    pub duration: Duration,
    /// Worker threads that finished and were joined before the deadline.
    pub workers_joined: usize,
    /// Size of the worker pool.
    pub workers_total: usize,
    /// Whether every worker drained before the deadline (`false` means
    /// stragglers were force-abandoned; their sockets die with the
    /// process).
    pub completed: bool,
}

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops the reactor shards and workers.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shards: Vec<JoinHandle<()>>,
    wakers: Vec<Arc<Waker>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Option<Arc<ServerMetrics>>,
    drain_deadline: Duration,
    drain_hook: Option<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("shards", &self.shards.len())
            .field("workers", &self.workers.len())
            .field("drain_deadline", &self.drain_deadline)
            .field("drain_hook", &self.drain_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// `worker_count` handler threads serving `router`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        worker_count: usize,
    ) -> std::io::Result<Self> {
        Self::bind_with_config(addr, router, ServerConfig::with_workers(worker_count), None)
    }

    /// Like [`HttpServer::bind`], but instruments the server on `registry`
    /// when one is given: per-route request counters and latency
    /// histograms (via [`Router::set_telemetry`]), dispatch-queue depth,
    /// worker utilization, status-class response counters, parse/timeout
    /// error counters, shed/keep-alive/drain lifecycle metrics, reactor
    /// gauges (registered fds, readiness-batch high-water, timer-wheel
    /// occupancy), and a handler-panic counter with structured panic
    /// events.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0`.
    pub fn bind_with_telemetry<A: ToSocketAddrs>(
        addr: A,
        router: Router,
        worker_count: usize,
        registry: Option<Arc<Registry>>,
    ) -> std::io::Result<Self> {
        Self::bind_with_config(addr, router, ServerConfig::with_workers(worker_count), registry)
    }

    /// Binds with explicit lifecycle tuning (see [`ServerConfig`]) and
    /// optional telemetry.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.worker_count == 0` or `config.queue_capacity == 0`.
    pub fn bind_with_config<A: ToSocketAddrs>(
        addr: A,
        mut router: Router,
        config: ServerConfig,
        registry: Option<Arc<Registry>>,
    ) -> std::io::Result<Self> {
        assert!(config.worker_count > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a non-empty dispatch queue");
        let metrics = registry.as_ref().map(|registry| {
            router.set_telemetry(registry);
            let m = ServerMetrics::register(registry);
            m.workers_total.set(config.worker_count as i64);
            m
        });
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let (tx, rx) = bounded::<Job>(config.queue_capacity);

        let workers: Vec<JoinHandle<()>> = (0..config.worker_count)
            .map(|_| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let metrics = metrics.clone();
                std::thread::spawn(move || worker_loop(&rx, &router, metrics.as_deref()))
            })
            .collect();

        let shard_config = ShardConfig {
            idle_timeout: config.idle_timeout,
            max_requests_per_connection: config.max_requests_per_connection,
            max_body_bytes: config.max_body_bytes,
            drain_deadline: config.drain_deadline,
        };
        let mut shards = Vec::new();
        let mut wakers = Vec::new();
        for _ in 0..config.resolved_shards() {
            let (shard, waker) = Shard::new(
                Arc::clone(&listener),
                tx.clone(),
                Arc::clone(&stop),
                metrics.clone(),
                shard_config.clone(),
                config.force_scan_poller,
            )?;
            wakers.push(waker);
            shards.push(std::thread::spawn(move || shard.run()));
        }
        // The shards hold the only remaining dispatch senders (and
        // listener Arcs): when the last shard exits, workers see a closed
        // channel and drain out, and the listener socket closes.
        drop(tx);
        drop(listener);

        Ok(Self {
            addr: local,
            stop,
            shards,
            wakers,
            workers,
            metrics,
            drain_deadline: config.drain_deadline,
            drain_hook: None,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a hook that runs exactly once after the last worker has
    /// drained — on [`HttpServer::shutdown`] or on drop, whichever stops
    /// the server. The deployment uses this to checkpoint the durable
    /// database after the final in-flight write has landed. Registering
    /// again replaces an unfired hook.
    pub fn set_drain_hook(&mut self, hook: impl FnOnce() + Send + 'static) {
        self.drain_hook = Some(Box::new(hook));
    }

    /// Stops accepting, lets in-flight connections finish up to the drain
    /// deadline, then force-abandons stragglers. Idempotent (a second stop
    /// — e.g. the `Drop` after this call — is a no-op).
    pub fn shutdown(mut self) -> DrainReport {
        self.stop_threads().unwrap_or(DrainReport {
            duration: Duration::ZERO,
            workers_joined: 0,
            workers_total: 0,
            completed: true,
        })
    }

    fn stop_threads(&mut self) -> Option<DrainReport> {
        if self.stop.swap(true, Ordering::SeqCst) {
            return None;
        }
        let start = Instant::now();
        if let Some(m) = &self.metrics {
            m.draining.set(1);
        }
        // Interrupt every shard's poll so the stop flag is seen now, not
        // at the next timeout.
        for waker in self.wakers.drain(..) {
            waker.wake();
        }
        // Shards drain themselves (bounded by the drain deadline) and drop
        // their dispatch senders on exit, which lets the workers finish.
        for handle in self.shards.drain(..) {
            let _ = handle.join();
        }
        let deadline = start + self.drain_deadline;
        let workers_total = self.workers.len();
        let mut workers_joined = 0;
        loop {
            let (finished, still_running): (Vec<_>, Vec<_>) =
                self.workers.drain(..).partition(JoinHandle::is_finished);
            workers_joined += finished.len();
            for handle in finished {
                let _ = handle.join();
            }
            self.workers = still_running;
            if self.workers.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Force-close: abandon stragglers past the deadline; their sockets
        // died when the shards force-closed the connections.
        let completed = self.workers.is_empty();
        self.workers.clear();
        // Workers are done (or abandoned): in-flight writes have landed,
        // so this is the safe moment for the drain hook (e.g. a final
        // database checkpoint).
        if let Some(hook) = self.drain_hook.take() {
            hook();
        }
        let duration = start.elapsed();
        if let Some(m) = &self.metrics {
            m.draining.set(0);
            m.shutdown_duration_ms.observe(duration.as_millis() as u64);
        }
        Some(DrainReport { duration, workers_joined, workers_total, completed })
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        let _ = self.stop_threads();
    }
}

/// Worker thread: runs handlers for dispatched requests and hands the
/// responses back to the owning shard.
fn worker_loop(rx: &Receiver<Job>, router: &Router, metrics: Option<&ServerMetrics>) {
    while let Ok(job) = rx.recv() {
        if let Some(m) = metrics {
            m.accept_queue_depth.dec();
        }
        // Never work for a dead request: if the propagated deadline
        // expired while the job sat in the dispatch queue, the client has
        // already given up — answer 504 without running the handler.
        if job.request.deadline_epoch_ms().is_some_and(|d| crate::overload::epoch_ms() >= d) {
            if let Some(m) = metrics {
                m.expired_dequeued_total.inc();
            }
            let mut response =
                Response::overloaded(StatusCode::GATEWAY_TIMEOUT, "deadline expired in queue", 1);
            response.set_connection(job.close);
            if let Some(m) = metrics {
                m.record_response(response.status.0);
            }
            let _ = job.reply.send(Completion { token: job.token, close: job.close, response });
            job.waker.wake();
            continue;
        }
        if let Some(m) = metrics {
            m.workers_busy.inc();
        }
        // A panicking handler must not take the worker thread (and its
        // slot in the pool) down with it: convert panics into 500s — but
        // never silently. The panic is counted and its message kept as a
        // structured event for the operator.
        let mut response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            router.dispatch(&job.request)
        }))
        .unwrap_or_else(|payload| {
            if let Some(m) = metrics {
                m.record_panic(
                    job.request.method.as_str(),
                    &job.request.path,
                    &panic_message(payload.as_ref()),
                );
            }
            Response::json_with_status(
                StatusCode::INTERNAL_SERVER_ERROR,
                &serde_json::json!({ "error": "internal server error" }),
            )
        });
        response.set_connection(job.close);
        if let Some(m) = metrics {
            m.record_response(response.status.0);
        }
        // A send error means the shard is gone (force-closed during
        // drain); the response has nowhere to go.
        let _ = job.reply.send(Completion { token: job.token, close: job.close, response });
        job.waker.wake();
        if let Some(m) = metrics {
            m.workers_busy.dec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::http::{Method, Request};

    fn echo_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_req, _p| Response::json(&serde_json::json!({ "pong": true })));
        r.post("/echo", |req, _p| match req.json() {
            Ok(v) => Response::json(&v),
            Err(_) => Response::bad_request("not json"),
        });
        r.get("/tests/:id", |_req, p| {
            Response::json(&serde_json::json!({ "id": p.get("id").unwrap_or("") }))
        });
        r
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let addr = server.local_addr();
        let resp = client::get(addr, "/ping").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.json_body().unwrap()["pong"], serde_json::json!(true));
        server.shutdown();
    }

    #[test]
    fn drain_hook_runs_once_after_workers_join() {
        use std::sync::atomic::AtomicUsize;
        let fired = Arc::new(AtomicUsize::new(0));
        let mut server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let hook_fired = Arc::clone(&fired);
        server.set_drain_hook(move || {
            hook_fired.fetch_add(1, Ordering::SeqCst);
        });
        let resp = client::get(server.local_addr(), "/ping").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(fired.load(Ordering::SeqCst), 0, "hook must not fire while serving");
        let report = server.shutdown();
        assert!(report.completed);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires exactly once on drain");
    }

    #[test]
    fn drain_hook_fires_on_drop_too() {
        use std::sync::atomic::AtomicUsize;
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let mut server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
            let hook_fired = Arc::clone(&fired);
            server.set_drain_hook(move || {
                hook_fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "drop-path shutdown still checkpoints");
    }

    #[test]
    fn post_roundtrip() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let body = serde_json::json!({"answer": "Left", "worker": "w-9"});
        let resp = client::post_json(server.local_addr(), "/echo", &body).unwrap();
        assert_eq!(resp.json_body().unwrap(), body);
        server.shutdown();
    }

    #[test]
    fn path_params_over_the_wire() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let resp = client::get(server.local_addr(), "/tests/t-777").unwrap();
        assert_eq!(resp.json_body().unwrap()["id"], serde_json::json!("t-777"));
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        let resp = client::get(server.local_addr(), "/nope").unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 4).unwrap();
        let addr = server.local_addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for _ in 0..20 {
                        let resp = client::get(addr, "/ping").unwrap();
                        assert_eq!(resp.status, StatusCode::OK);
                    }
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn session_reuses_one_connection() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        let mut session = client::Session::new(server.local_addr());
        for _ in 0..5 {
            let resp = session.get("/ping").unwrap();
            assert_eq!(resp.status, StatusCode::OK);
        }
        let stats = session.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.reuses, 4, "4 of 5 requests must ride the first socket");
        assert_eq!(stats.reconnects, 0);
        server.shutdown();
    }

    #[test]
    fn request_cap_closes_but_session_reconnects() {
        let mut config = ServerConfig::with_workers(1);
        config.max_requests_per_connection = 3;
        let server =
            HttpServer::bind_with_config("127.0.0.1:0", echo_router(), config, None).unwrap();
        let mut session = client::Session::new(server.local_addr());
        for _ in 0..7 {
            assert_eq!(session.get("/ping").unwrap().status, StatusCode::OK);
        }
        // Connections are capped at 3 requests: 7 requests need ≥ 3
        // connections, and the session must have renewed transparently.
        assert!(session.stats().reconnects >= 1 || session.stats().connects >= 3);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let server = HttpServer::bind("127.0.0.1:0", echo_router(), 2).unwrap();
        let addr = server.local_addr();
        // Prove the server worked before shutdown.
        assert_eq!(client::get(addr, "/ping").unwrap().status, StatusCode::OK);
        let report = server.shutdown();
        // Every worker thread actually joined within the drain deadline.
        assert_eq!(report.workers_total, 2);
        assert_eq!(report.workers_joined, 2, "workers must join on shutdown");
        assert!(report.completed);
        // After shutdown the listener is gone: a full request must fail
        // (the connect is refused once the last shard has exited and
        // dropped the listener).
        let result = client::request(addr, Request::new(Method::Get, "/ping"));
        assert!(result.is_err(), "server must not serve requests after shutdown");
        // Dropping another server also shuts down cleanly.
        let s2 = HttpServer::bind("127.0.0.1:0", echo_router(), 1).unwrap();
        drop(s2);
    }
}
