//! The core server's REST API.
//!
//! Maps the paper's four core-server functions onto routes:
//!
//! | Function | Route |
//! |---|---|
//! | post the test task to the crowdsourcing platform | `POST /api/platform/jobs`, `GET /api/platform/jobs` |
//! | provide test resources to the browser extension | `GET /api/tests/:id`, `GET /api/tests/:id/pages`, `GET /api/tests/:id/pages/*file` |
//! | collect responses from participants | `POST /api/tests/:id/responses`, `GET /api/tests/:id/responses` |
//! | conclude the final results | `GET /api/tests/:id/results` |

use crate::http::Response;
use crate::router::Router;
use kscope_store::{Database, GridStore, PersistError};
use kscope_telemetry::Registry;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Collection holding test information documents.
pub const TESTS_COLLECTION: &str = "tests";
/// Collection holding integrated-webpage metadata.
pub const PAGES_COLLECTION: &str = "integrated_pages";
/// Collection holding participant responses.
pub const RESPONSES_COLLECTION: &str = "responses";
/// Collection holding crowdsourcing-platform job postings.
pub const JOBS_COLLECTION: &str = "jobs";
/// Collection holding in-flight session leases (heartbeat tracking).
pub const SESSIONS_COLLECTION: &str = "sessions";

/// Default session lease in ms when the heartbeat body names none.
pub const DEFAULT_LEASE_MS: u64 = 120_000;

/// Unique index answering `tests(test_id)` point lookups — test fetches
/// and the create-test existence check.
pub const TESTS_BY_ID_INDEX: &str = "tests_by_test_id";
/// Unique index on the intake idempotency triple
/// `responses(test_id, contributor_id, submission_id)`.
pub const RESPONSES_BY_SUBMISSION_INDEX: &str = "responses_by_submission";
/// Non-unique index answering per-test response listings and result
/// conclusion without a full scan.
pub const RESPONSES_BY_TEST_INDEX: &str = "responses_by_test";
/// Unique index on `sessions(test_id, contributor_id)` — the heartbeat
/// register-or-refresh key.
pub const SESSIONS_BY_WORKER_INDEX: &str = "sessions_by_worker";
/// Ordered index on `sessions(test_id, deadline_ms)` — lease-expiry
/// sweeps become a range scan, earliest deadline first.
pub const SESSIONS_BY_DEADLINE_INDEX: &str = "sessions_by_deadline";

/// How long a 507 tells writers to wait before retrying. The background
/// compactor polls on a sub-second interval, so one checkpoint cycle is
/// usually enough to clear read-only mode.
const STORAGE_RETRY_AFTER_SECS: u64 = 5;

/// Maps a persistence rejection onto the wire: a store that entered
/// read-only mode under disk pressure answers every write with
/// `507 Insufficient Storage` plus a `retry-after` hint, so clients
/// back off while the compactor frees WAL space instead of hammering
/// a store that cannot accept their data.
fn persist_unavailable(err: &PersistError) -> Response {
    Response::overloaded(
        crate::http::StatusCode::INSUFFICIENT_STORAGE,
        &format!("{err}"),
        STORAGE_RETRY_AFTER_SECS,
    )
}

/// Declares the server's secondary indexes on `db`. Idempotent: reopened
/// durable databases replay their `ensure_index` records and this becomes
/// a no-op. Called from [`CoreServerApi::new`]; exposed so benches and
/// tools hitting the collections directly can match the server's plan.
pub fn declare_indexes(db: &Database) {
    let tests = db.collection(TESTS_COLLECTION);
    tests.ensure_index(TESTS_BY_ID_INDEX, &["test_id"], true);
    let responses = db.collection(RESPONSES_COLLECTION);
    responses.ensure_index(
        RESPONSES_BY_SUBMISSION_INDEX,
        &["test_id", "contributor_id", "submission_id"],
        true,
    );
    responses.ensure_index(RESPONSES_BY_TEST_INDEX, &["test_id"], false);
    let sessions = db.collection(SESSIONS_COLLECTION);
    sessions.ensure_index(SESSIONS_BY_WORKER_INDEX, &["test_id", "contributor_id"], true);
    sessions.ensure_index(SESSIONS_BY_DEADLINE_INDEX, &["test_id", "deadline_ms"], false);
}

/// The core-server API: a [`Database`] + [`GridStore`] pair exposed over
/// HTTP routes, optionally instrumented on a shared [`Registry`].
#[derive(Debug, Clone)]
pub struct CoreServerApi {
    db: Database,
    grid: GridStore,
    telemetry: Option<Arc<Registry>>,
}

impl CoreServerApi {
    /// Creates the API over existing storage and declares the secondary
    /// indexes the handlers plan against (see [`declare_indexes`]).
    pub fn new(db: Database, grid: GridStore) -> Self {
        declare_indexes(&db);
        Self { db, grid, telemetry: None }
    }

    /// Attaches a metric registry (builder style). The router gains
    /// `GET /metrics` (Prometheus text exposition) and `GET /healthz`
    /// reports uptime and worker liveness; the database counts
    /// per-collection operations; every route is counted and timed.
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.db = self.db.clone().with_telemetry(&registry);
        self.telemetry = Some(registry);
        self
    }

    /// The backing database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The backing file store.
    pub fn grid(&self) -> &GridStore {
        &self.grid
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// Builds the router exposing all endpoints.
    pub fn into_router(self) -> Router {
        let mut router = Router::new();
        let db = self.db.clone();
        let grid = self.grid.clone();
        if let Some(registry) = &self.telemetry {
            router.set_telemetry(registry);
        }

        // --- Observability -----------------------------------------------
        {
            let telemetry = self.telemetry.clone();
            router.get("/healthz", move |_req, _p| {
                let body = match &telemetry {
                    Some(registry) => {
                        let workers_total =
                            registry.gauge_value("server.workers_total", &[]).unwrap_or(0);
                        let workers_busy =
                            registry.gauge_value("server.workers_busy", &[]).unwrap_or(0);
                        json!({
                            "ok": true,
                            "uptime_s": registry.uptime().as_secs_f64(),
                            "workers": {
                                "total": workers_total,
                                "busy": workers_busy,
                                "idle": (workers_total - workers_busy).max(0),
                            },
                            "accept_queue_depth": registry
                                .gauge_value("server.accept_queue_depth", &[])
                                .unwrap_or(0),
                            "handler_panics": registry
                                .counter_value("server.handler_panics", &[])
                                .unwrap_or(0),
                        })
                    }
                    None => json!({ "ok": true }),
                };
                Response::json(&body)
            });
        }
        if let Some(registry) = &self.telemetry {
            let registry = Arc::clone(registry);
            router.get("/metrics", move |_req, _p| {
                Response::content(
                    "text/plain; version=0.0.4; charset=utf-8",
                    registry.render_prometheus().into_bytes(),
                )
            });
        }

        // --- Test information -------------------------------------------
        {
            let db = db.clone();
            router.post("/api/tests", move |req, _p| {
                let body = match req.json() {
                    Ok(v) => v,
                    Err(_) => return Response::bad_request("body must be JSON"),
                };
                let test_id = match body.get("test_id").and_then(Value::as_str) {
                    Some(id) if !id.is_empty() => id.to_string(),
                    _ => return Response::bad_request("test_id is required"),
                };
                // Atomic check-and-insert: two racing creates of the same
                // test_id cannot both pass a separate existence check.
                let tests = db.collection(TESTS_COLLECTION);
                match tests.try_insert_if_absent(&json!({ "test_id": test_id }), body) {
                    Ok(Ok(oid)) => Response::json_with_status(
                        crate::http::StatusCode::CREATED,
                        &json!({ "_id": oid.as_str(), "test_id": test_id }),
                    ),
                    Ok(Err(_)) => Response::bad_request("test_id already exists"),
                    Err(e) => persist_unavailable(&e),
                }
            });
        }
        {
            let db = db.clone();
            router.get("/api/tests", move |_req, _p| {
                let ids: Vec<Value> = db
                    .collection(TESTS_COLLECTION)
                    .all()
                    .into_iter()
                    .filter_map(|d| d.get("test_id").cloned())
                    .collect();
                Response::json(&json!({ "tests": ids }))
            });
        }
        {
            let db = db.clone();
            router.get("/api/tests/:id", move |_req, p| {
                let id = p.get("id").unwrap_or("");
                match db.collection(TESTS_COLLECTION).find_one(&json!({ "test_id": id })) {
                    Some(doc) => Response::json(&doc),
                    None => Response::not_found("no such test"),
                }
            });
        }

        // --- Integrated pages (resources for the extension) --------------
        {
            let db = db.clone();
            router.get("/api/tests/:id/pairs", move |_req, p| {
                let id = p.get("id").unwrap_or("");
                let docs = db.collection(PAGES_COLLECTION).find(&json!({ "test_id": id }));
                Response::json(&json!({ "test_id": id, "pairs": docs }))
            });
        }
        {
            let grid = grid.clone();
            router.get("/api/tests/:id/pages", move |_req, p| {
                let id = p.get("id").unwrap_or("");
                Response::json(&json!({ "test_id": id, "pages": grid.list(id) }))
            });
        }
        {
            let grid = grid.clone();
            router.get("/api/tests/:id/pages/*file", move |_req, p| {
                let id = p.get("id").unwrap_or("");
                let file = p.get("file").unwrap_or("");
                match grid.get(id, file) {
                    Some(bytes) => Response::content("text/html; charset=utf-8", bytes.to_vec()),
                    None => Response::not_found("no such page"),
                }
            });
        }

        // --- Participant responses ---------------------------------------
        {
            let db = db.clone();
            let telemetry = self.telemetry.clone();
            router.post("/api/tests/:id/responses", move |req, p| {
                let id = p.get("id").unwrap_or("").to_string();
                let mut body = match req.json() {
                    Ok(v) => v,
                    Err(_) => return Response::bad_request("body must be JSON"),
                };
                if !body.is_object() {
                    return Response::bad_request("response must be a JSON object");
                }
                if db.collection(TESTS_COLLECTION).find_one(&json!({ "test_id": id })).is_none() {
                    return Response::not_found("no such test");
                }
                body.as_object_mut()
                    .expect("checked is_object")
                    .insert("test_id".to_string(), Value::String(id.clone()));
                // Idempotency: an upload carrying (contributor_id,
                // submission_id) is deduplicated against the same triple —
                // a disconnect-then-retry client replaying the POST gets
                // the original row back with 200, never a second 201.
                let contributor = body.get("contributor_id").and_then(Value::as_str);
                let submission = body.get("submission_id").and_then(Value::as_str);
                if let (Some(contributor), Some(submission)) = (contributor, submission) {
                    let key = json!({
                        "test_id": id,
                        "contributor_id": contributor,
                        "submission_id": submission,
                    });
                    return match db
                        .collection(RESPONSES_COLLECTION)
                        .try_insert_if_absent(&key, body)
                    {
                        Ok(Ok(oid)) => Response::json_with_status(
                            crate::http::StatusCode::CREATED,
                            &json!({ "_id": oid.as_str() }),
                        ),
                        Ok(Err(existing)) => {
                            if let Some(registry) = &telemetry {
                                registry.counter("server.responses_deduped_total").inc();
                                registry.counter("server.upload_retries_total").inc();
                            }
                            Response::json(&json!({
                                "_id": existing.as_str(),
                                "deduped": true,
                            }))
                        }
                        Err(e) => persist_unavailable(&e),
                    };
                }
                // Legacy clients without an idempotency key keep the old
                // always-insert behaviour.
                match db.collection(RESPONSES_COLLECTION).try_insert_one(body) {
                    Ok(oid) => Response::json_with_status(
                        crate::http::StatusCode::CREATED,
                        &json!({ "_id": oid.as_str() }),
                    ),
                    Err(e) => persist_unavailable(&e),
                }
            });
        }
        {
            let db = db.clone();
            router.get("/api/tests/:id/responses", move |req, p| {
                let id = p.get("id").unwrap_or("");
                let mut docs = db.collection(RESPONSES_COLLECTION).find(&json!({ "test_id": id }));
                // Pagination: ?offset=N&limit=M (insertion order).
                let offset: usize =
                    req.query_param("offset").and_then(|v| v.parse().ok()).unwrap_or(0);
                let limit: usize =
                    req.query_param("limit").and_then(|v| v.parse().ok()).unwrap_or(usize::MAX);
                let total = docs.len();
                docs = docs.into_iter().skip(offset).take(limit).collect();
                Response::json(&json!({
                    "total": total,
                    "offset": offset,
                    "responses": docs,
                }))
            });
        }

        // --- Result conclusion --------------------------------------------
        {
            let db = db.clone();
            let telemetry = self.telemetry.clone();
            router.get("/api/tests/:id/results", move |req, p| {
                // Result aggregation walks every stored response; if the
                // caller's propagated deadline budget is already spent,
                // bail before the scan rather than compute an answer
                // nobody is waiting for.
                if req.remaining_budget_ms().is_some_and(|ms| ms <= 0) {
                    if let Some(registry) = &telemetry {
                        registry.counter("server.expired_handler_total").inc();
                    }
                    return Response::overloaded(
                        crate::http::StatusCode::GATEWAY_TIMEOUT,
                        "deadline expired before aggregation",
                        1,
                    );
                }
                let id = p.get("id").unwrap_or("");
                let docs = db.collection(RESPONSES_COLLECTION).find(&json!({ "test_id": id }));
                Response::json(&summarize_responses(id, &docs))
            });
        }

        // --- Crowdsourcing platform hand-off ------------------------------
        {
            let db = db.clone();
            router.post("/api/platform/jobs", move |req, _p| {
                let body = match req.json() {
                    Ok(v) => v,
                    Err(_) => return Response::bad_request("body must be JSON"),
                };
                if body.get("test_id").and_then(Value::as_str).is_none() {
                    return Response::bad_request("job must reference a test_id");
                }
                // A malformed posting would recruit nobody (or at a
                // nonsense price) — reject it before it reaches the
                // platform hand-off.
                match body.get("quota") {
                    Some(q) => match q.as_u64() {
                        Some(n) if n > 0 => {}
                        _ => return Response::bad_request("quota must be a positive integer"),
                    },
                    None => return Response::bad_request("quota must be a positive integer"),
                }
                if let Some(reward) = body.get("reward_usd") {
                    match reward.as_f64() {
                        Some(r) if r >= 0.0 => {}
                        _ => {
                            return Response::bad_request(
                                "reward_usd must be a non-negative number",
                            )
                        }
                    }
                }
                match db.collection(JOBS_COLLECTION).try_insert_one(body) {
                    Ok(oid) => Response::json_with_status(
                        crate::http::StatusCode::CREATED,
                        &json!({ "job_id": oid.as_str() }),
                    ),
                    Err(e) => persist_unavailable(&e),
                }
            });
        }
        {
            let db = db.clone();
            router.get("/api/platform/jobs", move |_req, _p| {
                Response::json(&Value::Array(db.collection(JOBS_COLLECTION).all()))
            });
        }

        // --- Session leases & heartbeats ----------------------------------
        // The extension heartbeats while a tester works; the supervisor
        // reads the listing to reclaim expired leases and requeue slots.
        {
            let db = db.clone();
            router.post("/api/tests/:id/sessions/:cid/heartbeat", move |req, p| {
                let id = p.get("id").unwrap_or("").to_string();
                let cid = p.get("cid").unwrap_or("").to_string();
                if cid.is_empty() {
                    return Response::bad_request("contributor id is required");
                }
                if db.collection(TESTS_COLLECTION).find_one(&json!({ "test_id": id })).is_none() {
                    return Response::not_found("no such test");
                }
                let lease_ms = req
                    .json()
                    .ok()
                    .and_then(|b| b.get("lease_ms").and_then(Value::as_u64))
                    .unwrap_or(DEFAULT_LEASE_MS);
                let now_ms = epoch_ms();
                let sessions = db.collection(SESSIONS_COLLECTION);
                let key = json!({ "test_id": id, "contributor_id": cid });
                let seed = json!({
                    "test_id": id,
                    "contributor_id": cid,
                    "lease_ms": lease_ms,
                    "heartbeats": 0u64,
                    "first_seen_ms": now_ms,
                    "last_heartbeat_ms": 0u64,
                    "deadline_ms": 0u64,
                });
                // Register-or-refresh is one atomic read-modify-write:
                // concurrent heartbeats for the same session each land
                // their increment, and `last_heartbeat_ms` only moves
                // forward ($max semantics), so a slow request cannot roll
                // the lease back to an older timestamp.
                let upserted = sessions.try_upsert_mutate(&key, seed, |d| {
                    if let Some(obj) = d.as_object_mut() {
                        let beats = obj.get("heartbeats").and_then(Value::as_u64).unwrap_or(0) + 1;
                        obj.insert("heartbeats".to_string(), json!(beats));
                        let last = obj
                            .get("last_heartbeat_ms")
                            .and_then(Value::as_u64)
                            .unwrap_or(0)
                            .max(now_ms);
                        obj.insert("last_heartbeat_ms".to_string(), json!(last));
                        obj.insert("lease_ms".to_string(), json!(lease_ms));
                        // Materialize the expiry deadline on the document
                        // so the (test_id, deadline_ms) index answers
                        // "which leases expired?" as an ordered range scan
                        // instead of recomputing last+lease per doc.
                        obj.insert("deadline_ms".to_string(), json!(last + lease_ms));
                    }
                });
                let doc = match upserted {
                    Ok(doc) => doc,
                    Err(e) => return persist_unavailable(&e),
                };
                let beats = doc.get("heartbeats").and_then(Value::as_u64).unwrap_or(1);
                let deadline =
                    doc.get("deadline_ms").and_then(Value::as_u64).unwrap_or(now_ms + lease_ms);
                Response::json(&json!({
                    "test_id": id,
                    "contributor_id": cid,
                    "lease_ms": lease_ms,
                    "heartbeats": beats,
                    "deadline_ms": deadline,
                }))
            });
        }
        {
            let db = db.clone();
            router.get("/api/tests/:id/sessions", move |_req, p| {
                let id = p.get("id").unwrap_or("");
                let now_ms = epoch_ms();
                let mut in_flight = 0u64;
                let mut expired = 0u64;
                // Ordered range scan over (test_id, deadline_ms): all of
                // this test's sessions, soonest-to-expire first — the
                // supervisor reads expired leases off the front.
                let docs: Vec<Value> = db
                    .collection(SESSIONS_COLLECTION)
                    .range_by_index(
                        SESSIONS_BY_DEADLINE_INDEX,
                        Some(&[json!(id)]),
                        Some(&[json!(id)]),
                    )
                    .into_iter()
                    .map(|mut d| {
                        let deadline =
                            d.get("deadline_ms").and_then(Value::as_u64).unwrap_or_else(|| {
                                // Legacy docs from before deadlines were
                                // materialized.
                                let last =
                                    d.get("last_heartbeat_ms").and_then(Value::as_u64).unwrap_or(0);
                                let lease = d
                                    .get("lease_ms")
                                    .and_then(Value::as_u64)
                                    .unwrap_or(DEFAULT_LEASE_MS);
                                last.saturating_add(lease)
                            });
                        let is_expired = now_ms > deadline;
                        if is_expired {
                            expired += 1;
                        } else {
                            in_flight += 1;
                        }
                        if let Some(obj) = d.as_object_mut() {
                            obj.insert("expired".to_string(), Value::Bool(is_expired));
                        }
                        d
                    })
                    .collect();
                Response::json(&json!({
                    "test_id": id,
                    "in_flight": in_flight,
                    "expired": expired,
                    "sessions": docs,
                }))
            });
        }

        router
    }
}

/// Wall-clock milliseconds since the Unix epoch, used to timestamp
/// session heartbeats.
fn epoch_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Aggregates raw responses into per-question answer counts — the core
/// server's "conclude the final results" step. Returns
/// `{test_id, total, questions: {q: {answer: count}}}`.
pub fn summarize_responses(test_id: &str, responses: &[Value]) -> Value {
    let mut questions: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for resp in responses {
        let answers = match resp.get("answers").and_then(Value::as_object) {
            Some(a) => a,
            None => continue,
        };
        for (question, answer) in answers {
            let answer_text = match answer {
                Value::String(s) => s.clone(),
                other => other.to_string(),
            };
            *questions.entry(question.clone()).or_default().entry(answer_text).or_insert(0) += 1;
        }
    }
    json!({
        "test_id": test_id,
        "total": responses.len(),
        "questions": questions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::server::HttpServer;
    use std::net::SocketAddr;

    fn start() -> (HttpServer, SocketAddr, Database, GridStore) {
        let db = Database::new();
        let grid = GridStore::new();
        let api = CoreServerApi::new(db.clone(), grid.clone());
        let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
        let addr = server.local_addr();
        (server, addr, db, grid)
    }

    #[test]
    fn health_check() {
        let (server, addr, _, _) = start();
        let resp = client::get(addr, "/healthz").unwrap();
        assert_eq!(resp.json_body().unwrap()["ok"], json!(true));
        server.shutdown();
    }

    #[test]
    fn create_and_fetch_test() {
        let (server, addr, _, _) = start();
        let body = json!({"test_id": "font-study", "participant_num": 100});
        let resp = client::post_json(addr, "/api/tests", &body).unwrap();
        assert_eq!(resp.status.0, 201);
        let fetched = client::get(addr, "/api/tests/font-study").unwrap();
        assert_eq!(fetched.json_body().unwrap()["participant_num"], json!(100));
        // Duplicate id rejected.
        let dup = client::post_json(addr, "/api/tests", &body).unwrap();
        assert_eq!(dup.status.0, 400);
        server.shutdown();
    }

    #[test]
    fn pairs_endpoint_reads_integrated_pages_collection() {
        let (server, addr, db, _) = start();
        db.collection(PAGES_COLLECTION).insert_one(json!({
            "test_id": "t1", "name": "integrated-000.html", "left": 0, "right": 1,
            "control": null,
        }));
        db.collection(PAGES_COLLECTION).insert_one(json!({
            "test_id": "other", "name": "integrated-000.html", "left": 0, "right": 1,
            "control": null,
        }));
        let resp = client::get(addr, "/api/tests/t1/pairs").unwrap();
        let body = resp.json_body().unwrap();
        assert_eq!(body["pairs"].as_array().unwrap().len(), 1);
        assert_eq!(body["pairs"][0]["name"], json!("integrated-000.html"));
        server.shutdown();
    }

    #[test]
    fn list_tests_endpoint() {
        let (server, addr, _, _) = start();
        client::post_json(addr, "/api/tests", &json!({"test_id": "alpha"})).unwrap();
        client::post_json(addr, "/api/tests", &json!({"test_id": "beta"})).unwrap();
        let listing = client::get(addr, "/api/tests").unwrap();
        assert_eq!(listing.json_body().unwrap()["tests"], json!(["alpha", "beta"]));
        server.shutdown();
    }

    #[test]
    fn create_test_requires_id() {
        let (server, addr, _, _) = start();
        let resp = client::post_json(addr, "/api/tests", &json!({"x": 1})).unwrap();
        assert_eq!(resp.status.0, 400);
        server.shutdown();
    }

    #[test]
    fn pages_served_from_grid() {
        let (server, addr, _, grid) = start();
        grid.put("t1", "integrated-0.html", b"<html>pair 0</html>".to_vec());
        grid.put("t1", "integrated-1.html", b"<html>pair 1</html>".to_vec());
        let list = client::get(addr, "/api/tests/t1/pages").unwrap();
        assert_eq!(
            list.json_body().unwrap()["pages"],
            json!(["integrated-0.html", "integrated-1.html"])
        );
        let page = client::get(addr, "/api/tests/t1/pages/integrated-1.html").unwrap();
        assert_eq!(page.text(), "<html>pair 1</html>");
        let missing = client::get(addr, "/api/tests/t1/pages/zzz.html").unwrap();
        assert_eq!(missing.status.0, 404);
        server.shutdown();
    }

    #[test]
    fn responses_roundtrip_and_results() {
        let (server, addr, _, _) = start();
        client::post_json(addr, "/api/tests", &json!({"test_id": "t9"})).unwrap();
        for answer in ["Left", "Right", "Right"] {
            let body = json!({
                "worker_id": "w",
                "answers": { "Which font is more readable?": answer }
            });
            let resp = client::post_json(addr, "/api/tests/t9/responses", &body).unwrap();
            assert_eq!(resp.status.0, 201);
        }
        let all = client::get(addr, "/api/tests/t9/responses").unwrap();
        let body = all.json_body().unwrap();
        assert_eq!(body["total"], json!(3));
        assert_eq!(body["responses"].as_array().unwrap().len(), 3);
        // Pagination slices in insertion order.
        let page = client::get(addr, "/api/tests/t9/responses?offset=1&limit=1").unwrap();
        let page_body = page.json_body().unwrap();
        assert_eq!(page_body["total"], json!(3));
        assert_eq!(page_body["responses"].as_array().unwrap().len(), 1);
        let results = client::get(addr, "/api/tests/t9/results").unwrap();
        let body = results.json_body().unwrap();
        assert_eq!(body["total"], json!(3));
        assert_eq!(body["questions"]["Which font is more readable?"]["Right"], json!(2));
        server.shutdown();
    }

    #[test]
    fn response_to_unknown_test_is_404() {
        let (server, addr, _, _) = start();
        let resp =
            client::post_json(addr, "/api/tests/ghost/responses", &json!({"answers": {}})).unwrap();
        assert_eq!(resp.status.0, 404);
        server.shutdown();
    }

    #[test]
    fn platform_jobs() {
        let (server, addr, db, _) = start();
        let resp = client::post_json(
            addr,
            "/api/platform/jobs",
            &json!({"test_id": "t1", "reward_usd": 0.11, "quota": 100}),
        )
        .unwrap();
        assert_eq!(resp.status.0, 201);
        assert_eq!(db.collection(JOBS_COLLECTION).len(), 1);
        let listing = client::get(addr, "/api/platform/jobs").unwrap();
        assert_eq!(listing.json_body().unwrap().as_array().unwrap().len(), 1);
        let bad = client::post_json(addr, "/api/platform/jobs", &json!({"quota": 5})).unwrap();
        assert_eq!(bad.status.0, 400);
        server.shutdown();
    }

    #[test]
    fn response_replay_is_idempotent() {
        let db = Database::new();
        let grid = GridStore::new();
        let registry = std::sync::Arc::new(Registry::new());
        let api =
            CoreServerApi::new(db.clone(), grid).with_telemetry(std::sync::Arc::clone(&registry));
        let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
        let addr = server.local_addr();

        client::post_json(addr, "/api/tests", &json!({"test_id": "t-idem"})).unwrap();
        let body = json!({
            "contributor_id": "w-1",
            "submission_id": "sub-w-1-000001",
            "answers": {"q": "Left"},
        });
        let first = client::post_json(addr, "/api/tests/t-idem/responses", &body).unwrap();
        assert_eq!(first.status.0, 201);
        let original_id = first.json_body().unwrap()["_id"].as_str().unwrap().to_string();

        // The retry replays the exact same body: same row, 200 not 201.
        let replay = client::post_json(addr, "/api/tests/t-idem/responses", &body).unwrap();
        assert_eq!(replay.status.0, 200);
        let replay_body = replay.json_body().unwrap();
        assert_eq!(replay_body["_id"].as_str().unwrap(), original_id);
        assert_eq!(replay_body["deduped"], json!(true));
        assert_eq!(db.collection(RESPONSES_COLLECTION).len(), 1);
        assert_eq!(registry.counter_value("server.responses_deduped_total", &[]), Some(1));
        assert_eq!(registry.counter_value("server.upload_retries_total", &[]), Some(1));

        // A different submission id from the same contributor is new work.
        let second = json!({
            "contributor_id": "w-1",
            "submission_id": "sub-w-1-000002",
            "answers": {"q": "Right"},
        });
        let resp = client::post_json(addr, "/api/tests/t-idem/responses", &second).unwrap();
        assert_eq!(resp.status.0, 201);
        assert_eq!(db.collection(RESPONSES_COLLECTION).len(), 2);
        server.shutdown();
    }

    #[test]
    fn concurrent_test_creates_admit_exactly_one() {
        let (server, addr, db, _) = start();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(std::thread::spawn(move || {
                let resp = client::post_json(
                    addr,
                    "/api/tests",
                    &json!({"test_id": "race", "participant_num": 10}),
                )
                .unwrap();
                resp.status.0
            }));
        }
        let statuses: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(statuses.iter().filter(|s| **s == 201).count(), 1);
        assert_eq!(statuses.iter().filter(|s| **s == 400).count(), 7);
        assert_eq!(db.collection(TESTS_COLLECTION).find(&json!({"test_id": "race"})).len(), 1);
        server.shutdown();
    }

    #[test]
    fn job_validation_rejects_garbage() {
        let (server, addr, db, _) = start();
        for bad in [
            json!({"test_id": "t", "quota": 0}),
            json!({"test_id": "t", "quota": -3}),
            json!({"test_id": "t", "quota": "many"}),
            json!({"test_id": "t"}),
            json!({"test_id": "t", "quota": 10, "reward_usd": -0.5}),
            json!({"test_id": "t", "quota": 10, "reward_usd": "cheap"}),
        ] {
            let resp = client::post_json(addr, "/api/platform/jobs", &bad).unwrap();
            assert_eq!(resp.status.0, 400, "payload should be rejected: {bad}");
        }
        assert_eq!(db.collection(JOBS_COLLECTION).len(), 0);
        // A well-formed job without a reward is still acceptable.
        let ok =
            client::post_json(addr, "/api/platform/jobs", &json!({"test_id": "t", "quota": 10}))
                .unwrap();
        assert_eq!(ok.status.0, 201);
        server.shutdown();
    }

    #[test]
    fn heartbeat_tracks_session_leases() {
        let (server, addr, _, _) = start();
        client::post_json(addr, "/api/tests", &json!({"test_id": "t-hb"})).unwrap();

        let ghost =
            client::post_json(addr, "/api/tests/ghost/sessions/w-1/heartbeat", &json!({})).unwrap();
        assert_eq!(ghost.status.0, 404);

        let beat = client::post_json(
            addr,
            "/api/tests/t-hb/sessions/w-1/heartbeat",
            &json!({"lease_ms": 60000}),
        )
        .unwrap();
        assert_eq!(beat.status.0, 200);
        let beat_body = beat.json_body().unwrap();
        assert_eq!(beat_body["heartbeats"], json!(1));
        assert_eq!(beat_body["lease_ms"], json!(60000));

        let again = client::post_json(
            addr,
            "/api/tests/t-hb/sessions/w-1/heartbeat",
            &json!({"lease_ms": 60000}),
        )
        .unwrap();
        assert_eq!(again.json_body().unwrap()["heartbeats"], json!(2));

        // A lease that has already run out is reported expired.
        client::post_json(addr, "/api/tests/t-hb/sessions/w-2/heartbeat", &json!({"lease_ms": 0}))
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let listing = client::get(addr, "/api/tests/t-hb/sessions").unwrap();
        let body = listing.json_body().unwrap();
        assert_eq!(body["sessions"].as_array().unwrap().len(), 2);
        assert_eq!(body["in_flight"], json!(1));
        assert_eq!(body["expired"], json!(1));
        let w2 = body["sessions"]
            .as_array()
            .unwrap()
            .iter()
            .find(|s| s["contributor_id"] == json!("w-2"))
            .unwrap();
        assert_eq!(w2["expired"], json!(true));
        server.shutdown();
    }

    #[test]
    fn concurrent_heartbeats_lose_no_increments() {
        let (server, addr, db, _) = start();
        client::post_json(addr, "/api/tests", &json!({"test_id": "t-race"})).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let resp = client::post_json(
                        addr,
                        "/api/tests/t-race/sessions/w-1/heartbeat",
                        &json!({"lease_ms": 60000}),
                    )
                    .unwrap();
                    assert_eq!(resp.status.0, 200);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The counter is a single atomic read-modify-write: 40 racing
        // heartbeats must land exactly 40 increments on one document.
        let docs = db.collection(SESSIONS_COLLECTION).find(&json!({"test_id": "t-race"}));
        assert_eq!(docs.len(), 1, "one session document per (test, contributor)");
        assert_eq!(docs[0]["heartbeats"], json!(40), "no lost heartbeat increments");
        server.shutdown();
    }

    #[test]
    fn sessions_listing_is_deadline_ordered_and_indexed() {
        let db = Database::new();
        let registry = std::sync::Arc::new(Registry::new());
        let api = CoreServerApi::new(db.clone(), GridStore::new())
            .with_telemetry(std::sync::Arc::clone(&registry));
        let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
        let addr = server.local_addr();
        client::post_json(addr, "/api/tests", &json!({"test_id": "t-ord"})).unwrap();
        // w-slow holds a long lease, w-fast a short one: the listing must
        // come back soonest-deadline-first regardless of heartbeat order.
        client::post_json(
            addr,
            "/api/tests/t-ord/sessions/w-slow/heartbeat",
            &json!({"lease_ms": 3_600_000u64}),
        )
        .unwrap();
        client::post_json(
            addr,
            "/api/tests/t-ord/sessions/w-fast/heartbeat",
            &json!({"lease_ms": 1u64}),
        )
        .unwrap();
        let listing = client::get(addr, "/api/tests/t-ord/sessions").unwrap();
        let body = listing.json_body().unwrap();
        let order: Vec<&str> = body["sessions"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["contributor_id"].as_str().unwrap())
            .collect();
        assert_eq!(order, vec!["w-fast", "w-slow"]);
        // The listing went through the (test_id, deadline_ms) range
        // index, not a fallback scan over the collection.
        assert_eq!(
            registry.counter_value("store.index_range_scans_total", &[("collection", "sessions")]),
            Some(1)
        );
        server.shutdown();
    }

    #[test]
    fn read_only_store_answers_writes_with_507_until_compaction() {
        let dir = std::env::temp_dir().join(format!("kscope-api-507-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (db, _) = Database::open_durable(&dir).unwrap();
        let api = CoreServerApi::new(db.clone(), GridStore::new());
        let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
        let addr = server.local_addr();

        client::post_json(addr, "/api/tests", &json!({"test_id": "t-507"})).unwrap();

        // Disk pressure: the store refuses writes end-to-end. Every
        // write endpoint maps the rejection to 507 + retry-after, and
        // nothing is applied in memory that the WAL did not accept.
        assert!(db.force_read_only(true));
        let create = client::post_json(addr, "/api/tests", &json!({"test_id": "t-other"})).unwrap();
        assert_eq!(create.status.0, 507);
        assert!(create.retry_after().is_some(), "507 carries a retry-after hint");
        let upload = client::post_json(
            addr,
            "/api/tests/t-507/responses",
            &json!({"contributor_id": "w-1", "submission_id": "s-1", "answers": {"q": "Left"}}),
        )
        .unwrap();
        assert_eq!(upload.status.0, 507);
        let legacy = client::post_json(
            addr,
            "/api/tests/t-507/responses",
            &json!({"answers": {"q": "Left"}}),
        )
        .unwrap();
        assert_eq!(legacy.status.0, 507);
        let job = client::post_json(
            addr,
            "/api/platform/jobs",
            &json!({"test_id": "t-507", "quota": 10}),
        )
        .unwrap();
        assert_eq!(job.status.0, 507);
        let beat = client::post_json(
            addr,
            "/api/tests/t-507/sessions/w-1/heartbeat",
            &json!({"lease_ms": 60000}),
        )
        .unwrap();
        assert_eq!(beat.status.0, 507);
        assert_eq!(db.collection(RESPONSES_COLLECTION).len(), 0);
        assert_eq!(db.collection(SESSIONS_COLLECTION).len(), 0);

        // Reads still work while the store is read-only.
        let listing = client::get(addr, "/api/tests").unwrap();
        assert_eq!(listing.status.0, 200);

        // A checkpoint folds the WAL away and clears the mode; the
        // client's retry then lands normally.
        db.checkpoint().unwrap();
        let retry = client::post_json(
            addr,
            "/api/tests/t-507/responses",
            &json!({"contributor_id": "w-1", "submission_id": "s-1", "answers": {"q": "Left"}}),
        )
        .unwrap();
        assert_eq!(retry.status.0, 201);
        server.shutdown();
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summarize_ignores_malformed_responses() {
        let docs = vec![
            json!({"answers": {"q": "Left"}}),
            json!({"no_answers": true}),
            json!({"answers": {"q": "Left", "q2": "Same"}}),
        ];
        let summary = summarize_responses("t", &docs);
        assert_eq!(summary["total"], json!(3));
        assert_eq!(summary["questions"]["q"]["Left"], json!(2));
        assert_eq!(summary["questions"]["q2"]["Same"], json!(1));
    }
}
