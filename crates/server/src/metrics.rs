//! Server-level metrics: connection lifecycle, worker utilization, and
//! error accounting.
//!
//! All handles are registered once at bind time and shared with the
//! acceptor and worker threads, so per-request updates are single atomic
//! operations — the request hot path never touches a lock.

use kscope_telemetry::{Counter, EventLevel, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Bucket bounds for `server.shutdown_duration_ms`: drains are expected
/// in the tens-of-milliseconds to a-few-seconds range, far off the
/// default microsecond latency series.
const SHUTDOWN_BUCKETS_MS: &[u64] =
    &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000];

/// Pre-registered handles for everything [`crate::HttpServer`] measures.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Connections accepted by the acceptor (`server.accepted_total`).
    pub accepted_total: Counter,
    /// Connections sitting in the worker channel, waiting for a free
    /// worker (`server.accept_queue_depth`).
    pub accept_queue_depth: Gauge,
    /// Size of the worker pool (`server.workers_total`).
    pub workers_total: Gauge,
    /// Workers currently handling a connection (`server.workers_busy`).
    pub workers_busy: Gauge,
    /// Connections fully handled by workers (`server.connections_total`).
    pub connections_total: Counter,
    /// Handler panics converted to 500s (`server.handler_panics`).
    pub handler_panics: Counter,
    /// Malformed requests (`server.parse_errors_total`).
    pub parse_errors_total: Counter,
    /// Socket read/write timeouts (`server.timeout_errors_total`).
    pub timeout_errors_total: Counter,
    /// Requests rejected for declared bodies over the cap
    /// (`server.body_too_large_total`).
    pub body_too_large_total: Counter,
    /// Requests rejected for header blocks over the cap
    /// (`server.headers_too_large_total`).
    pub headers_too_large_total: Counter,
    /// Connections refused with a 503 because the worker queue was full
    /// (`server.shed_total`).
    pub shed_total: Counter,
    /// Requests 504-rejected at admission because their propagated
    /// deadline had already passed (`server.expired_admission_total`).
    pub expired_admission_total: Counter,
    /// Queued requests dropped at worker dequeue because their deadline
    /// expired while they waited — "never work for a dead request"
    /// (`server.expired_dequeued_total`).
    pub expired_dequeued_total: Counter,
    /// Handlers that bailed out mid-work because the remaining deadline
    /// budget hit zero (`server.expired_handler_total`).
    pub expired_handler_total: Counter,
    /// 1 while the server is draining in-flight connections during
    /// shutdown, else 0 (`server.draining`).
    pub draining: Gauge,
    /// Requests served on an already-used keep-alive connection — the
    /// per-request TCP handshakes saved
    /// (`server.keepalive_reuses_total`).
    pub keepalive_reuses_total: Counter,
    /// How long shutdown took to drain, milliseconds
    /// (`server.shutdown_duration_ms`).
    pub shutdown_duration_ms: Histogram,
    /// Connections currently registered across all reactor shards
    /// (`server.reactor_fds`).
    pub reactor_fds: Gauge,
    /// High-water mark of readiness events drained in one poll
    /// (`server.reactor_ready_peak`).
    pub reactor_ready_peak: Gauge,
    /// Live idle-timeout entries across all shard timer wheels
    /// (`server.reactor_timer_entries`).
    pub reactor_timer_entries: Gauge,
    /// Responses by status class, index `status/100 - 1`
    /// (`server.responses_total{class="2xx"}` …).
    pub responses_by_class: [Counter; 5],
}

impl ServerMetrics {
    /// Registers (or re-fetches) every server metric on `registry`.
    pub fn register(registry: &Arc<Registry>) -> Arc<Self> {
        let class_counter =
            |class: &str| registry.counter_with("server.responses_total", &[("class", class)]);
        Arc::new(Self {
            registry: Arc::clone(registry),
            accepted_total: registry.counter("server.accepted_total"),
            accept_queue_depth: registry.gauge("server.accept_queue_depth"),
            workers_total: registry.gauge("server.workers_total"),
            workers_busy: registry.gauge("server.workers_busy"),
            connections_total: registry.counter("server.connections_total"),
            handler_panics: registry.counter("server.handler_panics"),
            parse_errors_total: registry.counter("server.parse_errors_total"),
            timeout_errors_total: registry.counter("server.timeout_errors_total"),
            body_too_large_total: registry.counter("server.body_too_large_total"),
            headers_too_large_total: registry.counter("server.headers_too_large_total"),
            shed_total: registry.counter("server.shed_total"),
            expired_admission_total: registry.counter("server.expired_admission_total"),
            expired_dequeued_total: registry.counter("server.expired_dequeued_total"),
            expired_handler_total: registry.counter("server.expired_handler_total"),
            draining: registry.gauge("server.draining"),
            keepalive_reuses_total: registry.counter("server.keepalive_reuses_total"),
            shutdown_duration_ms: registry.histogram_with_buckets(
                "server.shutdown_duration_ms",
                &[],
                SHUTDOWN_BUCKETS_MS,
            ),
            reactor_fds: registry.gauge("server.reactor_fds"),
            reactor_ready_peak: registry.gauge("server.reactor_ready_peak"),
            reactor_timer_entries: registry.gauge("server.reactor_timer_entries"),
            responses_by_class: [
                class_counter("1xx"),
                class_counter("2xx"),
                class_counter("3xx"),
                class_counter("4xx"),
                class_counter("5xx"),
            ],
        })
    }

    /// The registry the metrics live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Counts a response under its status class.
    pub fn record_response(&self, status: u16) {
        let class = (status / 100).clamp(1, 5) as usize - 1;
        self.responses_by_class[class].inc();
    }

    /// Counts a handler panic and records the evidence as a structured
    /// event instead of silently converting it to a 500.
    pub fn record_panic(&self, method: &str, path: &str, message: &str) {
        self.handler_panics.inc();
        self.registry.event(
            EventLevel::Error,
            "server",
            "handler panicked",
            &[("method", method), ("path", path), ("panic", message)],
        );
    }
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_status_classes() {
        let registry = Arc::new(Registry::new());
        let m = ServerMetrics::register(&registry);
        m.record_response(200);
        m.record_response(201);
        m.record_response(404);
        m.record_response(500);
        assert_eq!(registry.counter_value("server.responses_total", &[("class", "2xx")]), Some(2));
        assert_eq!(registry.counter_value("server.responses_total", &[("class", "4xx")]), Some(1));
        assert_eq!(registry.counter_value("server.responses_total", &[("class", "5xx")]), Some(1));
        // Registering twice returns the same underlying counters.
        let again = ServerMetrics::register(&registry);
        again.record_response(204);
        assert_eq!(registry.counter_value("server.responses_total", &[("class", "2xx")]), Some(3));
    }

    #[test]
    fn panics_leave_evidence() {
        let registry = Arc::new(Registry::new());
        let m = ServerMetrics::register(&registry);
        m.record_panic("GET", "/api/tests/t1", "index out of bounds");
        assert_eq!(m.handler_panics.get(), 1);
        let events = registry.events().all();
        assert_eq!(events.len(), 1);
        assert!(events[0].to_line().contains("handler panicked"));
        assert!(events[0].to_line().contains("/api/tests/t1"));
    }

    #[test]
    fn panic_message_extraction() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new("fmt".to_string());
        assert_eq!(panic_message(payload.as_ref()), "fmt");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
