//! Overload policy primitives: deadline propagation, full-jitter backoff,
//! retry budgets, and a per-host circuit breaker (DESIGN.md §15).
//!
//! These are the two halves of one contract. The server's admission path
//! refuses work nobody is waiting for (a request whose
//! [`DEADLINE_HEADER`] has passed is answered `504` before it ever
//! queues, and dropped again at worker dequeue if it expired while
//! waiting); the client stops asking a server that cannot help it
//! (jittered backoff desynchronizes a retrying fleet, the token-bucket
//! [`RetryBudget`] caps retries at a fraction of successes so an outage
//! converges instead of storming, and the [`CircuitBreaker`] fails fast
//! once a host has proven itself down).
//!
//! Everything here is deterministic under a seed: jitter comes from a
//! tiny [`SplitMix64`] stream, not a global RNG, so chaos tests replay
//! bit-identically.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Request header carrying the absolute client deadline as integer epoch
/// milliseconds: `x-kscope-deadline-ms: 1754550000123`. Clients derive it
/// from their session-lease deadlines; every server admission point
/// compares it against [`epoch_ms`].
pub const DEADLINE_HEADER: &str = "x-kscope-deadline-ms";

/// Milliseconds since the Unix epoch — the clock both ends of the
/// deadline contract read.
pub fn epoch_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// SplitMix64: a tiny, seedable, allocation-free PRNG. Used for backoff
/// jitter so the client crates need no external RNG dependency and two
/// sessions with the same seed sleep the same schedule.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Full-jitter exponential backoff (the AWS scheme): attempt `n` sleeps a
/// uniform draw from `[0, min(cap, base * 2^n)]`, so a fleet of clients
/// knocked over by the same shed never reconverges on one retry clock —
/// the defect the old `backoff * 2^attempt` had.
///
/// A server `Retry-After` hint replaces the exponential envelope: the
/// server knows when capacity returns, so the sleep becomes
/// `hint/2 + U[0, hint/2]` — never past the hint (the hint caps the
/// backoff), never hammering before half of it has elapsed.
#[derive(Debug, Clone)]
pub struct FullJitterBackoff {
    cap: Duration,
    rng: SplitMix64,
}

impl FullJitterBackoff {
    /// A backoff helper whose jitter stream starts at `seed` and whose
    /// envelope never exceeds `cap`.
    pub fn new(cap: Duration, seed: u64) -> Self {
        Self { cap, rng: SplitMix64::new(seed) }
    }

    /// The sleep before retry number `attempt` (0-based) of an operation
    /// whose first-retry envelope is `base`, honoring a server
    /// `retry_after` hint when one was given.
    pub fn delay(
        &mut self,
        base: Duration,
        attempt: u32,
        retry_after: Option<Duration>,
    ) -> Duration {
        if let Some(hint) = retry_after {
            let hint = hint.min(self.cap);
            let half = hint / 2;
            return half + hint.mul_f64(0.5 * self.rng.next_f64());
        }
        let envelope = base.saturating_mul(2u32.saturating_pow(attempt)).min(self.cap);
        envelope.mul_f64(self.rng.next_f64())
    }
}

/// Token-bucket retry budget (gRPC-style retry throttling): every
/// success deposits `ratio` tokens, every retry withdraws one, and the
/// bucket holds at most `cap`. In steady state retries are bounded at
/// ~`ratio` × successes; in a full outage (no deposits) a client gets at
/// most `cap` retries total and then fails fast — the property that turns
/// a fleet-wide retry storm into a bounded trickle.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    tokens: f64,
    cap: f64,
    ratio: f64,
    spent: u64,
    denied: u64,
}

impl RetryBudget {
    /// A budget starting full at `cap` tokens, earning `ratio` per
    /// success.
    pub fn new(cap: f64, ratio: f64) -> Self {
        Self { tokens: cap, cap, ratio, spent: 0, denied: 0 }
    }

    /// Deposits the success dividend.
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + self.ratio).min(self.cap);
    }

    /// Withdraws one token for a retry; `false` means the budget is
    /// exhausted and the caller must surface the failure instead of
    /// retrying.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.spent += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Tokens currently banked.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Retries granted so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Retries denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

/// Circuit-breaker state, exported as the `client.breaker_state` gauge
/// (`0` closed, `1` open, `2` half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// The host is presumed down: requests fail fast until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is in flight; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Per-host circuit breaker: `threshold` consecutive transport failures
/// open it; after `cooldown` one half-open probe is admitted; a probe
/// success closes it, a probe failure re-opens it for another cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    threshold: u32,
    cooldown: Duration,
    opened_at: Option<Instant>,
    opened_total: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// probing after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            cooldown,
            opened_at: None,
            opened_total: 0,
        }
    }

    /// Whether a request may proceed now. Transitions open → half-open
    /// when the cooldown has elapsed (the admitted request is the probe).
    pub fn admit(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let elapsed = self
                    .opened_at
                    .is_none_or(|at| now.saturating_duration_since(at) >= self.cooldown);
                if elapsed {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful exchange: closes the breaker and resets the
    /// failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// Records a transport failure, opening the breaker when the streak
    /// reaches the threshold (or immediately when a half-open probe
    /// fails).
    pub fn on_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || (self.state == BreakerState::Closed && self.consecutive_failures >= self.threshold);
        if trip {
            self.state = BreakerState::Open;
            self.opened_at = Some(now);
            self.opened_total += 1;
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        let mean: f64 = (0..1000).map(|_| c.next_f64()).sum::<f64>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean of U[0,1) draws was {mean}");
    }

    #[test]
    fn full_jitter_stays_inside_the_envelope_and_replays() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_secs(2);
        let mut backoff = FullJitterBackoff::new(cap, 42);
        let mut replay = FullJitterBackoff::new(cap, 42);
        for attempt in 0..12 {
            let envelope = base.saturating_mul(2u32.saturating_pow(attempt)).min(cap);
            let d = backoff.delay(base, attempt, None);
            assert!(d <= envelope, "attempt {attempt}: {d:?} > {envelope:?}");
            assert_eq!(d, replay.delay(base, attempt, None), "same seed must replay");
        }
        // Two seeds must NOT produce the same schedule (that is the storm).
        let mut other = FullJitterBackoff::new(cap, 43);
        let same = (0..8).filter(|&a| {
            FullJitterBackoff::new(cap, 42).delay(base, a, None) == other.delay(base, a, None)
        });
        assert!(same.count() < 8);
    }

    #[test]
    fn retry_after_caps_the_backoff() {
        let mut backoff = FullJitterBackoff::new(Duration::from_secs(2), 1);
        let hint = Duration::from_millis(100);
        for attempt in 0..10 {
            let d = backoff.delay(Duration::from_secs(30), attempt, Some(hint));
            assert!(d <= hint, "honored hint must cap the sleep: {d:?}");
            assert!(d >= hint / 2, "never retry before half the hint: {d:?}");
        }
    }

    #[test]
    fn budget_bounds_retries_to_a_fraction_of_successes() {
        let mut budget = RetryBudget::new(3.0, 0.1);
        // Outage from a cold start: only the banked cap is spendable.
        let granted = (0..50).filter(|_| budget.try_spend()).count();
        assert_eq!(granted, 3, "a full outage gets exactly the banked cap");
        assert_eq!(budget.denied(), 47);
        // 100 successes earn 10 tokens → ~10% retry ratio.
        for _ in 0..100 {
            budget.on_success();
        }
        let granted = (0..50).filter(|_| budget.try_spend()).count();
        assert!(granted <= 10, "retries must stay ≤ ~10% of successes, got {granted}");
        assert_eq!(budget.spent(), 3 + granted as u64);
    }

    #[test]
    fn budget_is_capped() {
        let mut budget = RetryBudget::new(2.0, 1.0);
        for _ in 0..100 {
            budget.on_success();
        }
        assert!(budget.tokens() <= 2.0);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(3, Duration::from_millis(100));
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.admit(t0));
        breaker.on_failure(t0);
        breaker.on_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Closed, "below threshold stays closed");
        breaker.on_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opened_total(), 1);
        assert!(!breaker.admit(t0 + Duration::from_millis(50)), "open fails fast");
        // Cooldown elapsed: one probe admitted, a second is not.
        assert!(breaker.admit(t0 + Duration::from_millis(150)));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.admit(t0 + Duration::from_millis(150)));
        // Probe fails: re-open.
        breaker.on_failure(t0 + Duration::from_millis(151));
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opened_total(), 2);
        // Next probe succeeds: closed, streak reset.
        assert!(breaker.admit(t0 + Duration::from_millis(300)));
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.on_failure(t0 + Duration::from_millis(301));
        assert_eq!(breaker.state(), BreakerState::Closed, "streak was reset by the success");
    }

    #[test]
    fn success_resets_a_failure_streak() {
        let now = Instant::now();
        let mut breaker = CircuitBreaker::new(2, Duration::from_millis(10));
        breaker.on_failure(now);
        breaker.on_success();
        breaker.on_failure(now);
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn epoch_clock_is_sane() {
        let a = epoch_ms();
        assert!(a > 1_600_000_000_000, "epoch clock must be past 2020");
        assert!(epoch_ms() >= a);
    }

    #[test]
    fn breaker_gauge_encoding() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::Open.as_gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2);
    }
}
