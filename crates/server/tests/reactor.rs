//! Reactor edge cases: byte-trickled requests, idle timers racing
//! in-progress writes, accept backoff policy, the portable scan poller,
//! and multi-shard operation.

use kscope_server::reactor::{AcceptBackoff, AcceptDecision};
use kscope_server::{client, HttpServer, Response, Router, ServerConfig};
use kscope_telemetry::Registry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ping_router() -> Router {
    let mut r = Router::new();
    r.get("/ping", |_req, _p| Response::json(&serde_json::json!({ "pong": true })));
    r
}

fn read_all(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn slow_loris_headers_arrive_one_byte_per_readiness_event() {
    let server = HttpServer::bind("127.0.0.1:0", ping_router(), 1).unwrap();
    let addr = server.local_addr();

    // Trickle a whole request one byte at a time: every byte is a separate
    // readiness event and the incremental parser must reassemble across
    // all of them — while the single worker keeps serving other clients
    // (the trickler holds no worker, only a slab entry).
    let wire = b"GET /ping HTTP/1.1\r\nhost: loris\r\n\r\n";
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for &byte in &wire[..wire.len() - 1] {
        loris.write_all(&[byte]).unwrap();
        loris.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        // Interleaved fast clients are never blocked by the trickle.
        let ok = client::get(addr, "/ping").unwrap();
        assert_eq!(ok.status.0, 200);
    }
    loris.write_all(&wire[wire.len() - 1..]).unwrap();
    let _ = loris.shutdown(std::net::Shutdown::Write);
    let reply = read_all(&mut loris);
    assert!(reply.starts_with("HTTP/1.1 200"), "trickled request must complete: {reply}");
    server.shutdown();
}

#[test]
fn stalled_partial_request_gets_408_not_a_hang() {
    let mut config = ServerConfig::with_workers(1);
    config.idle_timeout = Duration::from_millis(200);
    let server = HttpServer::bind_with_config("127.0.0.1:0", ping_router(), config, None).unwrap();

    // Half a request line, then silence: the idle wheel must fire and the
    // server must explain the disconnect (served == 0 → 408).
    let mut stalled = TcpStream::connect(server.local_addr()).unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stalled.write_all(b"GET /pi").unwrap();
    let started = Instant::now();
    let reply = read_all(&mut stalled);
    let elapsed = started.elapsed();
    assert!(reply.starts_with("HTTP/1.1 408"), "stalled request must get a 408: {reply}");
    assert!(elapsed >= Duration::from_millis(150), "fired too early: {elapsed:?}");
    assert!(elapsed < Duration::from_secs(2), "fired too late: {elapsed:?}");
    server.shutdown();
}

#[test]
fn idle_timer_firing_mid_write_does_not_kill_the_response() {
    // A response much larger than the socket buffers, an idle timeout much
    // shorter than the client's read pause: the timer wheel fires while
    // the response is only partially flushed, and must re-arm instead of
    // closing the connection mid-write.
    let body_len = 8 << 20;
    let mut router = Router::new();
    router.get("/big", move |_req, _p| {
        Response::content("application/octet-stream", vec![0x42u8; body_len])
    });
    let mut config = ServerConfig::with_workers(1);
    config.idle_timeout = Duration::from_millis(100);
    let server = HttpServer::bind_with_config("127.0.0.1:0", router, config, None).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(b"GET /big HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n").unwrap();
    // Let several idle periods elapse while the response is stuck in the
    // server's out-buffer (we are not reading yet).
    std::thread::sleep(Duration::from_millis(350));
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let headers_end =
        reply.windows(4).position(|w| w == b"\r\n\r\n").expect("complete header block");
    assert!(
        String::from_utf8_lossy(&reply[..headers_end]).starts_with("HTTP/1.1 200"),
        "mid-write connection must survive idle timer fires"
    );
    assert_eq!(reply.len() - headers_end - 4, body_len, "body must arrive complete");
    server.shutdown();
}

#[test]
fn accept_backoff_policy_is_reachable_through_the_public_api() {
    // The EMFILE path is impractical to trigger for real in a test (it
    // needs global fd exhaustion), so the reactor keeps the policy pure
    // and public: classify errors, back off exponentially, reset on
    // success.
    let now = Instant::now();
    let mut policy = AcceptBackoff::new();
    let emfile = std::io::Error::from_raw_os_error(24);
    let AcceptDecision::Backoff(first) = policy.on_error(&emfile, now) else {
        panic!("EMFILE must back off");
    };
    assert!(policy.resume_at().is_some());
    assert!(policy.ready_to_resume(now + first));
    let AcceptDecision::Backoff(second) = policy.on_error(&emfile, now) else {
        panic!("EMFILE must keep backing off");
    };
    assert!(second > first, "sustained exhaustion must grow the delay");
    policy.on_success();
    assert!(policy.resume_at().is_none());
    assert_eq!(
        policy.on_error(&std::io::Error::from(std::io::ErrorKind::WouldBlock), now),
        AcceptDecision::WaitForReadiness
    );
}

#[test]
fn scan_poller_fallback_serves_keepalive_sessions() {
    let mut config = ServerConfig::with_workers(2);
    config.force_scan_poller = true;
    let server = HttpServer::bind_with_config("127.0.0.1:0", ping_router(), config, None).unwrap();
    let mut session = client::Session::new(server.local_addr());
    for _ in 0..5 {
        assert_eq!(session.get("/ping").unwrap().status.0, 200);
    }
    assert_eq!(session.stats().reuses, 4, "keep-alive must work on the scan poller");
    let report = server.shutdown();
    assert!(report.completed);
}

#[test]
fn mid_body_connection_reset_does_not_wedge_workers_or_leak_slab_entries() {
    // A client starts a POST with a large declared body, sends only part
    // of it, and vanishes with a hard RST (SO_LINGER 0). The reactor's
    // read must surface the reset, reclaim the slab entry, and leave the
    // single worker free — six times in a row, then a normal request
    // still succeeds immediately.
    let registry = Arc::new(Registry::new());
    let config = ServerConfig::with_workers(1);
    let server = HttpServer::bind_with_config(
        "127.0.0.1:0",
        ping_router(),
        config,
        Some(Arc::clone(&registry)),
    )
    .unwrap();
    let addr = server.local_addr();

    for _ in 0..6 {
        let stream = TcpStream::connect(addr).unwrap();
        let mut partial = stream;
        partial
            .write_all(b"POST /ping HTTP/1.1\r\nhost: x\r\ncontent-length: 1048576\r\n\r\npartial")
            .unwrap();
        // Closing with unread/unsent data pending after a tiny pause
        // delivers an abortive reset rather than a graceful FIN.
        std::thread::sleep(Duration::from_millis(5));
        drop(partial);
    }

    // The lone worker is not wedged: a fresh request completes fast.
    let started = Instant::now();
    let ok = client::get(addr, "/ping").unwrap();
    assert_eq!(ok.status.0, 200);
    assert!(started.elapsed() < Duration::from_secs(2), "worker must be free immediately");

    // Every aborted connection's slab entry is reclaimed: the fd gauge
    // returns to zero once the resets are processed.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if registry.gauge("server.reactor_fds").get() == 0
            && registry.gauge("server.workers_busy").get() == 0
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reactor fds must drain to zero and no worker may stay busy"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = server.shutdown();
    assert!(report.completed);
}

#[test]
fn torn_client_write_is_cleaned_up_and_later_requests_succeed() {
    // A client writes only a prefix of its request and half-closes the
    // socket (FIN with the frame incomplete). The parser must classify
    // the torn frame as a closed connection — not hang waiting for the
    // rest — and the server must keep serving others.
    let registry = Arc::new(Registry::new());
    let config = ServerConfig::with_workers(1);
    let server = HttpServer::bind_with_config(
        "127.0.0.1:0",
        ping_router(),
        config,
        Some(Arc::clone(&registry)),
    )
    .unwrap();
    let addr = server.local_addr();

    for torn_at in [3usize, 11, 19] {
        let wire = b"GET /ping HTTP/1.1\r\nhost: torn\r\n\r\n";
        let mut torn = TcpStream::connect(addr).unwrap();
        torn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        torn.write_all(&wire[..torn_at]).unwrap();
        torn.shutdown(std::net::Shutdown::Write).unwrap();
        // The server may close silently (nothing parseable yet) — the
        // important part is that it closes rather than hangs.
        let _ = read_all(&mut torn);

        // And an interleaved complete request is served at once.
        let ok = client::get(addr, "/ping").unwrap();
        assert_eq!(ok.status.0, 200);
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while registry.gauge("server.reactor_fds").get() != 0 {
        assert!(Instant::now() < deadline, "torn connections must be released");
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = server.shutdown();
    assert!(report.completed);
    assert_eq!(registry.gauge("server.reactor_fds").get(), 0);
}

#[test]
fn multi_shard_reactor_serves_concurrent_clients_and_drains() {
    let registry = Arc::new(Registry::new());
    let mut config = ServerConfig::with_workers(2);
    config.reactor_shards = 4;
    let server = HttpServer::bind_with_config(
        "127.0.0.1:0",
        ping_router(),
        config,
        Some(Arc::clone(&registry)),
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || {
                let mut session = client::Session::new(addr);
                for _ in 0..10 {
                    assert_eq!(session.get("/ping").unwrap().status.0, 200);
                }
            });
        }
    });
    // Every connection was registered with (and released from) a shard.
    assert!(registry.gauge("server.reactor_fds").get() >= 0);
    let report = server.shutdown();
    assert!(report.completed);
    assert_eq!(
        registry.gauge("server.reactor_fds").get(),
        0,
        "all reactor-registered fds must be released after drain"
    );
}
