//! Wire-level robustness: the server must survive garbage, partial
//! requests, and aggressive clients without hanging or crashing.

use kscope_server::api::CoreServerApi;
use kscope_server::{client, HttpServer, Response, Router, ServerConfig};
use kscope_store::{Database, GridStore};
use kscope_telemetry::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn start() -> (HttpServer, std::net::SocketAddr) {
    let api = CoreServerApi::new(Database::new(), GridStore::new());
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = s.write_all(bytes);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

#[test]
fn garbage_requests_get_400_or_closed() {
    let (server, addr) = start();
    for garbage in [
        &b"\x00\x01\x02\x03\x04"[..],
        b"GARBAGE NONSENSE\r\n\r\n",
        b"GET\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: notanumber\r\n\r\n",
        b"",
    ] {
        let reply = send_raw(addr, garbage);
        // Either a 400-class response or a clean close; never a hang.
        if !reply.is_empty() {
            let text = String::from_utf8_lossy(&reply);
            assert!(text.starts_with("HTTP/1.1 4"), "unexpected reply: {text}");
        }
    }
    // The server still works afterwards.
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status.0, 200);
    server.shutdown();
}

#[test]
fn oversized_body_is_rejected_cleanly() {
    let (server, addr) = start();
    let huge = format!("POST /api/tests HTTP/1.1\r\ncontent-length: {}\r\n\r\n", usize::MAX / 2);
    let reply = send_raw(addr, huge.as_bytes());
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status.0, 200);
    server.shutdown();
}

#[test]
fn slow_loris_client_times_out_without_blocking_others() {
    let (server, addr) = start();
    // Open a connection and send nothing.
    let idle = TcpStream::connect(addr).unwrap();
    // Other clients are still served while the idler holds a worker slot
    // at most until the read timeout.
    for _ in 0..5 {
        let ok = client::get(addr, "/healthz").unwrap();
        assert_eq!(ok.status.0, 200);
    }
    drop(idle);
    server.shutdown();
}

/// Reads exactly one framed HTTP response (status line + headers +
/// `content-length` body) off a keep-alive socket.
fn read_one_response(reader: &mut BufReader<&TcpStream>) -> (String, Vec<u8>) {
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, body)
}

/// Polls `probe` until it returns true or `deadline` elapses.
fn eventually(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    probe()
}

#[test]
fn keepalive_serves_many_requests_on_one_socket() {
    let api = CoreServerApi::new(Database::new(), GridStore::new());
    let registry = Arc::new(Registry::new());
    let server = HttpServer::bind_with_config(
        "127.0.0.1:0",
        api.into_router(),
        ServerConfig::with_workers(1),
        Some(Arc::clone(&registry)),
    )
    .unwrap();

    // One raw TCP socket, three requests: HTTP/1.1 defaults to keep-alive,
    // so all three must complete without reconnecting.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(&stream);
    for i in 0..3 {
        (&stream).write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = read_one_response(&mut reader);
        assert!(status.starts_with("HTTP/1.1 200"), "request {i} got: {status}");
        assert!(!body.is_empty());
    }
    drop(reader);
    drop(stream);

    assert_eq!(registry.counter_value("server.accepted_total", &[]), Some(1));
    let reuses = registry.counter_value("server.keepalive_reuses_total", &[]).unwrap_or(0);
    assert!(reuses >= 2, "expected >= 2 keep-alive reuses, saw {reuses}");
    server.shutdown();
}

#[test]
fn saturated_pool_sheds_with_503_without_stalling_acceptor() {
    // One worker, one queue slot. The worker is parked inside a handler
    // gated on a condvar, a second connection fills the queue, and every
    // further connection must be shed with an immediate 503 — the acceptor
    // must never stall behind the full queue.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut router = Router::new();
    {
        let gate = Arc::clone(&gate);
        router.get("/block", move |_r, _p| {
            let (lock, cvar) = &*gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
            Response::json(&serde_json::json!({ "blocked": false }))
        });
    }
    router.get("/fast", |_r, _p| Response::json(&serde_json::json!({ "ok": true })));

    let mut config = ServerConfig::with_workers(1);
    config.queue_capacity = 1;
    let registry = Arc::new(Registry::new());
    let server =
        HttpServer::bind_with_config("127.0.0.1:0", router, config, Some(Arc::clone(&registry)))
            .unwrap();
    let addr = server.local_addr();

    // Occupy the only worker.
    let blocked = std::thread::spawn(move || client::get(addr, "/block").unwrap());
    assert!(
        eventually(Duration::from_secs(5), || {
            registry.gauge_value("server.workers_busy", &[]) == Some(1)
        }),
        "worker never picked up the blocking request"
    );

    // Fill the single queue slot (half-close so the server finishes the
    // connection once a worker frees up, instead of keeping it alive).
    let mut queued = TcpStream::connect(addr).unwrap();
    queued.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    queued.write_all(b"GET /fast HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    assert!(
        eventually(Duration::from_secs(5), || {
            registry.gauge_value("server.accept_queue_depth", &[]) == Some(1)
        }),
        "second connection never entered the queue"
    );

    // Now the pool is saturated: these connections must be refused fast.
    for _ in 0..3 {
        let start = Instant::now();
        let reply = send_raw(addr, b"GET /fast HTTP/1.1\r\nconnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("HTTP/1.1 503"), "expected a shed 503, got: {text}");
        assert!(text.contains("retry-after"), "503 must carry retry-after: {text}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shedding must be immediate, took {:?}",
            start.elapsed()
        );
    }
    assert_eq!(registry.counter_value("server.shed_total", &[]), Some(3));

    // Release the gate: the blocked request and the queued one both finish.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    assert_eq!(blocked.join().unwrap().status.0, 200);
    let mut queued_reply = Vec::new();
    queued.read_to_end(&mut queued_reply).unwrap();
    assert!(String::from_utf8_lossy(&queued_reply).starts_with("HTTP/1.1 200"));
    // And the server is healthy again: no lingering saturation.
    assert_eq!(client::get(addr, "/fast").unwrap().status.0, 200);
    server.shutdown();
}

#[test]
fn idle_keepalive_connection_is_disconnected_by_the_server() {
    let mut config = ServerConfig::with_workers(2);
    config.idle_timeout = Duration::from_millis(200);
    let api = CoreServerApi::new(Database::new(), GridStore::new());
    let server =
        HttpServer::bind_with_config("127.0.0.1:0", api.into_router(), config, None).unwrap();
    let addr = server.local_addr();

    // A client that connects and never speaks is cut loose with a 408
    // around the idle timeout — not held forever.
    let start = Instant::now();
    let silent = TcpStream::connect(addr).unwrap();
    silent.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = Vec::new();
    let _ = (&silent).read_to_end(&mut reply);
    let elapsed = start.elapsed();
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408"),
        "expected 408, got: {}",
        String::from_utf8_lossy(&reply)
    );
    assert!(elapsed >= Duration::from_millis(150), "cut too early: {elapsed:?}");
    assert!(elapsed < Duration::from_secs(2), "cut too late: {elapsed:?}");

    // A session whose keep-alive socket went stale during a pause renews
    // it transparently on the next request.
    let mut session = client::Session::new(addr);
    assert_eq!(session.get("/healthz").unwrap().status.0, 200);
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(session.get("/healthz").unwrap().status.0, 200);
    let stats = session.stats();
    assert_eq!(stats.requests, 2);
    assert!(
        stats.reconnects >= 1 || stats.connects >= 2,
        "the second request must have renewed the stale socket: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_requests_before_closing() {
    let mut router = Router::new();
    router.get("/slow", |_r, _p| {
        std::thread::sleep(Duration::from_millis(300));
        Response::json(&serde_json::json!({ "finished": true }))
    });
    let registry = Arc::new(Registry::new());
    let server = HttpServer::bind_with_config(
        "127.0.0.1:0",
        router,
        ServerConfig::with_workers(1),
        Some(Arc::clone(&registry)),
    )
    .unwrap();
    let addr = server.local_addr();

    let inflight = std::thread::spawn(move || client::get(addr, "/slow").unwrap());
    assert!(
        eventually(Duration::from_secs(5), || {
            registry.gauge_value("server.workers_busy", &[]) == Some(1)
        }),
        "request never reached the handler"
    );

    // Shut down while the request is mid-handler: drain must let it finish.
    let report = server.shutdown();
    let resp = inflight.join().unwrap();
    assert_eq!(resp.status.0, 200);
    assert_eq!(resp.json_body().unwrap()["finished"], serde_json::json!(true));
    assert!(report.completed, "drain must complete within the deadline: {report:?}");
    assert_eq!(report.workers_joined, report.workers_total);
    assert!(
        report.duration >= Duration::from_millis(100),
        "shutdown should have waited for the in-flight request: {report:?}"
    );
    assert_eq!(registry.gauge_value("server.draining", &[]), Some(0));
}

#[test]
fn handler_panics_become_500s_and_workers_survive() {
    let mut router = Router::new();
    router.get("/boom", |_r, _p| -> Response { panic!("handler exploded") });
    router.get("/fine", |_r, _p| Response::json(&serde_json::json!({"ok": true})));
    // A single worker: if the panic killed it, every later request would
    // hang — this is the regression the catch_unwind guards against.
    let server = HttpServer::bind("127.0.0.1:0", router, 1).unwrap();
    let addr = server.local_addr();
    for _ in 0..3 {
        let boom = client::get(addr, "/boom").unwrap();
        assert_eq!(boom.status.0, 500);
        let ok = client::get(addr, "/fine").unwrap();
        assert_eq!(ok.status.0, 200);
    }
    server.shutdown();
}
