//! Wire-level robustness: the server must survive garbage, partial
//! requests, and aggressive clients without hanging or crashing.

use kscope_server::api::CoreServerApi;
use kscope_server::{client, HttpServer, Response, Router};
use kscope_store::{Database, GridStore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start() -> (HttpServer, std::net::SocketAddr) {
    let api = CoreServerApi::new(Database::new(), GridStore::new());
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = s.write_all(bytes);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

#[test]
fn garbage_requests_get_400_or_closed() {
    let (server, addr) = start();
    for garbage in [
        &b"\x00\x01\x02\x03\x04"[..],
        b"GARBAGE NONSENSE\r\n\r\n",
        b"GET\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: notanumber\r\n\r\n",
        b"",
    ] {
        let reply = send_raw(addr, garbage);
        // Either a 400-class response or a clean close; never a hang.
        if !reply.is_empty() {
            let text = String::from_utf8_lossy(&reply);
            assert!(text.starts_with("HTTP/1.1 4"), "unexpected reply: {text}");
        }
    }
    // The server still works afterwards.
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status.0, 200);
    server.shutdown();
}

#[test]
fn oversized_body_is_rejected_cleanly() {
    let (server, addr) = start();
    let huge = format!("POST /api/tests HTTP/1.1\r\ncontent-length: {}\r\n\r\n", usize::MAX / 2);
    let reply = send_raw(addr, huge.as_bytes());
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status.0, 200);
    server.shutdown();
}

#[test]
fn slow_loris_client_times_out_without_blocking_others() {
    let (server, addr) = start();
    // Open a connection and send nothing.
    let idle = TcpStream::connect(addr).unwrap();
    // Other clients are still served while the idler holds a worker slot
    // at most until the read timeout.
    for _ in 0..5 {
        let ok = client::get(addr, "/healthz").unwrap();
        assert_eq!(ok.status.0, 200);
    }
    drop(idle);
    server.shutdown();
}

#[test]
fn handler_panics_become_500s_and_workers_survive() {
    let mut router = Router::new();
    router.get("/boom", |_r, _p| -> Response { panic!("handler exploded") });
    router.get("/fine", |_r, _p| Response::json(&serde_json::json!({"ok": true})));
    // A single worker: if the panic killed it, every later request would
    // hang — this is the regression the catch_unwind guards against.
    let server = HttpServer::bind("127.0.0.1:0", router, 1).unwrap();
    let addr = server.local_addr();
    for _ in 0..3 {
        let boom = client::get(addr, "/boom").unwrap();
        assert_eq!(boom.status.0, 500);
        let ok = client::get(addr, "/fine").unwrap();
        assert_eq!(ok.status.0, 200);
    }
    server.shutdown();
}
