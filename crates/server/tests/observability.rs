//! End-to-end observability: the instrumented server must expose accurate
//! Prometheus metrics and health under real concurrent load over TCP.

use kscope_server::api::CoreServerApi;
use kscope_server::{client, HttpServer, Response, Router};
use kscope_store::{Database, GridStore};
use kscope_telemetry::Registry;
use std::sync::Arc;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 10;

fn start_instrumented() -> (HttpServer, std::net::SocketAddr, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let api =
        CoreServerApi::new(Database::new(), GridStore::new()).with_telemetry(Arc::clone(&registry));
    let server = HttpServer::bind_with_telemetry(
        "127.0.0.1:0",
        api.into_router(),
        4,
        Some(Arc::clone(&registry)),
    )
    .unwrap();
    let addr = server.local_addr();
    (server, addr, registry)
}

/// Pulls one metric sample line (`name{labels} value`) out of an
/// exposition body.
fn sample<'a>(body: &'a str, line_start: &str) -> Option<&'a str> {
    body.lines().find(|l| l.starts_with(line_start))
}

fn sample_value(body: &str, line_start: &str) -> Option<f64> {
    sample(body, line_start).and_then(|l| l.rsplit(' ').next()).and_then(|v| v.parse().ok())
}

#[test]
fn metrics_endpoint_reports_concurrent_load() {
    let (server, addr, _registry) = start_instrumented();

    // 8 clients hammer /api/tests concurrently through the real TCP stack.
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(move || {
                for _ in 0..REQUESTS_PER_CLIENT {
                    let resp = client::get(addr, "/api/tests").unwrap();
                    assert_eq!(resp.status.0, 200);
                }
            });
        }
    });

    let resp = client::get(addr, "/metrics").unwrap();
    assert_eq!(resp.status.0, 200);
    let content_type = resp
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.as_str())
        .unwrap_or_default();
    assert!(content_type.starts_with("text/plain"), "got {content_type}");
    let body = String::from_utf8(resp.body.clone()).unwrap();

    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    // Per-route request counter: every one of the 80 requests is there.
    assert_eq!(
        sample_value(&body, "kscope_server_requests_total{method=\"GET\",route=\"/api/tests\"}"),
        Some(total),
        "exposition was:\n{body}"
    );
    // Per-route latency histogram: +Inf bucket and _count agree with the
    // request count, and the sum line exists.
    assert_eq!(
        sample_value(
            &body,
            "kscope_server_handler_latency_us_bucket{method=\"GET\",route=\"/api/tests\",le=\"+Inf\"}"
        ),
        Some(total)
    );
    assert_eq!(
        sample_value(
            &body,
            "kscope_server_handler_latency_us_count{method=\"GET\",route=\"/api/tests\"}"
        ),
        Some(total)
    );
    assert!(sample(
        &body,
        "kscope_server_handler_latency_us_sum{method=\"GET\",route=\"/api/tests\"}"
    )
    .is_some());
    // Status-class accounting covers at least those 80 OK responses.
    assert!(sample_value(&body, "kscope_server_responses_total{class=\"2xx\"}").unwrap() >= total);
    // Server lifecycle metrics.
    assert!(sample_value(&body, "kscope_server_accepted_total").unwrap() >= total);
    assert_eq!(sample_value(&body, "kscope_server_workers_total"), Some(4.0));
    assert!(sample_value(&body, "kscope_uptime_seconds").unwrap() >= 0.0);

    // The exposition format itself is well-formed: every sample line is
    // `name{labels} value` with a parseable number, every # line is HELP
    // or TYPE.
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            assert!(
                rest.starts_with("HELP") || rest.starts_with("TYPE"),
                "bad comment line: {line}"
            );
        } else {
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in line: {line}");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.starts_with("kscope_")
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in line: {line}"
            );
        }
    }

    // A second scrape shows the first one counted: /metrics is a route too.
    let resp2 = client::get(addr, "/metrics").unwrap();
    let body2 = String::from_utf8(resp2.body.clone()).unwrap();
    assert!(
        sample_value(&body2, "kscope_server_requests_total{method=\"GET\",route=\"/metrics\"}")
            .unwrap()
            >= 1.0
    );

    server.shutdown();
}

#[test]
fn healthz_reports_workers_and_uptime() {
    let (server, addr, _registry) = start_instrumented();
    let resp = client::get(addr, "/healthz").unwrap();
    assert_eq!(resp.status.0, 200);
    let body = resp.json_body().unwrap();
    assert_eq!(body["ok"], serde_json::json!(true));
    assert!(body["uptime_s"].as_f64().unwrap() >= 0.0);
    assert_eq!(body["workers"]["total"], serde_json::json!(4));
    // The worker answering /healthz is busy right now; busy + idle = total.
    let busy = body["workers"]["busy"].as_i64().unwrap();
    let idle = body["workers"]["idle"].as_i64().unwrap();
    assert!(busy >= 1, "the answering worker counts itself: {body}");
    assert_eq!(busy + idle, 4);
    assert_eq!(body["handler_panics"], serde_json::json!(0));
    server.shutdown();
}

#[test]
fn panics_and_unrouted_requests_are_counted() {
    let registry = Arc::new(Registry::new());
    let mut router = Router::new();
    router.get("/boom", |_r, _p| -> Response { panic!("instrumented explosion") });
    let server =
        HttpServer::bind_with_telemetry("127.0.0.1:0", router, 2, Some(Arc::clone(&registry)))
            .unwrap();
    let addr = server.local_addr();

    assert_eq!(client::get(addr, "/boom").unwrap().status.0, 500);
    assert_eq!(client::get(addr, "/nowhere").unwrap().status.0, 404);

    assert_eq!(registry.counter_value("server.handler_panics", &[]), Some(1));
    assert_eq!(registry.counter_value("server.unrouted_total", &[]), Some(1));
    // The panic left a structured event carrying the message.
    let events = registry.events().recent(16);
    assert!(
        events.iter().any(|e| e.message.contains("panic")
            && e.fields.iter().any(|(_, v)| v.contains("instrumented explosion"))),
        "events were: {events:?}"
    );
    // 5xx and 4xx status classes both landed.
    assert_eq!(registry.counter_value("server.responses_total", &[("class", "5xx")]), Some(1));
    assert_eq!(registry.counter_value("server.responses_total", &[("class", "4xx")]), Some(1));
    server.shutdown();
}

#[test]
fn uninstrumented_server_still_serves() {
    // The telemetry layer is strictly optional: HttpServer::bind keeps the
    // seed behaviour, including the plain /healthz body.
    let api = CoreServerApi::new(Database::new(), GridStore::new());
    let server = HttpServer::bind("127.0.0.1:0", api.into_router(), 2).unwrap();
    let addr = server.local_addr();
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.json_body().unwrap(), serde_json::json!({ "ok": true }));
    // Without a registry there is no /metrics route.
    assert_eq!(client::get(addr, "/metrics").unwrap().status.0, 404);
    server.shutdown();
}
