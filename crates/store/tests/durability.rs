//! Crash-safety integration tests for the durable store: WAL replay,
//! checkpoint atomicity, torn-tail tolerance (including the
//! truncate-at-every-byte-offset sweep), and concurrent writers racing
//! checkpoints.

use kscope_store::wal;
use kscope_store::{Database, RealIo, StoreIo};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kscope-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ns(db: &Database, coll: &str) -> Vec<i64> {
    let mut ns: Vec<i64> =
        db.collection(coll).all().iter().filter_map(|d| d["n"].as_i64()).collect();
    ns.sort_unstable();
    ns
}

#[test]
fn non_ascii_collection_names_survive_checkpoint_and_replay() {
    let dir = tempdir("non-ascii");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        db.collection("réponses-日本語").insert_one(json!({"n": 0}));
        db.checkpoint().unwrap();
        // One doc from the checkpoint, one from WAL replay — both must
        // land in the *same* collection after reopen (a lossy escape
        // would split them between the original and a mangled name).
        db.collection("réponses-日本語").insert_one(json!({"n": 1}));
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(db.collection_names(), vec!["réponses-日本語".to_string()]);
    assert_eq!(ns(&db, "réponses-日本語"), vec![0, 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_replay_restores_uncheckpointed_writes() {
    let dir = tempdir("replay");
    {
        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(report.clean());
        assert!(db.is_durable());
        for i in 0..5 {
            db.collection("responses").insert_one(json!({"n": i}));
        }
        // No checkpoint: dropping the handle models a hard crash.
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(report.replayed_records, 5);
    assert_eq!(ns(&db, "responses"), vec![0, 1, 2, 3, 4]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_plus_wal_tail_restores_everything() {
    let dir = tempdir("ckpt-tail");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        db.collection("tests").insert_one(json!({"n": 0}));
        db.collection("responses").insert_one(json!({"n": 1}));
        let stats = db.checkpoint().unwrap();
        assert_eq!(stats.seq, 1);
        assert_eq!(stats.documents, 2);
        db.collection("responses").insert_one(json!({"n": 2}));
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, 1);
    assert_eq!(report.replayed_records, 1);
    assert_eq!(ns(&db, "tests"), vec![0]);
    assert_eq!(ns(&db, "responses"), vec![1, 2]);
    let status = db.durability_status().unwrap();
    assert_eq!(status.seq, 1);
    assert!(!status.degraded);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn all_mutation_kinds_replay() {
    let dir = tempdir("ops");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        let c = db.collection("jobs");
        c.insert_one(json!({"n": 0, "state": "open"}));
        c.insert_one(json!({"n": 1, "state": "open"}));
        c.insert_one(json!({"n": 2, "state": "open"}));
        c.update_many(&json!({"n": 1}), &json!({"$set": {"state": "done"}}));
        c.delete_many(&json!({"n": 2}));
        db.collection("doomed").insert_one(json!({"n": 9}));
        db.drop_collection("doomed");
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    let c = db.collection("jobs");
    assert_eq!(c.len(), 2);
    assert_eq!(c.find_one(&json!({"n": 1})).unwrap()["state"], json!("done"));
    assert!(c.find_one(&json!({"n": 2})).is_none());
    assert!(!db.collection_names().contains(&"doomed".to_string()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn insert_many_commits_one_wal_record_per_batch() {
    let dir = tempdir("batch-wal");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        let ids = db.collection("pages").insert_many((0..8).map(|i| json!({"n": i})));
        assert_eq!(ids.len(), 8);
        // The whole batch is a single frame in the log.
        let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
        let scan = wal::scan(&wal_bytes);
        assert_eq!(scan.records.len(), 1, "8-doc batch must append exactly one WAL record");
        // An empty batch appends nothing at all.
        assert!(db.collection("pages").insert_many(std::iter::empty::<Value>()).is_empty());
        let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
        assert_eq!(wal::scan(&wal_bytes).records.len(), 1, "empty batch is WAL-free");
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(report.replayed_records, 1);
    assert_eq!(ns(&db, "pages"), (0..8).collect::<Vec<i64>>());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn insert_many_replay_is_atomic_and_preserves_ids() {
    let dir = tempdir("batch-replay");
    let ids;
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        ids = db.collection("pages").insert_many(vec![
            json!({"n": 0}),
            json!({"_id": "custom-id", "n": 1}),
            json!({"n": 2}),
        ]);
        assert_eq!(ids[1].as_str(), "custom-id");
        // No checkpoint — reopen replays the batch from the WAL.
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    let c = db.collection("pages");
    assert_eq!(c.len(), 3, "all or nothing: the full batch replays");
    for (i, id) in ids.iter().enumerate() {
        let doc = c.find_by_id(id).expect("replay keeps assigned ids");
        assert_eq!(doc["n"], json!(i as i64));
    }
    // Fresh inserts never collide with replayed batch ids.
    let fresh = c.insert_one(json!({"n": 3}));
    assert!(!ids.contains(&fresh));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_batch_record_drops_whole_batch() {
    let dir = tempdir("batch-torn");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        db.collection("pages").insert_one(json!({"n": 0}));
        db.collection("pages").insert_many((1..6).map(|i| json!({"n": i})));
    }
    let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
    let scan = wal::scan(&wal_bytes);
    assert_eq!(scan.records.len(), 2);
    // Cut mid-way through the batch record: the batch must vanish as a
    // unit — readers never see half of it.
    let cut = (scan.records[0].end_offset as usize + wal_bytes.len()) / 2;
    std::fs::write(dir.join("wal.log"), &wal_bytes[..cut]).unwrap();
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(!report.clean());
    assert_eq!(ns(&db, "pages"), vec![0], "torn batch drops atomically");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replayed_ids_never_collide_with_fresh_inserts() {
    let dir = tempdir("idsync");
    let first_id;
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        first_id = db.collection("c").insert_one(json!({"n": 0}));
    }
    let (db, _) = Database::open_durable(&dir).unwrap();
    let second_id = db.collection("c").insert_one(json!({"n": 1}));
    assert_ne!(first_id, second_id);
    assert_eq!(db.collection("c").len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance sweep: truncate the WAL at *every* byte offset, recover,
/// and verify the database is exactly the prefix of writes whose records
/// fully survived — never an error, never a partial document.
#[test]
fn truncate_wal_at_every_offset_yields_valid_prefix() {
    let source = tempdir("sweep-src");
    {
        let (db, _) = Database::open_durable(&source).unwrap();
        for i in 0..12 {
            db.collection("c").insert_one(json!({"n": i, "payload": "x".repeat(i as usize)}));
        }
    }
    let wal_bytes = std::fs::read(source.join("wal.log")).unwrap();
    let boundaries: Vec<u64> = wal::scan(&wal_bytes).records.iter().map(|r| r.end_offset).collect();
    assert_eq!(boundaries.len(), 12);

    let target = tempdir("sweep-dst");
    for offset in 0..=wal_bytes.len() {
        let _ = std::fs::remove_dir_all(&target);
        std::fs::create_dir_all(&target).unwrap();
        std::fs::write(target.join("wal.log"), &wal_bytes[..offset]).unwrap();

        let (db, report) = Database::open_durable(&target)
            .unwrap_or_else(|e| panic!("recovery must not fail at offset {offset}: {e}"));
        let expected = boundaries.iter().filter(|&&b| b <= offset as u64).count();
        let docs = db.collection("c").all();
        assert_eq!(docs.len(), expected, "prefix length at offset {offset}");
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(doc["n"], json!(i as i64), "document {i} intact at offset {offset}");
            assert_eq!(
                doc["payload"].as_str().map(str::len),
                Some(i),
                "payload intact at offset {offset}"
            );
            assert!(doc.get("_id").is_some(), "_id intact at offset {offset}");
        }
        assert_eq!(report.replayed_records, expected);
        let at_boundary = offset == 0 || boundaries.contains(&(offset as u64));
        assert_eq!(report.clean(), at_boundary, "clean() iff cut at a record boundary");

        // A second open must be clean: recovery compacted the torn tail.
        drop(db);
        let (_, second) = Database::open_durable(&target).unwrap();
        assert!(second.clean(), "offset {offset}: second recovery must be clean");
        assert_eq!(second.replayed_records, expected);
    }
    std::fs::remove_dir_all(&source).unwrap();
    std::fs::remove_dir_all(&target).unwrap();
}

#[test]
fn stale_wal_records_after_checkpoint_commit_are_skipped() {
    let dir = tempdir("stale");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        db.collection("c").insert_one(json!({"n": 0}));
        db.checkpoint().unwrap();
    }
    // Model the crash window between the CURRENT rename (commit) and the
    // WAL truncation: hand a stale record (seq 0 < checkpoint seq 1) back
    // to the log, as if truncation never happened.
    let stale = json!({"seq": 0, "op": "insert", "coll": "c",
                       "doc": {"_id": "oid-00000000", "n": 0}});
    let frame = wal::encode_frame(serde_json::to_string(&stale).unwrap().as_bytes());
    let mut log = std::fs::read(dir.join("wal.log")).unwrap();
    log.extend_from_slice(&frame);
    std::fs::write(dir.join("wal.log"), &log).unwrap();

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.stale_records, 1, "already-checkpointed record skipped");
    assert_eq!(report.replayed_records, 0);
    assert!(report.wal_rewritten, "stale records compacted away");
    assert_eq!(db.collection("c").len(), 1, "no duplicate from stale replay");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn legacy_snapshot_directory_imports() {
    let dir = tempdir("legacy");
    let db = Database::new();
    db.collection("tests").insert_one(json!({"n": 0}));
    db.save_to_dir(&dir).unwrap();

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.legacy_import);
    assert_eq!(ns(&db, "tests"), vec![0]);
    db.collection("tests").insert_one(json!({"n": 1}));
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.legacy_import, "still importing until a checkpoint exists");
    assert_eq!(ns(&db, "tests"), vec![0, 1]);
    db.checkpoint().unwrap();
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(!report.legacy_import, "checkpoint supersedes the legacy files");
    assert_eq!(ns(&db, "tests"), vec![0, 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn collection_names_with_separators_survive_checkpoints() {
    let dir = tempdir("names");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        db.collection("../evil").insert_one(json!({"n": 0}));
        db.collection("a/b").insert_one(json!({"n": 1}));
        db.checkpoint().unwrap();
    }
    let (db, _) = Database::open_durable(&dir).unwrap();
    assert_eq!(ns(&db, "../evil"), vec![0]);
    assert_eq!(ns(&db, "a/b"), vec![1]);
    // Nothing escaped the database directory's checkpoint tree.
    assert!(!std::env::temp_dir().join("evil").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: multi-threaded writers hammering a durable database while
/// checkpoints run concurrently — after a crash-and-recover, every
/// acknowledged record is present exactly once.
#[test]
fn concurrent_writers_and_checkpoints_lose_nothing() {
    let dir = tempdir("concurrent");
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 50;
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        db.collection("responses").insert_one(json!({"key": format!("{w}-{i}")}));
                        if i % 10 == 0 {
                            db.collection("responses").update_many(
                                &json!({"key": format!("{w}-{i}")}),
                                &json!({"$set": {"touched": true}}),
                            );
                        }
                    }
                });
            }
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    db.checkpoint().unwrap();
                    std::thread::yield_now();
                }
            });
        });
        // Crash without a final checkpoint: the tail lives in the WAL.
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    let docs = db.collection("responses").all();
    assert_eq!(docs.len(), WRITERS * PER_WRITER, "no record lost");
    let mut keys: Vec<&str> = docs.iter().filter_map(|d| d["key"].as_str()).collect();
    keys.sort_unstable();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before, "no record duplicated");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_metrics_are_registered() {
    let dir = tempdir("metrics");
    let registry = Arc::new(kscope_telemetry::Registry::new());
    let (db, _) = Database::open_durable(&dir).unwrap();
    let db = db.with_telemetry(&registry);
    db.collection("c").insert_one(json!({"n": 0}));
    db.collection("c").insert_one(json!({"n": 1}));
    db.checkpoint().unwrap();

    assert_eq!(registry.counter_value("store.wal_appends_total", &[]), Some(2));
    assert!(registry.counter_value("store.wal_bytes", &[]).unwrap() > 0);
    assert_eq!(registry.counter_value("store.checkpoints_total", &[]), Some(1));
    assert_eq!(registry.counter_value("store.recovery_dropped_records", &[]), Some(0));
    let rendered = registry.render_prometheus();
    assert!(rendered.contains("store_checkpoint_duration_ms"), "histogram rendered:\n{rendered}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_reported_and_compacted() {
    let dir = tempdir("torn");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        db.collection("c").insert_one(json!({"n": 0}));
    }
    // A crash mid-append leaves garbage after the last record.
    let mut log = std::fs::read(dir.join("wal.log")).unwrap();
    log.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    std::fs::write(dir.join("wal.log"), &log).unwrap();

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(!report.clean());
    assert_eq!(report.dropped_records, 1);
    assert_eq!(report.dropped_bytes, 3);
    assert!(report.wal_rewritten);
    assert_eq!(ns(&db, "c"), vec![0]);
    drop(db);
    let (_, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean(), "compaction removed the torn tail");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_durable_with_accepts_custom_io() {
    let dir = tempdir("customio");
    let io: Arc<dyn StoreIo> = Arc::new(RealIo);
    let (db, _) = Database::open_durable_with(&dir, io).unwrap();
    db.collection("c").insert_one(json!({"n": 0}));
    let all: Vec<Value> = db.collection("c").all();
    assert_eq!(all.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unique_inserts_and_plain_mutations_interleave_without_deadlock() {
    // Regression: insert_if_absent used to take the docs write lock and
    // *then* the durability commit lock, while insert_one/update_many
    // take them in the opposite order — two threads mixing the two paths
    // could deadlock permanently. All mutation paths must now agree on
    // commit-lock-first.
    let dir = tempdir("lockorder");
    let (db, _) = Database::open_durable(&dir).unwrap();
    let coll = db.collection("mixed");
    std::thread::scope(|s| {
        for t in 0..4 {
            let coll = coll.clone();
            s.spawn(move || {
                for i in 0..200 {
                    let key = json!({"uniq": format!("k-{t}-{i}")});
                    coll.insert_if_absent(&key, json!({"uniq": format!("k-{t}-{i}")})).unwrap();
                }
            });
        }
        for t in 0..4 {
            let coll = coll.clone();
            s.spawn(move || {
                for i in 0..200 {
                    coll.insert_one(json!({"plain": true, "t": t, "i": i}));
                    coll.update_many(&json!({"t": t, "i": i}), &json!({"$set": {"seen": true}}));
                    coll.upsert_mutate(
                        &json!({"counter": t}),
                        json!({"counter": t, "n": 0}),
                        |d| {
                            let n = d["n"].as_u64().unwrap_or(0) + 1;
                            d["n"] = json!(n);
                        },
                    );
                }
            });
        }
    });
    assert_eq!(coll.count(&json!({"plain": true})), 800);
    for t in 0..4 {
        let c = coll.find_one(&json!({"counter": t})).unwrap();
        assert_eq!(c["n"], json!(200), "no lost counter increments");
    }
    drop(db);
    // Everything that was acknowledged replays.
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    let coll = db.collection("mixed");
    assert_eq!(coll.count(&json!({"plain": true})), 800);
    for t in 0..4 {
        assert_eq!(coll.find_one(&json!({"counter": t})).unwrap()["n"], json!(200));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejected_unique_insert_is_not_wal_logged() {
    let dir = tempdir("uniq-nolog");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        let coll = db.collection("responses");
        let key = json!({"submission_id": "s1"});
        coll.insert_if_absent(&key, json!({"submission_id": "s1", "x": 1})).unwrap();
        coll.insert_if_absent(&key, json!({"submission_id": "s1", "x": 2})).unwrap_err();
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(report.replayed_records, 1, "the rejected replay must not reach the WAL");
    let docs = db.collection("responses").all();
    assert_eq!(docs.len(), 1);
    assert_eq!(docs[0]["x"], json!(1), "original wins across recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_match_mutations_leave_the_wal_untouched() {
    // Regression: update_many/delete_many used to WAL-log (and fsync)
    // their op even when no document matched — supervisor sweeps on
    // quiet campaigns bloated the WAL with no-ops.
    let dir = tempdir("nomatch-nolog");
    let wal_path = dir.join(wal::WAL_FILE);
    let (db, _) = Database::open_durable(&dir).unwrap();
    let coll = db.collection("sessions");
    coll.insert_one(json!({"n": 0, "state": "leased"}));
    let before = std::fs::metadata(&wal_path).unwrap().len();

    assert_eq!(coll.update_many(&json!({"state": "ghost"}), &json!({"$set": {"x": 1}})), 0);
    assert_eq!(coll.delete_many(&json!({"state": "ghost"})), 0);
    let after = std::fs::metadata(&wal_path).unwrap().len();
    assert_eq!(after, before, "zero-match mutations must not append WAL records");

    // Matching mutations still log…
    assert_eq!(coll.update_many(&json!({"state": "leased"}), &json!({"$set": {"x": 1}})), 1);
    assert!(std::fs::metadata(&wal_path).unwrap().len() > after);
    drop(db);

    // …and replay: exactly insert + update, no no-op records.
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(report.replayed_records, 2);
    assert_eq!(db.collection("sessions").find_one(&json!({"n": 0})).unwrap()["x"], json!(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_window_preserves_every_acknowledged_write() {
    // Group commit trades one fsync per commit for one fsync per window,
    // but the contract is unchanged: a commit only returns once its
    // record is synced. Hammer the window from several threads across
    // two collections, then reopen and demand every write back.
    let dir = tempdir("group-commit");
    let registry = Arc::new(kscope_telemetry::Registry::new());
    let (db, _) = Database::open_durable(&dir).unwrap();
    let db = db.with_telemetry(&registry);
    assert!(db.set_group_commit_window(std::time::Duration::from_micros(200)));
    std::thread::scope(|s| {
        for t in 0..4 {
            let db = db.clone();
            s.spawn(move || {
                let coll = db.collection(if t % 2 == 0 { "responses" } else { "sessions" });
                for i in 0..100 {
                    coll.insert_one(json!({"t": t, "i": i}));
                }
            });
        }
    });
    assert_eq!(db.collection("responses").len() + db.collection("sessions").len(), 400);
    // Every append was synced through the group path: ops sums to the
    // commit count, and batching means (usually far) fewer fsync batches.
    let batches = registry.counter_value("store.group_commit_batches", &[]).unwrap_or(0);
    let ops = registry.counter_value("store.group_commit_ops", &[]).unwrap_or(0);
    assert_eq!(ops, 400, "each commit synced exactly once via the group");
    assert!((1..=400).contains(&batches), "got {batches} batches");
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(report.replayed_records, 400, "every acknowledged commit replays");
    assert_eq!(db.collection("responses").len() + db.collection("sessions").len(), 400);

    // The window can be disarmed again; plain per-commit fsync still works.
    assert!(db.set_group_commit_window(std::time::Duration::ZERO));
    db.collection("responses").insert_one(json!({"late": true}));
    drop(db);
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(db.collection("responses").count(&json!({"late": true})), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_memory_database_declines_group_commit() {
    let db = Database::new();
    assert!(!db.set_group_commit_window(std::time::Duration::from_micros(200)));
}

#[test]
fn upsert_mutate_replays_insert_then_updates() {
    let dir = tempdir("upsert-replay");
    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        let coll = db.collection("sessions");
        let key = json!({"contributor_id": "w1"});
        for _ in 0..3 {
            coll.upsert_mutate(&key, json!({"contributor_id": "w1", "beats": 0}), |d| {
                let beats = d["beats"].as_u64().unwrap_or(0) + 1;
                d["beats"] = json!(beats);
            });
        }
    }
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(report.replayed_records, 3, "one insert + two whole-doc updates");
    let doc = db.collection("sessions").find_one(&json!({"contributor_id": "w1"})).unwrap();
    assert_eq!(doc["beats"], json!(3));
    std::fs::remove_dir_all(&dir).unwrap();
}
