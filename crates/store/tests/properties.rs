//! Property tests: filter algebra and collection invariants.

use kscope_store::{matches_filter, Collection};
use proptest::prelude::*;
use serde_json::{json, Value};

/// A strategy for small scalar-valued documents.
fn doc_strategy() -> impl Strategy<Value = Value> {
    (0i64..20, "[a-c]{1}", any::<bool>()).prop_map(|(n, s, b)| json!({"n": n, "s": s, "b": b}))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// $not is an involution on matching.
    #[test]
    fn not_inverts(doc in doc_strategy(), n in 0i64..20) {
        let f = json!({"n": n});
        let not_f = json!({"$not": {"n": n}});
        prop_assert_eq!(matches_filter(&doc, &f), !matches_filter(&doc, &not_f));
    }

    /// $and of a filter with itself is the filter; $or likewise.
    #[test]
    fn and_or_idempotent(doc in doc_strategy(), n in 0i64..20) {
        let f = json!({"n": {"$gte": n}});
        let and_ff = json!({"$and": [{"n": {"$gte": n}}, {"n": {"$gte": n}}]});
        let or_ff = json!({"$or": [{"n": {"$gte": n}}, {"n": {"$gte": n}}]});
        let m = matches_filter(&doc, &f);
        prop_assert_eq!(matches_filter(&doc, &and_ff), m);
        prop_assert_eq!(matches_filter(&doc, &or_ff), m);
    }

    /// De Morgan: not(a and b) == (not a) or (not b).
    #[test]
    fn de_morgan(doc in doc_strategy(), n in 0i64..20, s in "[a-c]{1}") {
        let lhs = json!({"$not": {"$and": [{"n": {"$lt": n}}, {"s": s.clone()}]}});
        let rhs = json!({"$or": [{"$not": {"n": {"$lt": n}}}, {"$not": {"s": s}}]});
        prop_assert_eq!(matches_filter(&doc, &lhs), matches_filter(&doc, &rhs));
    }

    /// $gt and $lte partition the matching space for comparable values.
    #[test]
    fn gt_lte_partition(doc in doc_strategy(), n in 0i64..20) {
        let gt = matches_filter(&doc, &json!({"n": {"$gt": n}}));
        let lte = matches_filter(&doc, &json!({"n": {"$lte": n}}));
        prop_assert!(gt ^ lte, "exactly one of $gt/$lte must hold for numeric n");
    }

    /// find(filter) returns exactly the documents matching the filter.
    #[test]
    fn find_agrees_with_matcher(docs in prop::collection::vec(doc_strategy(), 0..30), n in 0i64..20) {
        let c = Collection::new();
        for d in &docs {
            c.insert_one(d.clone());
        }
        let filter = json!({"n": {"$gte": n}});
        let found = c.find(&filter);
        let expected = docs.iter().filter(|d| matches_filter(d, &filter)).count();
        prop_assert_eq!(found.len(), expected);
        for d in found {
            prop_assert!(matches_filter(&d, &filter));
        }
    }

    /// delete_many + count is consistent.
    #[test]
    fn delete_count_consistent(docs in prop::collection::vec(doc_strategy(), 0..30), b in any::<bool>()) {
        let c = Collection::new();
        for d in &docs {
            c.insert_one(d.clone());
        }
        let filter = json!({"b": b});
        let before = c.len();
        let matching = c.count(&filter);
        let deleted = c.delete_many(&filter);
        prop_assert_eq!(deleted, matching);
        prop_assert_eq!(c.len(), before - deleted);
        prop_assert_eq!(c.count(&filter), 0);
    }
}
