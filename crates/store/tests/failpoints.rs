//! Fault-injection crash-consistency tests (`--features failpoints`).
//!
//! Every test drives the durable store through [`FaultIo`], which injects
//! a deterministic failure — an I/O error, a torn or silently-short
//! write, or a simulated crash before/after an operation — then restarts
//! with a clean I/O layer and asserts recovery lands on a valid prefix of
//! acknowledged writes. The centerpiece enumerates a crash at *every*
//! operation of a checkpoint.

#![cfg(feature = "failpoints")]

use kscope_store::io::fault::{Failpoint, Fault, FaultIo, OpKind};
use kscope_store::{Database, GridStore, PersistError, RealIo};
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kscope-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ns(db: &Database, coll: &str) -> Vec<i64> {
    let mut ns: Vec<i64> =
        db.collection(coll).all().iter().filter_map(|d| d["n"].as_i64()).collect();
    ns.sort_unstable();
    ns
}

#[test]
fn enospc_on_wal_append_turns_the_store_read_only_until_checkpoint() {
    let dir = tempdir("enospc");
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Append,
        nth: 0,
        fault: Fault::Err("ENOSPC"),
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();

    // WAL-first: the append fails *before* the mutation applies, so the
    // write is rejected with a typed error — never acknowledged
    // non-durably, never served from memory.
    let err = db.collection("c").try_insert_one(json!({"n": 0})).unwrap_err();
    assert!(matches!(err, PersistError::ReadOnly), "typed rejection, got {err}");
    assert_eq!(db.collection("c").len(), 0, "rejected write was not applied");
    assert!(db.durability_status().unwrap().read_only);
    // Every further mutation is refused while the mode holds.
    assert!(db.collection("c").try_insert_one(json!({"n": 0})).is_err());
    assert!(db.collection("c").try_update_many(&json!({}), &json!({"x": 1})).is_err());

    // A successful checkpoint truncates the WAL, clears the mode, and
    // re-arms logging.
    db.checkpoint().unwrap();
    assert!(!db.durability_status().unwrap().read_only);
    db.collection("c").try_insert_one(json!({"n": 0})).unwrap();
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(ns(&db, "c"), vec![0], "retried write durable after the checkpoint");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_only_mode_rejects_mutations_to_keep_the_wal_hole_free() {
    let dir = tempdir("wal-hole");
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Append,
        nth: 1,
        fault: Fault::Err("ENOSPC"),
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    db.collection("c").try_insert_one(json!({"n": 0})).unwrap(); // logged
    let second = db.collection("c").try_insert_one(json!({"n": 1})); // append fails
    let third = db.collection("c").try_insert_one(json!({"n": 2})); // refused outright
    assert!(second.is_err() && third.is_err());
    assert_eq!(db.collection("c").len(), 1, "only the acknowledged write is visible");
    assert!(db.durability_status().unwrap().read_only);
    drop(db);

    // Recovery sees the consistent prefix up to the first failed append —
    // never a log with a gap, which could replay into a state that never
    // existed (e.g. a later filter-based update missing the unlogged doc).
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(ns(&db, "c"), vec![0], "exactly what was acknowledged");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_append_recovers_the_acknowledged_prefix() {
    let dir = tempdir("torn-append");
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Append,
        nth: 4,
        fault: Fault::Torn { keep: 5 },
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    for i in 0..4 {
        db.collection("c").try_insert_one(json!({"n": i})).unwrap();
    }
    // The torn append reports failure, so the fifth write is rejected and
    // the store goes read-only.
    assert!(db.collection("c").try_insert_one(json!({"n": 4})).is_err());
    assert!(db.durability_status().unwrap().read_only, "torn append flagged");
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(!report.clean());
    assert_eq!(report.dropped_bytes, 5);
    assert_eq!(ns(&db, "c"), vec![0, 1, 2, 3], "durable prefix, torn record dropped");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn silently_short_wal_write_is_caught_on_recovery() {
    let dir = tempdir("short-append");
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Append,
        nth: 4,
        fault: Fault::Short { keep: 7 },
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    for i in 0..5 {
        db.collection("c").insert_one(json!({"n": i}));
    }
    // The short write reported success, so the store cannot know yet…
    assert!(!db.durability_status().unwrap().degraded);
    drop(db);

    // …but the checksum catches it on recovery instead of replaying junk.
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(!report.clean());
    assert_eq!(ns(&db, "c"), vec![0, 1, 2, 3]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enospc_during_checkpoint_leaves_state_fully_recoverable() {
    let dir = tempdir("ckpt-enospc");
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Write,
        nth: 0,
        fault: Fault::Err("ENOSPC"),
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    for i in 0..3 {
        db.collection("c").insert_one(json!({"n": i}));
    }
    assert!(db.checkpoint().is_err(), "checkpoint write fails");
    // The database keeps serving, and the WAL still covers every write.
    assert_eq!(db.collection("c").len(), 3);
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, 0, "failed checkpoint never committed");
    assert_eq!(ns(&db, "c"), vec![0, 1, 2]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sync_failure_after_current_rename_does_not_lose_later_writes() {
    let dir = tempdir("post-commit-sync");
    // SyncDir 0 = ckpt temp dir, 1 = db dir after the ckpt rename,
    // 2 = db dir after the CURRENT rename — the first post-commit step.
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::SyncDir,
        nth: 2,
        fault: Fault::Err("EIO"),
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    db.collection("c").insert_one(json!({"n": 0}));
    // The commit point (CURRENT rename) already passed: the checkpoint
    // must report success and the in-memory seq must advance with it —
    // an Err with a stale seq would stamp every later write with a
    // sequence number the next recovery skips as already folded in.
    let stats = db.checkpoint().expect("post-commit sync failure is non-fatal");
    assert_eq!(stats.seq, 1);
    assert_eq!(db.durability_status().unwrap().seq, 1, "seq advanced with CURRENT");
    db.collection("c").insert_one(json!({"n": 1}));
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, 1);
    assert_eq!(ns(&db, "c"), vec![0, 1], "write after the checkpoint replays, not stale-skips");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_truncate_failure_after_current_rename_is_not_an_error() {
    let dir = tempdir("post-commit-truncate");
    // Write 0 = the one collection file, 1 = CURRENT.tmp, 2 = the
    // post-commit WAL truncation.
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Write,
        nth: 2,
        fault: Fault::Err("EIO"),
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    db.collection("c").insert_one(json!({"n": 0}));
    let stats = db.checkpoint().expect("failed WAL truncation is retried next checkpoint");
    assert_eq!(stats.seq, 1);
    db.collection("c").insert_one(json!({"n": 1}));
    drop(db);

    // The untruncated record is stale-skipped, the post-checkpoint write
    // replays: exactly-once either way.
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.stale_records, 1);
    assert_eq!(report.replayed_records, 1);
    assert_eq!(ns(&db, "c"), vec![0, 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_after_current_rename_skips_stale_wal_records() {
    let dir = tempdir("ckpt-current");
    let fio = FaultIo::new(Arc::new(RealIo))
        // Rename 0 promotes the checkpoint dir; rename 1 swings CURRENT.
        .with(Failpoint { kind: OpKind::Rename, nth: 1, fault: Fault::CrashAfter });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    for i in 0..3 {
        db.collection("c").insert_one(json!({"n": i}));
    }
    assert!(db.checkpoint().is_err(), "crash after the commit point");
    drop(db);

    // CURRENT committed but the WAL was never truncated: every record is
    // stale and must be skipped, not replayed into duplicates.
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert_eq!(report.checkpoint_seq, 1, "the new checkpoint won");
    assert_eq!(report.stale_records, 3);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(ns(&db, "c"), vec![0, 1, 2], "each record exactly once");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance enumeration: crash at *every* I/O operation of a
/// checkpoint in turn; recovery must always land on the full acknowledged
/// state — either from the old WAL or the new checkpoint, never a mix,
/// never a loss.
#[test]
fn crash_at_every_op_during_checkpoint_preserves_all_writes() {
    let mut exercised = 0;
    for i in 0.. {
        let dir = tempdir("ckpt-sweep");
        let fio = FaultIo::new(Arc::new(RealIo));
        let (db, _) = Database::open_durable_with(&dir, Arc::new(fio.clone())).unwrap();
        for n in 0..3 {
            db.collection("tests").insert_one(json!({"n": n}));
            db.collection("responses").insert_one(json!({"n": n + 10}));
        }
        let base = fio.ops_total();
        let _ = fio.clone().with(Failpoint {
            kind: OpKind::Any,
            nth: base + i,
            fault: Fault::CrashBefore,
        });
        let result = db.checkpoint();
        let crashed = fio.crashed();
        drop(db);

        let (db, _) = Database::open_durable(&dir)
            .unwrap_or_else(|e| panic!("recovery after crash at op {i} must succeed: {e}"));
        assert_eq!(ns(&db, "tests"), vec![0, 1, 2], "crash at op {i}");
        assert_eq!(ns(&db, "responses"), vec![10, 11, 12], "crash at op {i}");
        // The recovered database checkpoints cleanly despite any debris
        // (half-written temp dirs) the crash left behind.
        db.checkpoint().unwrap_or_else(|e| panic!("post-recovery checkpoint at op {i}: {e}"));
        drop(db);
        let (db, _) = Database::open_durable(&dir).unwrap();
        assert_eq!(ns(&db, "tests"), vec![0, 1, 2]);
        std::fs::remove_dir_all(&dir).unwrap();

        if !crashed {
            assert!(result.is_ok(), "iteration past the last op completes normally");
            break;
        }
        exercised += 1;
        assert!(i < 100, "runaway op count");
    }
    assert!(exercised >= 8, "sweep covered the checkpoint's operations, got {exercised}");
}

/// Satellite: the grid store's atomic swap under a crash at every
/// operation — a load after the crash sees either the old snapshot or the
/// new one, complete, never a blend and never a resurrection.
#[test]
fn grid_save_crash_at_every_op_yields_old_or_new_snapshot() {
    fn snapshot(g: &GridStore) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for t in g.test_ids() {
            for f in g.list(&t) {
                out.push((t.clone(), f.clone(), g.get_text(&t, &f).unwrap()));
            }
        }
        out
    }

    let v1 = GridStore::new();
    v1.put("t1", "a.html", b"v1-a".to_vec());
    v1.put("t1", "b.html", b"v1-b".to_vec());
    v1.put("dead", "x.html", b"v1-x".to_vec());
    let v2 = GridStore::new();
    v2.put("t1", "a.html", b"v2-a".to_vec());
    v2.put("t2", "c.html", b"v2-c".to_vec());
    let (v1_snap, v2_snap) = (snapshot(&v1), snapshot(&v2));

    let mut exercised = 0;
    for i in 0.. {
        let root = tempdir("grid-sweep");
        let dir = root.join("grid");
        v1.save_to_dir(&dir).unwrap();

        let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
            kind: OpKind::Any,
            nth: i,
            fault: Fault::CrashBefore,
        });
        let result = v2.save_to_dir_with(&dir, &fio);
        let crashed = fio.crashed();

        let loaded = GridStore::load_from_dir(&dir)
            .unwrap_or_else(|e| panic!("load after crash at op {i} must succeed: {e}"));
        let got = snapshot(&loaded);
        assert!(
            got == v1_snap || got == v2_snap,
            "crash at op {i}: load must see a complete snapshot, got {got:?}"
        );
        std::fs::remove_dir_all(&root).unwrap();

        if !crashed {
            assert!(result.is_ok());
            assert_eq!(got, v2_snap, "uninterrupted save lands the new snapshot");
            break;
        }
        exercised += 1;
        assert!(i < 100, "runaway op count");
    }
    assert!(exercised >= 8, "sweep covered the grid save's operations, got {exercised}");
}

#[test]
fn crash_before_wal_append_loses_only_the_unacknowledged_write() {
    let dir = tempdir("crash-append");
    let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
        kind: OpKind::Append,
        nth: 2,
        fault: Fault::CrashBefore,
    });
    let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
    db.collection("c").try_insert_one(json!({"n": 0})).unwrap();
    db.collection("c").try_insert_one(json!({"n": 1})).unwrap();
    // The process "dies" at this append: the write is never acknowledged.
    assert!(db.collection("c").try_insert_one(json!({"n": 2})).is_err());
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean(), "a pre-write crash tears nothing");
    assert_eq!(ns(&db, "c"), vec![0, 1], "exactly the acknowledged prefix");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: the compaction/checkpoint commit point under concurrent
/// writers. A burst of `try_insert_one` traffic races a checkpoint whose
/// process crashes immediately before or after the `CURRENT` rename;
/// recovery must contain *every* acknowledged write (either via the old
/// WAL or the new checkpoint) and nothing that was never attempted.
#[test]
fn compaction_crash_around_current_rename_keeps_every_acknowledged_write() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    // Rename 0 promotes the checkpoint dir; rename 1 swings CURRENT.
    for (tag, nth, fault) in [
        ("pre-promote", 0, Fault::CrashBefore),
        ("post-promote", 0, Fault::CrashAfter),
        ("pre-current", 1, Fault::CrashBefore),
        ("post-current", 1, Fault::CrashAfter),
    ] {
        let dir = tempdir(&format!("compact-crash-{tag}"));
        let fio =
            FaultIo::new(Arc::new(RealIo)).with(Failpoint { kind: OpKind::Rename, nth, fault });
        let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
        for i in 0..3 {
            db.collection("c").try_insert_one(json!({"n": i})).unwrap();
        }

        let acked = Arc::new(Mutex::new(vec![0i64, 1, 2]));
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..3i64 {
            let db = db.clone();
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                for k in 0..50i64 {
                    let n = 100 * (t + 1) + k;
                    match db.collection("c").try_insert_one(json!({"n": n})) {
                        Ok(_) => acked.lock().unwrap().push(n),
                        // The crash fault fails every later op — stop.
                        Err(_) => break,
                    }
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }));
        }
        // The checkpoint races the writers and dies at the armed rename.
        let _ = db.checkpoint();
        stop.store(true, Ordering::SeqCst);
        for w in writers {
            w.join().unwrap();
        }
        drop(db);

        let (db, _) = Database::open_durable(&dir)
            .unwrap_or_else(|e| panic!("recovery after {tag} crash must succeed: {e}"));
        let recovered = ns(&db, "c");
        let mut expected = acked.lock().unwrap().clone();
        expected.sort_unstable();
        for n in &expected {
            assert!(recovered.contains(n), "{tag}: acknowledged write {n} lost");
        }
        // Nothing invented: every recovered doc was attempted by a writer.
        for n in &recovered {
            assert!((0..3).contains(n) || (100..=350).contains(n), "{tag}: unexpected doc {n}");
        }
        // The recovered store checkpoints cleanly despite crash debris.
        db.checkpoint().unwrap_or_else(|e| panic!("post-recovery checkpoint ({tag}): {e}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
