//! Index/scan equivalence suite.
//!
//! Secondary indexes are an access path, not a second source of truth:
//! for any document set, `find_by_index` and `range_by_index` must return
//! exactly the documents a linear [`matches_filter`] scan returns, and
//! the planner behind `find` must never change *what* a filter matches —
//! only how fast. These tests drive randomized (seeded, deterministic)
//! document sets through inserts, updates, and deletes and assert the
//! equivalence at every probe, including across crash recovery where the
//! indexes are rebuilt from checkpoint + WAL replay.

use kscope_store::{matches_filter, Collection};
use serde_json::{json, Value};

/// Deterministic 64-bit LCG (Knuth constants) — keeps the "random" doc
/// sets identical across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A response-shaped document. Deadlines straddle 2^53 so ordered scans
/// exercise exact integer comparison, not f64 round-trips.
fn gen_doc(rng: &mut Lcg) -> Value {
    let t = format!("t-{}", rng.next() % 4);
    let w = format!("w-{}", rng.next() % 8);
    let base: u64 = if rng.next().is_multiple_of(2) { 1_000 } else { (1u64 << 53) - 8 };
    let deadline = base + rng.next() % 16;
    json!({
        "test_id": t,
        "contributor_id": w,
        "deadline": deadline,
        "payload": rng.next() % 100,
    })
}

/// Order-insensitive canonical form for comparing result sets.
fn canon(docs: &[Value]) -> Vec<String> {
    let mut v: Vec<String> =
        docs.iter().map(|d| serde_json::to_string(d).expect("serializable")).collect();
    v.sort();
    v
}

fn scan(all: &[Value], filter: &Value) -> Vec<Value> {
    all.iter().filter(|d| matches_filter(d, filter)).cloned().collect()
}

#[test]
fn find_by_index_matches_linear_scan_through_churn() {
    for seed in 0..8u64 {
        let c = Collection::new();
        c.ensure_index("by_worker", &["test_id", "contributor_id"], false);
        let mut rng = Lcg(seed * 2 + 1);
        for _ in 0..200 {
            c.insert_one(gen_doc(&mut rng));
        }
        // Churn: move some docs between index keys and delete others, so
        // the equivalence covers posting maintenance, not just inserts.
        c.update_many(
            &json!({"payload": {"$lt": 10}}),
            &json!({"$set": {"contributor_id": "w-moved"}}),
        );
        c.delete_many(&json!({"payload": {"$gte": 90}}));

        let all = c.all();
        for t in 0..4 {
            let tid = format!("t-{t}");
            // Prefix probe: every session of one test.
            let by_test = c.find_by_index("by_worker", &[json!(tid.clone())]);
            assert_eq!(
                canon(&by_test),
                canon(&scan(&all, &json!({"test_id": tid.clone()}))),
                "seed {seed}: prefix probe on {tid}"
            );
            for w in ["w-0", "w-3", "w-7", "w-moved", "w-absent"] {
                let via_index = c.find_by_index("by_worker", &[json!(tid.clone()), json!(w)]);
                let filter = json!({"test_id": tid.clone(), "contributor_id": w});
                assert_eq!(
                    canon(&via_index),
                    canon(&scan(&all, &filter)),
                    "seed {seed}: point probe ({tid}, {w})"
                );
            }
        }
    }
}

#[test]
fn range_by_index_matches_filtered_scan_and_is_ordered() {
    for seed in [3u64, 17, 99] {
        let c = Collection::new();
        c.ensure_index("by_deadline", &["test_id", "deadline"], false);
        let mut rng = Lcg(seed);
        for _ in 0..300 {
            c.insert_one(gen_doc(&mut rng));
        }
        let all = c.all();
        let windows: [(u64, u64); 3] = [
            (0, u64::MAX),
            (1_000, 1_008),
            // Adjacent integers above 2^53: an f64-coerced comparison
            // would collapse these bounds.
            ((1u64 << 53) - 6, (1u64 << 53) + 4),
        ];
        for t in 0..4 {
            let tid = format!("t-{t}");
            for (lo, hi) in windows {
                let ranged = c.range_by_index(
                    "by_deadline",
                    Some(&[json!(tid.clone()), json!(lo)]),
                    Some(&[json!(tid.clone()), json!(hi)]),
                );
                let filter = json!({"test_id": tid.clone(), "deadline": {"$gte": lo, "$lte": hi}});
                assert_eq!(
                    canon(&ranged),
                    canon(&scan(&all, &filter)),
                    "seed {seed}: range [{lo}, {hi}] on {tid}"
                );
                let ds: Vec<u64> = ranged.iter().map(|d| d["deadline"].as_u64().unwrap()).collect();
                assert!(
                    ds.windows(2).all(|w| w[0] <= w[1]),
                    "seed {seed}: range results come back deadline-ordered, got {ds:?}"
                );
            }
            // A short hi bound covers the whole test's key space.
            let whole = c.range_by_index(
                "by_deadline",
                Some(&[json!(tid.clone())]),
                Some(&[json!(tid.clone())]),
            );
            assert_eq!(
                canon(&whole),
                canon(&scan(&all, &json!({"test_id": tid}))),
                "seed {seed}: short-bound range equals the test's docs"
            );
        }
    }
}

#[test]
fn planned_find_agrees_with_matcher_on_indexed_collections() {
    for seed in [7u64, 21] {
        let c = Collection::new();
        c.ensure_index("by_worker", &["test_id", "contributor_id"], false);
        c.ensure_index("by_deadline", &["test_id", "deadline"], false);
        let mut rng = Lcg(seed);
        for _ in 0..250 {
            c.insert_one(gen_doc(&mut rng));
        }
        let all = c.all();
        let filters = [
            // Eq-prefix → index point lookup.
            json!({"test_id": "t-1", "contributor_id": "w-2"}),
            // Eq + range → index range scan.
            json!({"test_id": "t-2", "deadline": {"$gte": (1u64 << 53) - 2}}),
            json!({"test_id": "t-0", "deadline": {"$lt": 1_010u64}}),
            // Unindexed field → graceful cross-shard fallback scan.
            json!({"payload": {"$gte": 50}}),
            // Operators the planner ignores → fallback, still correct.
            json!({"$or": [{"test_id": "t-3"}, {"payload": 7}]}),
            json!({"test_id": {"$in": ["t-0", "t-3"]}}),
        ];
        for filter in &filters {
            assert_eq!(
                canon(&c.find(filter)),
                canon(&scan(&all, filter)),
                "seed {seed}: find must agree with the matcher for {filter}"
            );
        }
    }
}

/// Crash-recovery half of the suite: indexes rebuilt from checkpoint +
/// WAL replay answer exactly like a fresh build over the recovered
/// documents, with one index declared before the checkpoint (recovered
/// from the checkpoint's index manifest) and one after (recovered from
/// its WAL record).
#[cfg(feature = "failpoints")]
mod crash_recovery {
    use super::*;
    use kscope_store::io::fault::{Failpoint, Fault, FaultIo, OpKind};
    use kscope_store::{Database, RealIo};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kscope-idx-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn probe_equivalence(c: &Collection, context: &str) {
        let all = c.all();
        for t in 0..4 {
            let tid = format!("t-{t}");
            for w in 0..8 {
                let wid = format!("w-{w}");
                let via_index =
                    c.find_by_index("by_worker", &[json!(tid.clone()), json!(wid.clone())]);
                let filter = json!({"test_id": tid.clone(), "contributor_id": wid});
                assert_eq!(canon(&via_index), canon(&scan(&all, &filter)), "{context}");
            }
            // hi is the bare prefix: padded to the top of tid's key
            // space, i.e. "deadline ≥ 2^53 within this test".
            let ranged = c.range_by_index(
                "by_deadline",
                Some(&[json!(tid.clone()), json!(1u64 << 53)]),
                Some(&[json!(tid.clone())]),
            );
            let filter = json!({"test_id": tid, "deadline": {"$gte": 1u64 << 53}});
            assert_eq!(canon(&ranged), canon(&scan(&all, &filter)), "{context}");
        }
    }

    #[test]
    fn recovered_indexes_answer_like_a_fresh_build() {
        let dir = tempdir("rebuild");
        // Tear the 70th WAL append: recovery lands on the acknowledged
        // prefix and must rebuild both indexes over exactly that prefix.
        let fio = FaultIo::new(Arc::new(RealIo)).with(Failpoint {
            kind: OpKind::Append,
            nth: 70,
            fault: Fault::Torn { keep: 9 },
        });
        {
            let (db, _) = Database::open_durable_with(&dir, Arc::new(fio)).unwrap();
            let c = db.collection("responses");
            // Declared pre-checkpoint: persisted in the checkpoint's
            // index manifest.
            assert!(c.ensure_index("by_worker", &["test_id", "contributor_id"], false));
            let mut rng = Lcg(41);
            for _ in 0..40 {
                c.insert_one(gen_doc(&mut rng));
            }
            db.checkpoint().unwrap();
            // Declared post-checkpoint: recovered from its WAL record.
            assert!(c.ensure_index("by_deadline", &["test_id", "deadline"], false));
            // The torn append rejects that write and turns the store
            // read-only, so this tail of traffic is (correctly) refused —
            // recovery must land on exactly the acknowledged prefix.
            for _ in 0..40 {
                let _ = c.try_insert_one(gen_doc(&mut rng));
            }
            let _ = c.try_update_many(
                &json!({"payload": {"$lt": 20}}),
                &json!({"$set": {"contributor_id": "w-0"}}),
            );
            let _ = c.try_delete_many(&json!({"payload": {"$gte": 80}}));
            // Crash: no checkpoint, handle dropped with a torn WAL tail.
        }

        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(!report.clean(), "the torn tail was dropped");
        let c = db.collection("responses");
        let defs: Vec<String> = c.index_defs().iter().map(|d| d.name.clone()).collect();
        assert_eq!(defs, vec!["by_deadline".to_string(), "by_worker".to_string()]);
        probe_equivalence(&c, "after crash recovery");

        // The rebuilt indexes agree with a from-scratch build over the
        // recovered documents.
        let fresh = Collection::new();
        fresh.ensure_index("by_worker", &["test_id", "contributor_id"], false);
        fresh.ensure_index("by_deadline", &["test_id", "deadline"], false);
        for d in c.all() {
            fresh.insert_one(d);
        }
        for t in 0..4 {
            let tid = format!("t-{t}");
            let recovered = c.find_by_index("by_worker", &[json!(tid.clone())]);
            let rebuilt = fresh.find_by_index("by_worker", &[json!(tid)]);
            assert_eq!(canon(&recovered), canon(&rebuilt));
        }

        // And the recovered state checkpoints (index manifest included)
        // and reopens cleanly.
        db.checkpoint().unwrap();
        drop(db);
        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(report.clean());
        let c = db.collection("responses");
        assert_eq!(c.index_defs().len(), 2);
        probe_equivalence(&c, "after post-recovery checkpoint");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
