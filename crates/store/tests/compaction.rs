//! Background compaction, checkpoint retention, and read-only mode —
//! the disk-pressure half of crash-only operation.

use kscope_store::{spawn_compactor, CompactionConfig, Database, PersistError};
use kscope_telemetry::Registry;
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kscope-compact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ckpt_dirs(dir: &PathBuf) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-") && !n.ends_with(".tmp"))
        .collect();
    out.sort();
    out
}

#[test]
fn retain_checkpoints_deletes_old_dirs_and_current_never_dangles() {
    let dir = tempdir("retain");
    let (db, _) = Database::open_durable(&dir).unwrap();

    // Default policy keeps the newest two checkpoints.
    for i in 0..5 {
        db.collection("c").insert_one(json!({"n": i}));
        db.checkpoint().unwrap();
    }
    assert_eq!(
        ckpt_dirs(&dir),
        vec!["ckpt-00000004".to_string(), "ckpt-00000005".to_string()],
        "default retention keeps the newest 2"
    );

    // Tightening to 1 takes effect at the next checkpoint; a request for
    // 0 is clamped so the checkpoint CURRENT names always survives.
    assert!(db.retain_checkpoints(0));
    db.collection("c").insert_one(json!({"n": 5}));
    db.checkpoint().unwrap();
    assert_eq!(ckpt_dirs(&dir), vec!["ckpt-00000006".to_string()], "clamped to K=1");

    // Widening keeps more history from here on.
    assert!(db.retain_checkpoints(3));
    for i in 6..9 {
        db.collection("c").insert_one(json!({"n": i}));
        db.checkpoint().unwrap();
    }
    assert_eq!(
        ckpt_dirs(&dir),
        vec!["ckpt-00000007".to_string(), "ckpt-00000008".to_string(), "ckpt-00000009".to_string()]
    );
    drop(db);

    // CURRENT points into the retained set: recovery succeeds and sees
    // every acknowledged write.
    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(db.collection("c").len(), 9);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retain_checkpoints_is_a_durable_database_operation() {
    let db = Database::new();
    assert!(!db.retain_checkpoints(3), "in-memory database has no checkpoints to retain");
    assert!(!db.force_read_only(true), "in-memory database has no read-only mode");
    assert!(!db.is_read_only());
}

#[test]
fn compactor_checkpoints_when_wal_pressure_crosses_threshold() {
    let dir = tempdir("pressure");
    let registry = Arc::new(Registry::new());
    let (db, _) = Database::open_durable(&dir).unwrap();
    let db = db.with_telemetry(&registry);

    let mut handle = spawn_compactor(
        &db,
        CompactionConfig {
            wal_bytes_threshold: 512,
            poll_interval: Duration::from_millis(10),
            min_interval: Duration::ZERO,
            ..CompactionConfig::default()
        },
    )
    .unwrap();

    for i in 0..50 {
        db.collection("c").insert_one(json!({"n": i, "pad": "x".repeat(64)}));
    }

    // Wait for the background thread to fold WAL pressure into at least
    // one checkpoint (a sub-threshold residue from writes racing the
    // checkpoint may legitimately remain in the WAL).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let compactions = registry.counter_value("store.compactions_total", &[]).unwrap_or(0);
        let residue = db.durability_status().unwrap().wal_bytes;
        if compactions >= 1 && residue < 512 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compactor never relieved WAL pressure: {:?}",
            db.durability_status()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();

    let status = db.durability_status().unwrap();
    assert!(status.seq >= 1, "checkpoint committed: {status:?}");
    assert_eq!(
        registry.gauge_value("store.disk_bytes", &[("file", "wal")]),
        Some(status.wal_bytes as i64)
    );
    assert!(registry.gauge_value("store.disk_bytes", &[("file", "checkpoints")]).unwrap_or(0) > 0);
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(db.collection("c").len(), 50, "no write lost across background compactions");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_only_mode_rejects_writes_and_compaction_auto_clears_it() {
    let dir = tempdir("read-only-clear");
    let registry = Arc::new(Registry::new());
    let (db, _) = Database::open_durable(&dir).unwrap();
    let db = db.with_telemetry(&registry);
    db.collection("c").insert_one(json!({"n": 0}));

    assert!(db.force_read_only(true));
    assert!(db.is_read_only());
    assert_eq!(registry.gauge_value("store.read_only", &[]), Some(1));
    let err = db.collection("c").try_insert_one(json!({"n": 1})).unwrap_err();
    assert!(matches!(err, PersistError::ReadOnly));
    assert!(db.collection("c").try_delete_many(&json!({"n": 0})).is_err());
    assert!(db.collection("c").try_upsert_mutate(&json!({"n": 0}), json!({}), |_| {}).is_err());
    assert_eq!(db.collection("c").len(), 1, "nothing applied while read-only");

    // The compactor sees the mode and checkpoints immediately (the
    // min-interval throttle does not apply to an outage).
    let mut handle = spawn_compactor(
        &db,
        CompactionConfig {
            poll_interval: Duration::from_millis(10),
            min_interval: Duration::from_secs(3600),
            ..CompactionConfig::default()
        },
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.is_read_only() {
        assert!(Instant::now() < deadline, "compaction never cleared read-only mode");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();

    assert_eq!(registry.gauge_value("store.read_only", &[]), Some(0));
    db.collection("c").try_insert_one(json!({"n": 1})).unwrap();
    drop(db);

    let (db, report) = Database::open_durable(&dir).unwrap();
    assert!(report.clean());
    assert_eq!(db.collection("c").len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_status_reports_wal_pressure() {
    let dir = tempdir("status");
    let (db, _) = Database::open_durable(&dir).unwrap();
    let before = db.durability_status().unwrap();
    assert_eq!((before.wal_bytes, before.wal_records), (0, 0));
    db.collection("c").insert_one(json!({"n": 0}));
    db.collection("c").insert_one(json!({"n": 1}));
    let after = db.durability_status().unwrap();
    assert_eq!(after.wal_records, 2);
    assert!(after.wal_bytes > 0);
    drop(db);

    // Reopening re-seeds the pressure counters from the surviving WAL.
    let (db, _) = Database::open_durable(&dir).unwrap();
    let reopened = db.durability_status().unwrap();
    assert_eq!(reopened.wal_records, 2);
    assert_eq!(reopened.wal_bytes, after.wal_bytes);
    db.checkpoint().unwrap();
    let folded = db.durability_status().unwrap();
    assert_eq!((folded.wal_bytes, folded.wal_records), (0, 0));
    std::fs::remove_dir_all(&dir).unwrap();
}
