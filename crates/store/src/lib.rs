//! Document database and file storage — the MongoDB substitute.
//!
//! The paper stores Kaleidoscope's test data in MongoDB: three schemaless
//! collections (integrated webpages, basic test information, participant
//! responses) plus a storage system holding each test's resource files in a
//! folder named after the test id. This crate reproduces that surface:
//!
//! * [`Database`] / [`Collection`] — named collections of JSON documents
//!   with auto-assigned `_id`s, Mongo-style filter queries (`$gt`, `$in`,
//!   `$or`, dotted paths, …), `$set` updates, and JSONL persistence.
//! * [`GridStore`] — the per-test file store ("we create a new folder which
//!   is named after the test id, and all related files … are stored in it").
//! * Crash-safe persistence — [`Database::open_durable`] arms a
//!   CRC32-checksummed write-ahead log on every mutation,
//!   [`Database::checkpoint`] takes atomic snapshots, and recovery
//!   tolerates torn tails (see the [`wal`] and [`durable`] modules, and
//!   the fault-injection layer in [`io`] behind the `failpoints` feature).
//!
//! Both are thread-safe (`parking_lot`) because the core server answers
//! requests from a worker pool.
//!
//! # Example
//!
//! ```
//! use kscope_store::Database;
//! use serde_json::json;
//!
//! let db = Database::new();
//! let tests = db.collection("tests");
//! tests.insert_one(json!({"test_id": "t-1", "participant_num": 100}));
//! let found = tests.find(&json!({"participant_num": {"$gte": 50}}));
//! assert_eq!(found.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod compaction;
pub mod database;
pub mod durable;
pub mod filter;
pub mod grid;
pub mod index;
pub mod io;
pub mod wal;

pub use collection::{Collection, ObjectId, SHARD_COUNT};
pub use compaction::{
    spawn_compactor, CompactObserver, CompactionConfig, CompactorHandle, DEFAULT_COMPACT_WAL_BYTES,
};
pub use database::{Database, PersistError};
pub use durable::{CheckpointStats, DurabilityStatus};
pub use filter::matches_filter;
pub use grid::GridStore;
pub use index::{IndexDef, KeyPart};
pub use io::{escape_component, unescape_component, RealIo, StoreIo};
pub use wal::RecoveryReport;
