//! A schemaless collection of JSON documents, sharded for concurrency and
//! fronted by optional secondary indexes.
//!
//! Documents live in [`SHARD_COUNT`] shards, each behind its own `RwLock`,
//! keyed by the document's insertion sequence number. A document with a
//! string `_id` is placed in the shard its id hashes to (so `_id` lookups
//! touch exactly one lock); legacy documents without an id are placed by
//! sequence number. Declared secondary indexes ([`Collection::ensure_index`])
//! are maintained under the same shard write locks as the mutation they
//! reflect, so index readers can never observe a key the documents don't
//! back (stale postings are tolerated by re-verifying every candidate).
//!
//! Lock order, collection-internal: shard lock(s) → index lock. Combined
//! with the durability engine's rule (commit/state lock before data locks)
//! the global order is commit → shard → index; readers that probe the index
//! first drop the index lock before touching any shard.

use crate::database::PersistError;
use crate::durable::Durability;
use crate::filter::{lookup_path, matches_filter, set_path};
use crate::index::{pad, Index, IndexDef, IndexSet, KeyPart};
use kscope_telemetry::{Counter, Histogram, Registry};
use parking_lot::RwLock;
use serde_json::{json, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::{Bound, Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of document shards per collection. Writers touching different
/// documents contend only when they hash to the same shard.
pub const SHARD_COUNT: usize = 16;

/// A document identifier assigned on insert (`_id` field).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(String);

impl ObjectId {
    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<ObjectId> for Value {
    fn from(id: ObjectId) -> Value {
        Value::String(id.0)
    }
}

/// FNV-1a over the id string — cheap, stable across runs (shard placement
/// must be deterministic so WAL replay rebuilds identical shards).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a document belongs to: id hash when it has a string `_id`,
/// else its sequence number.
fn shard_of(id: Option<&str>, seq: u64) -> usize {
    match id {
        Some(id) => (fnv1a(id) % SHARD_COUNT as u64) as usize,
        None => (seq % SHARD_COUNT as u64) as usize,
    }
}

/// One shard: documents keyed by insertion sequence number, plus the
/// id → sequence map that makes `_id` point lookups O(log n) in one shard.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    docs: BTreeMap<u64, Value>,
    by_id: HashMap<String, u64>,
}

/// Per-collection operation metrics, attached at most once per collection
/// (see [`Collection::attach_metrics`]). Reads go through a `OnceLock`, so
/// instrumented operations never take an extra lock — counter and
/// histogram updates are plain atomics.
#[derive(Debug)]
pub(crate) struct CollectionMetrics {
    inserts: Counter,
    finds: Counter,
    updates: Counter,
    deletes: Counter,
    op_latency: Histogram,
    index_lookups: Counter,
    index_range_scans: Counter,
    fallback_scans: Counter,
}

impl CollectionMetrics {
    fn register(registry: &Registry, collection: &str) -> Self {
        let labels = [("collection", collection)];
        Self {
            inserts: registry.counter_with("store.inserts_total", &labels),
            finds: registry.counter_with("store.finds_total", &labels),
            updates: registry.counter_with("store.updates_total", &labels),
            deletes: registry.counter_with("store.deletes_total", &labels),
            op_latency: registry.histogram_with("store.op_latency_us", &labels),
            index_lookups: registry.counter_with("store.index_lookups_total", &labels),
            index_range_scans: registry.counter_with("store.index_range_scans_total", &labels),
            fallback_scans: registry.counter_with("store.index_fallback_scans_total", &labels),
        }
    }
}

/// A thread-safe, schemaless document collection.
///
/// Documents are JSON objects; inserting a non-object wraps it under a
/// `value` key so every stored document can carry an `_id`.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    inner: Arc<CollectionInner>,
}

/// A collection's link to its database's durability engine: mutations are
/// WAL-logged under `name` before they apply.
#[derive(Debug)]
struct CollectionDurability {
    dur: Arc<Durability>,
    name: String,
}

#[derive(Debug)]
struct CollectionInner {
    shards: Vec<RwLock<Shard>>,
    indexes: RwLock<IndexSet>,
    /// Fast-path flag so unindexed collections pay zero index overhead on
    /// the mutation path. Set under all shard write locks, read under at
    /// least one shard lock — the lock handoff orders the load.
    has_indexes: AtomicBool,
    next_seq: AtomicU64,
    next_id: AtomicU64,
    metrics: OnceLock<CollectionMetrics>,
    durability: OnceLock<CollectionDurability>,
}

impl Default for CollectionInner {
    fn default() -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(Shard::default())).collect(),
            indexes: RwLock::new(IndexSet::default()),
            has_indexes: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            metrics: OnceLock::new(),
            durability: OnceLock::new(),
        }
    }
}

/// How a query will be executed.
enum Plan {
    /// `_id` point lookup: one shard, one hash probe.
    ById(String),
    /// Bounded probe of a declared index.
    Index { name: String, lo: Bound<Vec<KeyPart>>, hi: Bound<Vec<KeyPart>>, point: bool },
    /// Cross-shard linear scan — the graceful degradation path.
    Scan,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches per-collection operation metrics (`store.inserts_total`,
    /// `store.finds_total`, `store.updates_total`, `store.deletes_total`,
    /// the `store.op_latency_us` histogram, and the query-plan counters
    /// `store.index_lookups_total`, `store.index_range_scans_total`,
    /// `store.index_fallback_scans_total`, all labelled `{collection}`).
    /// A no-op if metrics are already attached.
    pub fn attach_metrics(&self, registry: &Registry, collection: &str) {
        let _ = self.inner.metrics.set(CollectionMetrics::register(registry, collection));
    }

    /// Whether operation metrics are attached.
    pub fn has_metrics(&self) -> bool {
        self.inner.metrics.get().is_some()
    }

    /// Links this collection to a database's durability engine so every
    /// mutation is WAL-logged before it applies. A no-op if already linked.
    pub(crate) fn attach_durability(&self, dur: &Arc<Durability>, name: &str) {
        let _ = self
            .inner
            .durability
            .set(CollectionDurability { dur: Arc::clone(dur), name: name.to_string() });
    }

    /// Counts one op on `counter` and returns a latency timer for it, when
    /// metrics are attached.
    fn observe_op(
        &self,
        counter: impl Fn(&CollectionMetrics) -> &Counter,
    ) -> Option<kscope_telemetry::ScopedTimer> {
        self.inner.metrics.get().map(|m| {
            counter(m).inc();
            m.op_latency.start_timer()
        })
    }

    /// Counts which plan a query took (point lookup / range scan /
    /// fallback scan), when metrics are attached.
    fn note_plan(&self, plan: &Plan) {
        if let Some(m) = self.inner.metrics.get() {
            match plan {
                Plan::ById(_) | Plan::Index { point: true, .. } => m.index_lookups.inc(),
                Plan::Index { .. } => m.index_range_scans.inc(),
                Plan::Scan => m.fallback_scans.inc(),
            }
        }
    }

    // ---- shard access ------------------------------------------------

    fn lock_all_read(&self) -> Vec<impl Deref<Target = Shard> + '_> {
        self.inner.shards.iter().map(|s| s.read()).collect()
    }

    fn lock_all_write(&self) -> Vec<impl DerefMut<Target = Shard> + '_> {
        self.inner.shards.iter().map(|s| s.write()).collect()
    }

    /// Wraps non-objects and assigns an `_id` exactly like every insert
    /// path always has, returning the id plus the finalized document.
    fn prepare_doc(&self, mut doc: Value) -> (ObjectId, Value) {
        if !doc.is_object() {
            doc = serde_json::json!({ "value": doc });
        }
        let obj = doc.as_object_mut().expect("wrapped to object above");
        let id = match obj.get("_id").and_then(Value::as_str) {
            Some(existing) => ObjectId(existing.to_string()),
            None => {
                let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
                let id = ObjectId(format!("oid-{n:08x}"));
                obj.insert("_id".to_string(), Value::String(id.0.clone()));
                id
            }
        };
        (id, doc)
    }

    /// Places a prepared document, locking only its target shard. Index
    /// postings are added under that shard's write lock, so a reader that
    /// sees the posting will find the document once it gets the shard.
    fn place_doc(&self, doc: Value) {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let sid = doc.get("_id").and_then(Value::as_str).map(str::to_string);
        let shard_idx = shard_of(sid.as_deref(), seq);
        let mut shard = self.inner.shards[shard_idx].write();
        if self.inner.has_indexes.load(Ordering::SeqCst) {
            self.inner.indexes.write().add_doc(&doc, (seq, shard_idx));
        }
        if let Some(sid) = sid {
            shard.by_id.insert(sid, seq);
        }
        shard.docs.insert(seq, doc);
    }

    /// Places a prepared document while the caller already holds every
    /// shard write lock.
    fn place_doc_locked(&self, guards: &mut [impl DerefMut<Target = Shard>], doc: Value) {
        if self.inner.has_indexes.load(Ordering::SeqCst) {
            let mut ix = self.inner.indexes.write();
            self.place_into(guards, Some(&mut ix), doc);
        } else {
            self.place_into(guards, None, doc);
        }
    }

    fn place_into(
        &self,
        guards: &mut [impl DerefMut<Target = Shard>],
        indexes: Option<&mut IndexSet>,
        doc: Value,
    ) {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let sid = doc.get("_id").and_then(Value::as_str).map(str::to_string);
        let shard_idx = shard_of(sid.as_deref(), seq);
        if let Some(ix) = indexes {
            ix.add_doc(&doc, (seq, shard_idx));
        }
        let shard = &mut guards[shard_idx];
        if let Some(sid) = sid {
            shard.by_id.insert(sid, seq);
        }
        shard.docs.insert(seq, doc);
    }

    /// Replaces the document at (`shard_idx`, `seq`) with `new_doc`,
    /// keeping its sequence number, re-keying every index, and rehoming
    /// the document when its `_id` (and therefore its home shard) changed.
    fn replace_doc_locked(
        &self,
        guards: &mut [impl DerefMut<Target = Shard>],
        shard_idx: usize,
        seq: u64,
        new_doc: Value,
    ) {
        let Some(old) = guards[shard_idx].docs.remove(&seq) else { return };
        if let Some(sid) = old.get("_id").and_then(Value::as_str) {
            guards[shard_idx].by_id.remove(sid);
        }
        let new_sid = new_doc.get("_id").and_then(Value::as_str).map(str::to_string);
        let new_shard = shard_of(new_sid.as_deref(), seq);
        if self.inner.has_indexes.load(Ordering::SeqCst) {
            self.inner.indexes.write().update_doc(
                &old,
                (seq, shard_idx),
                &new_doc,
                (seq, new_shard),
            );
        }
        if let Some(sid) = new_sid {
            guards[new_shard].by_id.insert(sid, seq);
        }
        guards[new_shard].docs.insert(seq, new_doc);
    }

    // ---- query planning ----------------------------------------------

    /// Chooses how to execute `filter`: `_id` probe, the best-scoring
    /// declared index, or a fallback scan. Candidates from any plan are
    /// always re-verified with [`matches_filter`], so the planner only has
    /// to guarantee a *superset* of the true matches.
    fn plan_query(&self, filter: &Value) -> Plan {
        let Some(obj) = filter.as_object() else { return Plan::Scan };
        if obj.is_empty() {
            return Plan::Scan;
        }
        if let Some(Value::String(id)) = obj.get("_id") {
            return Plan::ById(id.clone());
        }
        if !self.inner.has_indexes.load(Ordering::SeqCst) {
            return Plan::Scan;
        }
        // Classify top-level fields: exact scalar equalities (index
        // columns), and `$gt`/`$gte`/`$lt`/`$lte` bounds with scalar
        // operands (usable as a range on the column after the equality
        // prefix). Everything else is left to re-verification.
        let mut eq: BTreeMap<&str, &Value> = BTreeMap::new();
        let mut range: BTreeMap<&str, (Bound<&Value>, Bound<&Value>)> = BTreeMap::new();
        for (k, v) in obj {
            if k.starts_with('$') {
                continue;
            }
            match v {
                Value::Object(ops) => {
                    let mut lo = Bound::Unbounded;
                    let mut hi = Bound::Unbounded;
                    for (op, rhs) in ops {
                        if rhs.is_array() || rhs.is_object() || rhs.is_null() {
                            continue;
                        }
                        match op.as_str() {
                            "$gt" => lo = Bound::Excluded(rhs),
                            "$gte" => lo = Bound::Included(rhs),
                            "$lt" => hi = Bound::Excluded(rhs),
                            "$lte" => hi = Bound::Included(rhs),
                            _ => {}
                        }
                    }
                    if !matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
                        range.insert(k.as_str(), (lo, hi));
                    }
                }
                Value::Array(_) => {}
                v => {
                    eq.insert(k.as_str(), v);
                }
            }
        }
        let indexes = self.inner.indexes.read();
        let mut best: Option<(i32, Plan)> = None;
        for idx in indexes.indexes.values() {
            let keys = &idx.def.keys;
            let mut prefix: Vec<KeyPart> = Vec::new();
            for key in keys {
                match eq.get(key.as_str()) {
                    Some(v) => prefix.push(KeyPart::from_value(Some(v))),
                    None => break,
                }
            }
            let eq_len = prefix.len();
            let range_col =
                if eq_len < keys.len() { range.get(keys[eq_len].as_str()).copied() } else { None };
            if eq_len == 0 && range_col.is_none() {
                continue;
            }
            let mut score = (eq_len as i32) * 4;
            if range_col.is_some() {
                score += 2;
            }
            if eq_len == keys.len() {
                score += 1;
                if idx.def.unique {
                    score += 2;
                }
            }
            let klen = keys.len();
            let mk = |v: &Value| KeyPart::from_value(Some(v));
            let with = |prefix: &[KeyPart], v: &Value| {
                let mut p = prefix.to_vec();
                p.push(mk(v));
                p
            };
            let (lo, hi, point) = match range_col {
                Some((rlo, rhi)) => {
                    // Keys past the range column are padded so the bound
                    // sits below (Min) or above (Max) every real key with
                    // that column value.
                    let lo = match rlo {
                        Bound::Included(v) => {
                            Bound::Included(pad(with(&prefix, v), klen, KeyPart::Min))
                        }
                        Bound::Excluded(v) => {
                            Bound::Excluded(pad(with(&prefix, v), klen, KeyPart::Max))
                        }
                        Bound::Unbounded => {
                            Bound::Included(pad(prefix.clone(), klen, KeyPart::Min))
                        }
                    };
                    let hi = match rhi {
                        Bound::Included(v) => {
                            Bound::Included(pad(with(&prefix, v), klen, KeyPart::Max))
                        }
                        Bound::Excluded(v) => {
                            Bound::Excluded(pad(with(&prefix, v), klen, KeyPart::Min))
                        }
                        Bound::Unbounded => {
                            Bound::Included(pad(prefix.clone(), klen, KeyPart::Max))
                        }
                    };
                    (lo, hi, false)
                }
                None => (
                    Bound::Included(pad(prefix.clone(), klen, KeyPart::Min)),
                    Bound::Included(pad(prefix.clone(), klen, KeyPart::Max)),
                    true,
                ),
            };
            let plan = Plan::Index { name: idx.def.name.clone(), lo, hi, point };
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, plan));
            }
        }
        match best {
            Some((_, plan)) => plan,
            None => Plan::Scan,
        }
    }

    /// Runs `f` on every matching document in insertion order until it
    /// returns `false`. Acquires locks per the chosen plan; index probes
    /// drop the index lock before touching shards (lock-order rule).
    fn for_each_match(&self, filter: &Value, f: &mut dyn FnMut(&Value) -> bool) {
        let plan = self.plan_query(filter);
        self.note_plan(&plan);
        match plan {
            Plan::ById(id) => {
                let shard = self.inner.shards[shard_of(Some(&id), 0)].read();
                if let Some(seq) = shard.by_id.get(&id) {
                    if let Some(doc) = shard.docs.get(seq) {
                        if matches_filter(doc, filter) {
                            f(doc);
                        }
                    }
                }
            }
            Plan::Index { name, lo, hi, .. } => {
                let mut postings = {
                    let ix = self.inner.indexes.read();
                    ix.get(&name).map(|i| i.range(lo, hi)).unwrap_or_default()
                };
                postings.sort_unstable();
                for (seq, si) in postings {
                    let shard = self.inner.shards[si].read();
                    if let Some(doc) = shard.docs.get(&seq) {
                        if matches_filter(doc, filter) && !f(doc) {
                            return;
                        }
                    }
                }
            }
            Plan::Scan => {
                let guards = self.lock_all_read();
                let mut all: Vec<(u64, usize)> = guards
                    .iter()
                    .enumerate()
                    .flat_map(|(i, g)| g.docs.keys().map(move |s| (*s, i)))
                    .collect();
                all.sort_unstable();
                for (seq, i) in all {
                    if let Some(doc) = guards[i].docs.get(&seq) {
                        if matches_filter(doc, filter) && !f(doc) {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Every match's (shard, seq) location in insertion order, while the
    /// caller holds all shard locks (write paths plan under their locks).
    fn candidates_locked<G: Deref<Target = Shard>>(
        &self,
        guards: &[G],
        filter: &Value,
    ) -> Vec<(usize, u64)> {
        let plan = self.plan_query(filter);
        self.note_plan(&plan);
        match plan {
            Plan::ById(id) => {
                let si = shard_of(Some(&id), 0);
                let Some(&seq) = guards[si].by_id.get(&id) else { return Vec::new() };
                match guards[si].docs.get(&seq) {
                    Some(doc) if matches_filter(doc, filter) => vec![(si, seq)],
                    _ => Vec::new(),
                }
            }
            Plan::Index { name, lo, hi, .. } => {
                let mut postings = {
                    let ix = self.inner.indexes.read();
                    ix.get(&name).map(|i| i.range(lo, hi)).unwrap_or_default()
                };
                postings.sort_unstable();
                postings
                    .into_iter()
                    .filter(|(seq, si)| {
                        guards[*si].docs.get(seq).is_some_and(|d| matches_filter(d, filter))
                    })
                    .map(|(seq, si)| (si, seq))
                    .collect()
            }
            Plan::Scan => {
                let mut hits: Vec<(u64, usize)> = Vec::new();
                for (i, g) in guards.iter().enumerate() {
                    for (seq, doc) in g.docs.iter() {
                        if matches_filter(doc, filter) {
                            hits.push((*seq, i));
                        }
                    }
                }
                hits.sort_unstable();
                hits.into_iter().map(|(seq, i)| (i, seq)).collect()
            }
        }
    }

    // ---- mutations ----------------------------------------------------

    /// Inserts one document, assigning and returning its `_id` (any `_id`
    /// already present is preserved and returned instead).
    ///
    /// # Panics
    ///
    /// On a durable database in read-only mode (crash-only semantics);
    /// request-facing callers use [`Collection::try_insert_one`].
    pub fn insert_one(&self, doc: Value) -> ObjectId {
        match self.try_insert_one(doc) {
            Ok(id) => id,
            Err(e) => panic!("infallible insert path hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::insert_one`] that surfaces read-only mode as
    /// [`PersistError::ReadOnly`] instead of panicking: the write is
    /// rejected *before* it is applied, never acknowledged non-durably.
    /// Identical to `insert_one` on an in-memory collection.
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] when the database rejects mutations.
    pub fn try_insert_one(&self, doc: Value) -> Result<ObjectId, PersistError> {
        let _timer = self.observe_op(|m| &m.inserts);
        let (id, doc) = self.prepare_doc(doc);
        if let Some(d) = self.inner.durability.get() {
            // Log after id assignment so replay reproduces the exact doc.
            let op = json!({"op": "insert", "coll": d.name.clone(), "doc": doc.clone()});
            d.dur.try_commit(op, || self.place_doc(doc))?;
        } else {
            self.place_doc(doc);
        }
        Ok(id)
    }

    /// Inserts many documents atomically, returning their ids.
    ///
    /// Unlike a per-document loop, the whole batch is committed under a
    /// *single* WAL record (`op: "insert_many"`), all shard write locks,
    /// and one index-lock extension: a crash either persists every
    /// document or none, readers (scan or index probe) never observe a
    /// partial batch, and an N-document batch pays one fsync instead of N.
    /// Each document still gets an `_id` exactly as
    /// [`Collection::insert_one`] would assign it.
    pub fn insert_many<I: IntoIterator<Item = Value>>(&self, docs: I) -> Vec<ObjectId> {
        match self.try_insert_many(docs) {
            Ok(ids) => ids,
            Err(e) => panic!("infallible insert path hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::insert_many`] that surfaces read-only mode as
    /// [`PersistError::ReadOnly`] instead of panicking; the batch is
    /// rejected whole (it is one WAL record — all or nothing).
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] when the database rejects mutations.
    pub fn try_insert_many<I: IntoIterator<Item = Value>>(
        &self,
        docs: I,
    ) -> Result<Vec<ObjectId>, PersistError> {
        let mut batch: Vec<Value> = Vec::new();
        let mut ids = Vec::new();
        for doc in docs {
            let (id, doc) = self.prepare_doc(doc);
            ids.push(id);
            batch.push(doc);
        }
        if batch.is_empty() {
            return Ok(ids);
        }
        // Count every inserted document, but observe one latency sample —
        // the batch is one store operation.
        let _timer = self.inner.metrics.get().map(|m| {
            m.inserts.add(batch.len() as u64);
            m.op_latency.start_timer()
        });
        if let Some(d) = self.inner.durability.get() {
            // Ids are assigned above so replay reproduces the exact docs.
            let op = json!({"op": "insert_many", "coll": d.name.clone(), "docs": batch.clone()});
            d.dur.try_commit(op, || self.apply_insert_batch(batch))?;
        } else {
            self.apply_insert_batch(batch);
        }
        Ok(ids)
    }

    fn apply_insert_batch(&self, docs: Vec<Value>) {
        let mut guards = self.lock_all_write();
        if self.inner.has_indexes.load(Ordering::SeqCst) {
            let mut ix = self.inner.indexes.write();
            for doc in docs {
                self.place_into(&mut guards, Some(&mut ix), doc);
            }
        } else {
            for doc in docs {
                self.place_into(&mut guards, None, doc);
            }
        }
    }

    /// Atomically inserts `doc` unless a document matching the `unique`
    /// filter already exists — the unique-key insert that closes the
    /// `find_one`-then-`insert_one` TOCTOU race: the existence check and
    /// the insert happen under one set of write locks, so two concurrent
    /// calls with the same key can never both insert. With a declared
    /// index covering the unique key the existence check is a point
    /// lookup, not a scan.
    ///
    /// Returns `Ok(id)` of the freshly inserted document, or `Err(id)` of
    /// the already-present match (the idempotent-replay answer).
    pub fn insert_if_absent(&self, unique: &Value, doc: Value) -> Result<ObjectId, ObjectId> {
        match self.try_insert_if_absent(unique, doc) {
            Ok(admitted) => admitted,
            Err(e) => panic!("infallible insert path hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::insert_if_absent`] that surfaces read-only mode as
    /// an outer [`PersistError::ReadOnly`] instead of panicking; the
    /// inner `Result` keeps the admitted/duplicate distinction.
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] when the database rejects mutations —
    /// checked *before* the uniqueness probe, so nothing is mutated.
    pub fn try_insert_if_absent(
        &self,
        unique: &Value,
        mut doc: Value,
    ) -> Result<Result<ObjectId, ObjectId>, PersistError> {
        let _timer = self.observe_op(|m| &m.inserts);
        if !doc.is_object() {
            doc = serde_json::json!({ "value": doc });
        }
        // On a durable database the commit (state) lock must be taken
        // *before* the shard locks — the order every other mutation uses —
        // or a concurrent insert_one/update_many deadlocks against us.
        // The uniqueness check happens inside the commit closure, and the
        // op is only WAL-logged when the insert was admitted, so replay
        // needs no uniqueness re-check.
        if let Some(d) = self.inner.durability.get() {
            d.dur.try_commit_conditional(|| match self.admit_unique(unique, doc) {
                Admit::Fresh(id, stored) => {
                    let op = json!({"op": "insert", "coll": d.name.clone(), "doc": stored});
                    (Some(op), Ok(id))
                }
                Admit::Exists(id) => (None, Err(id)),
                Admit::Repaired(id, stored) => {
                    // The match had no `_id` (legacy import); persist the
                    // id we just assigned so replay agrees with memory.
                    let op = json!({
                        "op": "update",
                        "coll": d.name.clone(),
                        "filter": unique.clone(),
                        "update": stored,
                    });
                    (Some(op), Err(id))
                }
            })
        } else {
            Ok(match self.admit_unique(unique, doc) {
                Admit::Fresh(id, _) => Ok(id),
                Admit::Exists(id) | Admit::Repaired(id, _) => Err(id),
            })
        }
    }

    /// The check-and-place core of [`Collection::insert_if_absent`], under
    /// all shard write locks.
    fn admit_unique(&self, unique: &Value, doc: Value) -> Admit {
        let mut guards = self.lock_all_write();
        if let Some(&(si, seq)) = self.candidates_locked(&guards, unique).first() {
            let existing = guards[si].docs.get(&seq).expect("candidate verified under lock");
            if let Some(id) = existing.get("_id").and_then(Value::as_str) {
                return Admit::Exists(ObjectId(id.to_string()));
            }
            // Legacy document without an `_id`: assign and store one now,
            // under the same locks, so the caller gets a real idempotency
            // token instead of an empty id.
            let mut repaired = existing.clone();
            let Some(obj) = repaired.as_object_mut() else {
                // Non-object legacy value — nowhere to put an id.
                return Admit::Exists(ObjectId(String::new()));
            };
            let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
            let id = ObjectId(format!("oid-{n:08x}"));
            obj.insert("_id".to_string(), Value::String(id.0.clone()));
            self.replace_doc_locked(&mut guards, si, seq, repaired.clone());
            return Admit::Repaired(id, repaired);
        }
        let (id, doc) = self.prepare_doc(doc);
        self.place_doc_locked(&mut guards, doc.clone());
        Admit::Fresh(id, doc)
    }

    /// Atomically upserts the document matching `unique`: when absent,
    /// `seed` is inserted first (assigned an `_id` like any insert), then
    /// `mutate` runs on the stored document — so a read-modify-write like
    /// a heartbeat counter happens entirely under the write locks (and the
    /// durability commit lock), closing the lost-update race between
    /// concurrent find-then-update callers. Returns the document as
    /// stored after mutation.
    pub fn upsert_mutate(
        &self,
        unique: &Value,
        seed: Value,
        mutate: impl FnOnce(&mut Value),
    ) -> Value {
        match self.try_upsert_mutate(unique, seed, mutate) {
            Ok(stored) => stored,
            Err(e) => panic!("infallible upsert path hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::upsert_mutate`] that surfaces read-only mode as
    /// [`PersistError::ReadOnly`] instead of panicking — checked before
    /// `mutate` runs, so a rejected call mutates nothing.
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] when the database rejects mutations.
    pub fn try_upsert_mutate(
        &self,
        unique: &Value,
        seed: Value,
        mutate: impl FnOnce(&mut Value),
    ) -> Result<Value, PersistError> {
        let _timer = self.observe_op(|m| &m.updates);
        if let Some(d) = self.inner.durability.get() {
            // Commit lock before shard locks (see insert_if_absent). The
            // closure's mutation cannot be serialized, so the WAL logs
            // the *outcome*: a plain insert for a fresh document, or a
            // whole-document replace of the unique match (replay keeps
            // its `_id`, matching apply_update's replace semantics).
            d.dur.try_commit_conditional(|| {
                let (inserted, result) = self.apply_upsert_mutate(unique, seed, mutate);
                let op = if inserted {
                    json!({"op": "insert", "coll": d.name.clone(), "doc": result.clone()})
                } else {
                    json!({
                        "op": "update",
                        "coll": d.name.clone(),
                        "filter": unique.clone(),
                        "update": result.clone(),
                    })
                };
                (Some(op), result)
            })
        } else {
            Ok(self.apply_upsert_mutate(unique, seed, mutate).1)
        }
    }

    /// The locked core of [`Collection::upsert_mutate`]: returns whether a
    /// fresh document was inserted, plus the post-mutation document.
    fn apply_upsert_mutate(
        &self,
        unique: &Value,
        seed: Value,
        mutate: impl FnOnce(&mut Value),
    ) -> (bool, Value) {
        let mut guards = self.lock_all_write();
        if let Some(&(si, seq)) = self.candidates_locked(&guards, unique).first() {
            let mut doc = guards[si].docs.get(&seq).expect("candidate under lock").clone();
            mutate(&mut doc);
            self.replace_doc_locked(&mut guards, si, seq, doc.clone());
            return (false, doc);
        }
        let (_, mut seed) = self.prepare_doc(seed);
        mutate(&mut seed);
        self.place_doc_locked(&mut guards, seed.clone());
        (true, seed)
    }

    // ---- queries -------------------------------------------------------

    /// All documents matching `filter`, in insertion order (cloned).
    pub fn find(&self, filter: &Value) -> Vec<Value> {
        let _timer = self.observe_op(|m| &m.finds);
        let mut out = Vec::new();
        self.for_each_match(filter, &mut |d| {
            out.push(d.clone());
            true
        });
        out
    }

    /// The first matching document.
    pub fn find_one(&self, filter: &Value) -> Option<Value> {
        let _timer = self.observe_op(|m| &m.finds);
        let mut out = None;
        self.for_each_match(filter, &mut |d| {
            out = Some(d.clone());
            false
        });
        out
    }

    /// Fetch by `_id` — a single-shard hash probe, no scan.
    pub fn find_by_id(&self, id: &ObjectId) -> Option<Value> {
        self.find_one(&serde_json::json!({ "_id": id.as_str() }))
    }

    /// Number of matching documents.
    pub fn count(&self, filter: &Value) -> usize {
        let _timer = self.observe_op(|m| &m.finds);
        let mut n = 0;
        self.for_each_match(filter, &mut |_| {
            n += 1;
            true
        });
        n
    }

    /// Total documents.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().docs.len()).sum()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- secondary indexes ---------------------------------------------

    /// Declares a secondary index over `keys` (dotted paths). Returns
    /// `true` when the index was created (and, on a durable database,
    /// WAL-logged), `false` when an index of that name already exists.
    /// Building scans the collection once under the shard write locks;
    /// subsequent mutations maintain the index transactionally.
    pub fn ensure_index(&self, name: &str, keys: &[&str], unique: bool) -> bool {
        match self.try_ensure_index(name, keys, unique) {
            Ok(created) => created,
            Err(e) => panic!("infallible ensure_index hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::ensure_index`] that surfaces persistence failures
    /// instead of panicking — declaring an index on a read-only database
    /// returns [`PersistError::ReadOnly`] even when the index already
    /// exists, since the declaration cannot be WAL-logged either way.
    pub fn try_ensure_index(
        &self,
        name: &str,
        keys: &[&str],
        unique: bool,
    ) -> Result<bool, PersistError> {
        let def = IndexDef {
            name: name.to_string(),
            keys: keys.iter().map(|k| (*k).to_string()).collect(),
            unique,
        };
        if let Some(d) = self.inner.durability.get() {
            d.dur.try_commit_conditional(|| {
                if self.apply_ensure_index(def.clone()) {
                    let op = json!({
                        "op": "ensure_index",
                        "coll": d.name.clone(),
                        "index": def.to_json(),
                    });
                    (Some(op), true)
                } else {
                    (None, false)
                }
            })
        } else {
            Ok(self.apply_ensure_index(def))
        }
    }

    /// Creates and builds an index from its declaration without WAL
    /// logging — the apply side shared by [`Collection::ensure_index`],
    /// WAL replay, and checkpoint loading. Idempotent by name.
    pub(crate) fn apply_ensure_index(&self, def: IndexDef) -> bool {
        let guards = self.lock_all_write();
        let mut indexes = self.inner.indexes.write();
        if indexes.indexes.contains_key(&def.name) {
            return false;
        }
        let mut idx = Index::new(def);
        for (i, g) in guards.iter().enumerate() {
            for (seq, doc) in g.docs.iter() {
                idx.add(doc, (*seq, i));
            }
        }
        indexes.indexes.insert(idx.def.name.clone(), idx);
        // Under all shard write locks: every later mutation acquires some
        // shard lock and therefore observes the flag.
        self.inner.has_indexes.store(true, Ordering::SeqCst);
        true
    }

    /// The declarations of every index on this collection (persisted by
    /// checkpoints).
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.inner.indexes.read().defs()
    }

    /// Point lookup through a declared index: documents whose key columns
    /// start with `key` (a full key or a prefix), in insertion order.
    /// Returns nothing when the index doesn't exist — callers declare
    /// their indexes up front via [`Collection::ensure_index`].
    pub fn find_by_index(&self, name: &str, key: &[Value]) -> Vec<Value> {
        let _timer = self.observe_op(|m| &m.finds);
        if let Some(m) = self.inner.metrics.get() {
            m.index_lookups.inc();
        }
        let parts: Vec<KeyPart> = key.iter().map(|v| KeyPart::from_value(Some(v))).collect();
        let (keys, postings) = {
            let ix = self.inner.indexes.read();
            let Some(i) = ix.get(name) else { return Vec::new() };
            (i.def.keys.clone(), i.point(&parts))
        };
        let mut out = Vec::new();
        for (seq, si) in postings {
            let shard = self.inner.shards[si].read();
            if let Some(doc) = shard.docs.get(&seq) {
                // Re-verify against the probe: the posting may be stale
                // (the doc changed between the index probe and here).
                let dk: Vec<KeyPart> =
                    keys.iter().map(|p| KeyPart::from_value(lookup_path(doc, p))).collect();
                if dk.len() >= parts.len() && dk[..parts.len()] == parts[..] {
                    out.push(doc.clone());
                }
            }
        }
        out
    }

    /// Ordered range scan through a declared index: documents whose key
    /// tuple lies in `[lo, hi]` (inclusive; `None` = unbounded; partial
    /// keys are padded to cover every extension), in key order. Returns
    /// nothing when the index doesn't exist.
    pub fn range_by_index(
        &self,
        name: &str,
        lo: Option<&[Value]>,
        hi: Option<&[Value]>,
    ) -> Vec<Value> {
        let _timer = self.observe_op(|m| &m.finds);
        if let Some(m) = self.inner.metrics.get() {
            m.index_range_scans.inc();
        }
        let encode = |vs: &[Value], fill: KeyPart, klen: usize| {
            pad(vs.iter().map(|v| KeyPart::from_value(Some(v))).collect(), klen, fill)
        };
        let (keys, lo_k, hi_k, postings) = {
            let ix = self.inner.indexes.read();
            let Some(i) = ix.get(name) else { return Vec::new() };
            let klen = i.def.keys.len();
            let lo_k = lo.map(|vs| encode(vs, KeyPart::Min, klen));
            let hi_k = hi.map(|vs| encode(vs, KeyPart::Max, klen));
            let lo_b = match &lo_k {
                Some(k) => Bound::Included(k.clone()),
                None => Bound::Unbounded,
            };
            let hi_b = match &hi_k {
                Some(k) => Bound::Included(k.clone()),
                None => Bound::Unbounded,
            };
            (i.def.keys.clone(), lo_k, hi_k, i.range(lo_b, hi_b))
        };
        let mut out = Vec::new();
        for (seq, si) in postings {
            let shard = self.inner.shards[si].read();
            if let Some(doc) = shard.docs.get(&seq) {
                // Re-verify the recomputed key is still inside the range.
                let dk: Vec<KeyPart> =
                    keys.iter().map(|p| KeyPart::from_value(lookup_path(doc, p))).collect();
                if lo_k.as_ref().is_some_and(|lo| dk < *lo) {
                    continue;
                }
                if hi_k.as_ref().is_some_and(|hi| dk > *hi) {
                    continue;
                }
                out.push(doc.clone());
            }
        }
        out
    }

    // ---- bulk updates / deletes ---------------------------------------

    /// Applies `{"$set": {...}}` to every matching document; plain objects
    /// (no `$set`) replace matched documents wholesale, keeping their `_id`.
    /// Returns the number of documents updated. A zero-match update is not
    /// WAL-logged — quiet sweeps pay no fsync.
    pub fn update_many(&self, filter: &Value, update: &Value) -> usize {
        match self.try_update_many(filter, update) {
            Ok(n) => n,
            Err(e) => panic!("infallible update path hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::update_many`] that surfaces read-only mode as
    /// [`PersistError::ReadOnly`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] when the database rejects mutations.
    pub fn try_update_many(&self, filter: &Value, update: &Value) -> Result<usize, PersistError> {
        let _timer = self.observe_op(|m| &m.updates);
        if let Some(d) = self.inner.durability.get() {
            d.dur.try_commit_conditional(|| {
                let n = self.apply_update(filter, update);
                if n == 0 {
                    (None, 0)
                } else {
                    let op = json!({
                        "op": "update",
                        "coll": d.name.clone(),
                        "filter": filter.clone(),
                        "update": update.clone(),
                    });
                    (Some(op), n)
                }
            })
        } else {
            Ok(self.apply_update(filter, update))
        }
    }

    fn apply_update(&self, filter: &Value, update: &Value) -> usize {
        let mut guards = self.lock_all_write();
        let matches = self.candidates_locked(&guards, filter);
        let mut n = 0;
        for (si, seq) in matches {
            let Some(doc) = guards[si].docs.get(&seq) else { continue };
            let new_doc = if let Some(set) = update.get("$set").and_then(Value::as_object) {
                let mut d = doc.clone();
                for (path, v) in set {
                    set_path(&mut d, path, v.clone());
                }
                Some(d)
            } else if update.is_object() {
                let mut d = update.clone();
                if let (Some(obj), Some(id)) = (d.as_object_mut(), doc.get("_id").cloned()) {
                    obj.insert("_id".to_string(), id);
                }
                Some(d)
            } else {
                None
            };
            if let Some(new_doc) = new_doc {
                self.replace_doc_locked(&mut guards, si, seq, new_doc);
            }
            n += 1;
        }
        n
    }

    /// Deletes matching documents, returning how many were removed. A
    /// zero-match delete is not WAL-logged — quiet sweeps pay no fsync.
    pub fn delete_many(&self, filter: &Value) -> usize {
        match self.try_delete_many(filter) {
            Ok(n) => n,
            Err(e) => panic!("infallible delete path hit a persistence failure: {e}"),
        }
    }

    /// [`Collection::delete_many`] that surfaces read-only mode as
    /// [`PersistError::ReadOnly`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`PersistError::ReadOnly`] when the database rejects mutations.
    pub fn try_delete_many(&self, filter: &Value) -> Result<usize, PersistError> {
        let _timer = self.observe_op(|m| &m.deletes);
        if let Some(d) = self.inner.durability.get() {
            d.dur.try_commit_conditional(|| {
                let n = self.apply_delete(filter);
                if n == 0 {
                    (None, 0)
                } else {
                    let op =
                        json!({"op": "delete", "coll": d.name.clone(), "filter": filter.clone()});
                    (Some(op), n)
                }
            })
        } else {
            Ok(self.apply_delete(filter))
        }
    }

    fn apply_delete(&self, filter: &Value) -> usize {
        let mut guards = self.lock_all_write();
        let victims = self.candidates_locked(&guards, filter);
        let mut n = 0;
        for (si, seq) in victims {
            let Some(doc) = guards[si].docs.remove(&seq) else { continue };
            if let Some(sid) = doc.get("_id").and_then(Value::as_str) {
                guards[si].by_id.remove(sid);
            }
            if self.inner.has_indexes.load(Ordering::SeqCst) {
                self.inner.indexes.write().remove_doc(&doc, (seq, si));
            }
            n += 1;
        }
        n
    }

    // ---- snapshots / loading -------------------------------------------

    /// Snapshot of all documents, in insertion order.
    pub fn all(&self) -> Vec<Value> {
        let guards = self.lock_all_read();
        let mut all: Vec<(u64, &Value)> =
            guards.iter().flat_map(|g| g.docs.iter().map(|(s, d)| (*s, d))).collect();
        all.sort_unstable_by_key(|(s, _)| *s);
        all.into_iter().map(|(_, d)| d.clone()).collect()
    }

    /// Replaces the whole contents (used by persistence loading). Index
    /// declarations survive; their contents are rebuilt from the new docs.
    pub(crate) fn replace_all(&self, docs: Vec<Value>) {
        let mut guards = self.lock_all_write();
        for g in guards.iter_mut() {
            g.docs.clear();
            g.by_id.clear();
        }
        if self.inner.has_indexes.load(Ordering::SeqCst) {
            let mut ix = self.inner.indexes.write();
            for idx in ix.indexes.values_mut() {
                idx.clear();
            }
            for doc in docs {
                self.place_into(&mut guards, Some(&mut ix), doc);
            }
        } else {
            for doc in docs {
                self.place_into(&mut guards, None, doc);
            }
        }
        drop(guards);
        self.sync_next_id();
    }

    /// Moves the id allocator past every stored oid, so documents that
    /// arrived with explicit `_id`s (persistence loads, WAL replay) can
    /// never collide with a freshly assigned id.
    pub(crate) fn sync_next_id(&self) {
        let mut max_seen = 0u64;
        for g in self.lock_all_read() {
            for d in g.docs.values() {
                if let Some(id) = d.get("_id").and_then(Value::as_str) {
                    if let Some(hex) = id.strip_prefix("oid-") {
                        if let Ok(n) = u64::from_str_radix(hex, 16) {
                            max_seen = max_seen.max(n + 1);
                        }
                    }
                }
            }
        }
        self.inner.next_id.fetch_max(max_seen, Ordering::Relaxed);
    }
}

/// Outcome of the locked uniqueness check in
/// [`Collection::insert_if_absent`].
enum Admit {
    /// No match existed; the document was inserted (id, stored doc).
    Fresh(ObjectId, Value),
    /// A match with a real `_id` already exists.
    Exists(ObjectId),
    /// A legacy match without an `_id` was assigned one under the lock;
    /// the repaired document must be WAL-logged.
    Repaired(ObjectId, Value),
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn insert_assigns_unique_ids() {
        let c = Collection::new();
        let a = c.insert_one(json!({"x": 1}));
        let b = c.insert_one(json!({"x": 2}));
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.find_by_id(&a).unwrap()["x"], json!(1));
    }

    #[test]
    fn insert_preserves_explicit_id() {
        let c = Collection::new();
        let id = c.insert_one(json!({"_id": "custom", "x": 1}));
        assert_eq!(id.as_str(), "custom");
        assert!(c.find_by_id(&id).is_some());
    }

    #[test]
    fn insert_scalar_wraps() {
        let c = Collection::new();
        let id = c.insert_one(json!(42));
        let doc = c.find_by_id(&id).unwrap();
        assert_eq!(doc["value"], json!(42));
    }

    #[test]
    fn find_and_count() {
        let c = Collection::new();
        c.insert_many(vec![json!({"k": 1}), json!({"k": 2}), json!({"k": 3})]);
        assert_eq!(c.find(&json!({"k": {"$gte": 2}})).len(), 2);
        assert_eq!(c.count(&json!({"k": {"$lt": 2}})), 1);
        assert!(c.find_one(&json!({"k": 9})).is_none());
    }

    #[test]
    fn find_returns_insertion_order_across_shards() {
        let c = Collection::new();
        for i in 0..100 {
            c.insert_one(json!({"i": i}));
        }
        let all = c.all();
        assert_eq!(all.len(), 100);
        for (i, d) in all.iter().enumerate() {
            assert_eq!(d["i"], json!(i));
        }
        let found = c.find(&json!({"i": {"$gte": 50}}));
        for (i, d) in found.iter().enumerate() {
            assert_eq!(d["i"], json!(i + 50));
        }
        assert_eq!(c.find_one(&json!({"i": {"$gte": 50}})).unwrap()["i"], json!(50));
    }

    #[test]
    fn update_set_and_replace() {
        let c = Collection::new();
        let id = c.insert_one(json!({"status": "open", "meta": {"tries": 0}}));
        let n = c.update_many(
            &json!({"status": "open"}),
            &json!({"$set": {"status": "done", "meta.tries": 3}}),
        );
        assert_eq!(n, 1);
        let doc = c.find_by_id(&id).unwrap();
        assert_eq!(doc["status"], json!("done"));
        assert_eq!(doc["meta"]["tries"], json!(3));
        // Whole-document replace keeps _id.
        c.update_many(&json!({"status": "done"}), &json!({"fresh": true}));
        let doc = c.find_by_id(&id).unwrap();
        assert_eq!(doc["fresh"], json!(true));
        assert!(doc.get("status").is_none());
    }

    #[test]
    fn delete_many() {
        let c = Collection::new();
        c.insert_many(vec![json!({"k": 1}), json!({"k": 2}), json!({"k": 2})]);
        assert_eq!(c.delete_many(&json!({"k": 2})), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.delete_many(&json!({})), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_if_absent_is_idempotent() {
        let c = Collection::new();
        let key = json!({"test_id": "t", "contributor_id": "w", "submission_id": "s1"});
        let first = c
            .insert_if_absent(
                &key,
                json!({"test_id": "t", "contributor_id": "w", "submission_id": "s1", "x": 1}),
            )
            .expect("first insert goes through");
        let replay = c
            .insert_if_absent(
                &key,
                json!({"test_id": "t", "contributor_id": "w", "submission_id": "s1", "x": 2}),
            )
            .expect_err("replay must not insert");
        assert_eq!(first, replay);
        assert_eq!(c.len(), 1);
        assert_eq!(c.find_by_id(&first).unwrap()["x"], json!(1), "original wins");
        // A different key inserts fine.
        let other = json!({"test_id": "t", "contributor_id": "w", "submission_id": "s2"});
        assert!(c.insert_if_absent(&other, other.clone()).is_ok());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_if_absent_repairs_legacy_docs_missing_id() {
        // Regression: a matched document without an `_id` (legacy import)
        // used to come back as Err(ObjectId("")) — an empty idempotency
        // token. It must be assigned a real id under the same lock.
        let c = Collection::new();
        c.replace_all(vec![json!({"test_id": "t", "contributor_id": "w", "submission_id": "s"})]);
        let key = json!({"test_id": "t", "contributor_id": "w", "submission_id": "s"});
        let id = c
            .insert_if_absent(
                &key,
                json!({"test_id": "t", "contributor_id": "w", "submission_id": "s"}),
            )
            .expect_err("match exists");
        assert!(!id.as_str().is_empty(), "repaired id must not be empty");
        assert!(id.as_str().starts_with("oid-"));
        // The id was persisted into the stored document.
        let doc = c.find_one(&key).unwrap();
        assert_eq!(doc["_id"], json!(id.as_str()));
        assert_eq!(c.find_by_id(&id).unwrap()["test_id"], json!("t"));
        // Replaying again returns the same id.
        let again = c.insert_if_absent(&key, json!({"x": 1})).expect_err("still exists");
        assert_eq!(id, again);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_if_absent_survives_concurrent_racers() {
        let c = Collection::new();
        let key = json!({"k": "unique"});
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                let key = key.clone();
                let winners = &winners;
                s.spawn(move || {
                    for i in 0..50 {
                        if c.insert_if_absent(&key, json!({"k": "unique", "t": t, "i": i})).is_ok()
                        {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1, "exactly one racer inserts");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn upsert_mutate_seeds_then_mutates_in_place() {
        let c = Collection::new();
        let key = json!({"sid": "s"});
        let first = c.upsert_mutate(&key, json!({"sid": "s", "beats": 0}), |d| {
            d["beats"] = json!(d["beats"].as_u64().unwrap_or(0) + 1);
        });
        assert_eq!(first["beats"], json!(1), "mutate runs on the seed too");
        assert!(first.get("_id").is_some(), "seed gets an id like any insert");
        let second = c.upsert_mutate(&key, json!({"sid": "s", "beats": 0}), |d| {
            d["beats"] = json!(d["beats"].as_u64().unwrap_or(0) + 1);
        });
        assert_eq!(second["beats"], json!(2));
        assert_eq!(second["_id"], first["_id"]);
        assert_eq!(c.len(), 1, "upsert never duplicates the key");
    }

    #[test]
    fn upsert_mutate_loses_no_concurrent_increments() {
        let c = Collection::new();
        let key = json!({"sid": "s"});
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let key = key.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.upsert_mutate(&key, json!({"sid": "s", "beats": 0}), |d| {
                            d["beats"] = json!(d["beats"].as_u64().unwrap_or(0) + 1);
                        });
                    }
                });
            }
        });
        assert_eq!(c.len(), 1);
        assert_eq!(c.find_one(&key).unwrap()["beats"], json!(800), "no lost updates");
    }

    #[test]
    fn clones_share_storage() {
        let a = Collection::new();
        let b = a.clone();
        a.insert_one(json!({"via": "a"}));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn concurrent_inserts() {
        let c = Collection::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        c.insert_one(json!({"t": t, "i": i}));
                    }
                });
            }
        });
        assert_eq!(c.len(), 800);
        // All ids unique.
        let mut ids: Vec<String> =
            c.all().iter().map(|d| d["_id"].as_str().unwrap().to_string()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn metrics_count_operations() {
        let registry = Registry::new();
        let c = Collection::new();
        c.attach_metrics(&registry, "tests");
        assert!(c.has_metrics());
        c.insert_one(json!({"k": 1}));
        c.insert_many(vec![json!({"k": 2}), json!({"k": 3})]);
        c.find(&json!({"k": {"$gte": 2}}));
        c.find_one(&json!({"k": 1}));
        c.count(&json!({}));
        c.update_many(&json!({"k": 1}), &json!({"$set": {"k": 9}}));
        c.delete_many(&json!({"k": 2}));

        let labels = [("collection", "tests")];
        assert_eq!(registry.counter_value("store.inserts_total", &labels), Some(3));
        assert_eq!(registry.counter_value("store.finds_total", &labels), Some(3));
        assert_eq!(registry.counter_value("store.updates_total", &labels), Some(1));
        assert_eq!(registry.counter_value("store.deletes_total", &labels), Some(1));
        let snap = registry.snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(k, _)| k.name == "store.op_latency_us")
            .expect("latency histogram registered");
        // insert_one + insert_many (one batched observation) + find
        // + find_one + count + update_many + delete_many = 7 observations.
        assert_eq!(hist.count(), 7, "every instrumented op observes latency");
        // Re-attaching is a no-op, not a reset.
        c.attach_metrics(&registry, "tests");
        assert_eq!(registry.counter_value("store.inserts_total", &labels), Some(3));
    }

    #[test]
    fn metrics_count_query_plans() {
        let registry = Registry::new();
        let c = Collection::new();
        c.attach_metrics(&registry, "planned");
        c.insert_many((0..20).map(|i| json!({"k": i, "g": i % 2})).collect::<Vec<_>>());
        let labels = [("collection", "planned")];
        // No index yet: everything is a fallback scan.
        c.find(&json!({"k": 3}));
        assert_eq!(registry.counter_value("store.index_fallback_scans_total", &labels), Some(1));
        assert!(c.ensure_index("by_k", &["k"], false));
        c.find(&json!({"k": 3}));
        assert_eq!(registry.counter_value("store.index_lookups_total", &labels), Some(1));
        c.find(&json!({"k": {"$gte": 10}}));
        assert_eq!(registry.counter_value("store.index_range_scans_total", &labels), Some(1));
        // Unindexed field still degrades to a scan.
        c.find(&json!({"g": 1}));
        assert_eq!(registry.counter_value("store.index_fallback_scans_total", &labels), Some(2));
    }

    #[test]
    fn uninstrumented_collections_pay_nothing() {
        let c = Collection::new();
        assert!(!c.has_metrics());
        c.insert_one(json!({"x": 1}));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_all_bumps_id_counter() {
        let c = Collection::new();
        c.replace_all(vec![json!({"_id": "oid-000000ff"})]);
        let id = c.insert_one(json!({}));
        assert_eq!(id.as_str(), "oid-00000100");
    }

    #[test]
    fn ensure_index_is_idempotent_and_answers_point_lookups() {
        let c = Collection::new();
        for i in 0..50 {
            c.insert_one(json!({"test_id": format!("t-{}", i % 5), "sub": i}));
        }
        assert!(c.ensure_index("by_test", &["test_id", "sub"], false));
        assert!(!c.ensure_index("by_test", &["test_id", "sub"], false), "second declare no-ops");
        // Full-key point lookup.
        let hit = c.find_by_index("by_test", &[json!("t-3"), json!(3)]);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0]["sub"], json!(3));
        // Prefix lookup returns every doc for the test, in insertion order.
        let t0 = c.find_by_index("by_test", &[json!("t-0")]);
        assert_eq!(t0.len(), 10);
        assert!(t0.windows(2).all(|w| w[0]["sub"].as_u64() < w[1]["sub"].as_u64()));
        // Unknown index answers nothing.
        assert!(c.find_by_index("nope", &[json!("t-0")]).is_empty());
    }

    #[test]
    fn indexes_track_updates_and_deletes() {
        let c = Collection::new();
        c.ensure_index("by_state", &["state"], false);
        c.insert_many(vec![
            json!({"w": 1, "state": "open"}),
            json!({"w": 2, "state": "open"}),
            json!({"w": 3, "state": "done"}),
        ]);
        assert_eq!(c.find_by_index("by_state", &[json!("open")]).len(), 2);
        c.update_many(&json!({"w": 1}), &json!({"$set": {"state": "done"}}));
        assert_eq!(c.find_by_index("by_state", &[json!("open")]).len(), 1);
        assert_eq!(c.find_by_index("by_state", &[json!("done")]).len(), 2);
        c.delete_many(&json!({"state": "done"}));
        assert!(c.find_by_index("by_state", &[json!("done")]).is_empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn range_by_index_is_ordered_and_inclusive() {
        let c = Collection::new();
        c.ensure_index("by_deadline", &["test_id", "deadline_ms"], false);
        for (t, dl) in [("a", 30), ("a", 10), ("b", 20), ("a", 20), ("b", 40)] {
            c.insert_one(json!({"test_id": t, "deadline_ms": dl}));
        }
        let within = c.range_by_index(
            "by_deadline",
            Some(&[json!("a"), json!(10)]),
            Some(&[json!("a"), json!(20)]),
        );
        let dls: Vec<u64> = within.iter().map(|d| d["deadline_ms"].as_u64().unwrap()).collect();
        assert_eq!(dls, vec![10, 20], "key order, inclusive bounds");
        // Prefix-only bound covers the whole test.
        let all_a = c.range_by_index("by_deadline", Some(&[json!("a")]), Some(&[json!("a")]));
        assert_eq!(all_a.len(), 3);
        // Unbounded high end.
        let tail = c.range_by_index("by_deadline", Some(&[json!("b"), json!(25)]), None);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0]["deadline_ms"], json!(40));
    }

    #[test]
    fn index_equals_scan_on_mixed_filters() {
        let c = Collection::new();
        for i in 0..40 {
            c.insert_one(json!({"k": i % 7, "extra": i}));
        }
        let scan = c.find(&json!({"k": 3, "extra": {"$gte": 10}}));
        c.ensure_index("by_k", &["k"], false);
        let indexed = c.find(&json!({"k": 3, "extra": {"$gte": 10}}));
        assert_eq!(scan, indexed, "index candidates re-verified against full filter");
    }
}
