//! A schemaless collection of JSON documents.

use crate::durable::Durability;
use crate::filter::{matches_filter, set_path};
use kscope_telemetry::{Counter, Histogram, Registry};
use parking_lot::RwLock;
use serde_json::{json, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A document identifier assigned on insert (`_id` field).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(String);

impl ObjectId {
    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<ObjectId> for Value {
    fn from(id: ObjectId) -> Value {
        Value::String(id.0)
    }
}

/// Per-collection operation metrics, attached at most once per collection
/// (see [`Collection::attach_metrics`]). Reads go through a `OnceLock`, so
/// instrumented operations never take an extra lock — counter and
/// histogram updates are plain atomics.
#[derive(Debug)]
pub(crate) struct CollectionMetrics {
    inserts: Counter,
    finds: Counter,
    updates: Counter,
    deletes: Counter,
    op_latency: Histogram,
}

impl CollectionMetrics {
    fn register(registry: &Registry, collection: &str) -> Self {
        let labels = [("collection", collection)];
        Self {
            inserts: registry.counter_with("store.inserts_total", &labels),
            finds: registry.counter_with("store.finds_total", &labels),
            updates: registry.counter_with("store.updates_total", &labels),
            deletes: registry.counter_with("store.deletes_total", &labels),
            op_latency: registry.histogram_with("store.op_latency_us", &labels),
        }
    }
}

/// A thread-safe, schemaless document collection.
///
/// Documents are JSON objects; inserting a non-object wraps it under a
/// `value` key so every stored document can carry an `_id`.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    inner: Arc<CollectionInner>,
}

/// A collection's link to its database's durability engine: mutations are
/// WAL-logged under `name` before they apply.
#[derive(Debug)]
struct CollectionDurability {
    dur: Arc<Durability>,
    name: String,
}

#[derive(Debug, Default)]
struct CollectionInner {
    docs: RwLock<Vec<Value>>,
    next_id: AtomicU64,
    metrics: OnceLock<CollectionMetrics>,
    durability: OnceLock<CollectionDurability>,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches per-collection operation metrics (`store.inserts_total`,
    /// `store.finds_total`, `store.updates_total`, `store.deletes_total`,
    /// and the `store.op_latency_us` histogram, all labelled
    /// `{collection}`). A no-op if metrics are already attached.
    pub fn attach_metrics(&self, registry: &Registry, collection: &str) {
        let _ = self.inner.metrics.set(CollectionMetrics::register(registry, collection));
    }

    /// Whether operation metrics are attached.
    pub fn has_metrics(&self) -> bool {
        self.inner.metrics.get().is_some()
    }

    /// Links this collection to a database's durability engine so every
    /// mutation is WAL-logged before it applies. A no-op if already linked.
    pub(crate) fn attach_durability(&self, dur: &Arc<Durability>, name: &str) {
        let _ = self
            .inner
            .durability
            .set(CollectionDurability { dur: Arc::clone(dur), name: name.to_string() });
    }

    /// Counts one op on `counter` and returns a latency timer for it, when
    /// metrics are attached.
    fn observe_op(
        &self,
        counter: impl Fn(&CollectionMetrics) -> &Counter,
    ) -> Option<kscope_telemetry::ScopedTimer> {
        self.inner.metrics.get().map(|m| {
            counter(m).inc();
            m.op_latency.start_timer()
        })
    }

    /// Inserts one document, assigning and returning its `_id` (any `_id`
    /// already present is preserved and returned instead).
    pub fn insert_one(&self, mut doc: Value) -> ObjectId {
        let _timer = self.observe_op(|m| &m.inserts);
        if !doc.is_object() {
            doc = serde_json::json!({ "value": doc });
        }
        let obj = doc.as_object_mut().expect("wrapped to object above");
        let id = match obj.get("_id").and_then(Value::as_str) {
            Some(existing) => ObjectId(existing.to_string()),
            None => {
                let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
                let id = ObjectId(format!("oid-{n:08x}"));
                obj.insert("_id".to_string(), Value::String(id.0.clone()));
                id
            }
        };
        if let Some(d) = self.inner.durability.get() {
            // Log after id assignment so replay reproduces the exact doc.
            let op = json!({"op": "insert", "coll": d.name.clone(), "doc": doc.clone()});
            d.dur.commit(op, || self.inner.docs.write().push(doc));
        } else {
            self.inner.docs.write().push(doc);
        }
        id
    }

    /// Inserts many documents atomically, returning their ids.
    ///
    /// Unlike a per-document loop, the whole batch is committed under a
    /// *single* WAL record (`op: "insert_many"`) and one docs-lock
    /// extension: a crash either persists every document or none, readers
    /// never observe a partial batch, and an N-document batch pays one
    /// fsync instead of N. Each document still gets an `_id` exactly as
    /// [`Collection::insert_one`] would assign it.
    pub fn insert_many<I: IntoIterator<Item = Value>>(&self, docs: I) -> Vec<ObjectId> {
        let mut batch: Vec<Value> = Vec::new();
        let mut ids = Vec::new();
        for mut doc in docs {
            if !doc.is_object() {
                doc = serde_json::json!({ "value": doc });
            }
            let obj = doc.as_object_mut().expect("wrapped to object above");
            let id = match obj.get("_id").and_then(Value::as_str) {
                Some(existing) => ObjectId(existing.to_string()),
                None => {
                    let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
                    let id = ObjectId(format!("oid-{n:08x}"));
                    obj.insert("_id".to_string(), Value::String(id.0.clone()));
                    id
                }
            };
            ids.push(id);
            batch.push(doc);
        }
        if batch.is_empty() {
            return ids;
        }
        // Count every inserted document, but observe one latency sample —
        // the batch is one store operation.
        let _timer = self.inner.metrics.get().map(|m| {
            m.inserts.add(batch.len() as u64);
            m.op_latency.start_timer()
        });
        if let Some(d) = self.inner.durability.get() {
            // Ids are assigned above so replay reproduces the exact docs.
            let op = json!({"op": "insert_many", "coll": d.name.clone(), "docs": batch.clone()});
            d.dur.commit(op, || self.inner.docs.write().extend(batch));
        } else {
            self.inner.docs.write().extend(batch);
        }
        ids
    }

    /// Atomically inserts `doc` unless a document matching the `unique`
    /// filter already exists — the unique-key insert that closes the
    /// `find_one`-then-`insert_one` TOCTOU race: the existence check and
    /// the insert happen under one write lock, so two concurrent calls
    /// with the same key can never both insert.
    ///
    /// Returns `Ok(id)` of the freshly inserted document, or `Err(id)` of
    /// the already-present match (the idempotent-replay answer).
    pub fn insert_if_absent(&self, unique: &Value, mut doc: Value) -> Result<ObjectId, ObjectId> {
        let _timer = self.observe_op(|m| &m.inserts);
        if !doc.is_object() {
            doc = serde_json::json!({ "value": doc });
        }
        // On a durable database the commit (state) lock must be taken
        // *before* the docs lock — the order every other mutation uses —
        // or a concurrent insert_one/update_many deadlocks against us.
        // The uniqueness check happens inside the commit closure, and the
        // op is only WAL-logged when the insert was admitted, so replay
        // needs no uniqueness re-check.
        if let Some(d) = self.inner.durability.get() {
            d.dur.commit_conditional(|| match self.admit_unique(unique, doc) {
                Ok((id, stored)) => {
                    let op = json!({"op": "insert", "coll": d.name.clone(), "doc": stored});
                    (Some(op), Ok(id))
                }
                Err(id) => (None, Err(id)),
            })
        } else {
            self.admit_unique(unique, doc).map(|(id, _)| id)
        }
    }

    /// The check-and-push core of [`Collection::insert_if_absent`], under
    /// one docs write lock. Returns the assigned id plus the stored
    /// document (for WAL logging), or the existing match's id.
    fn admit_unique(&self, unique: &Value, mut doc: Value) -> Result<(ObjectId, Value), ObjectId> {
        let mut docs = self.inner.docs.write();
        if let Some(existing) = docs.iter().find(|d| matches_filter(d, unique)) {
            let id = existing.get("_id").and_then(Value::as_str).unwrap_or_default().to_string();
            return Err(ObjectId(id));
        }
        let obj = doc.as_object_mut().expect("caller ensured an object");
        let id = match obj.get("_id").and_then(Value::as_str) {
            Some(existing) => ObjectId(existing.to_string()),
            None => {
                let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
                let id = ObjectId(format!("oid-{n:08x}"));
                obj.insert("_id".to_string(), Value::String(id.0.clone()));
                id
            }
        };
        let stored = doc.clone();
        docs.push(doc);
        Ok((id, stored))
    }

    /// Atomically upserts the document matching `unique`: when absent,
    /// `seed` is inserted first (assigned an `_id` like any insert), then
    /// `mutate` runs on the stored document — so a read-modify-write like
    /// a heartbeat counter happens entirely under one write lock (and the
    /// durability commit lock), closing the lost-update race between
    /// concurrent find-then-update callers. Returns the document as
    /// stored after mutation.
    pub fn upsert_mutate(
        &self,
        unique: &Value,
        seed: Value,
        mutate: impl FnOnce(&mut Value),
    ) -> Value {
        let _timer = self.observe_op(|m| &m.updates);
        if let Some(d) = self.inner.durability.get() {
            // Commit lock before docs lock (see insert_if_absent). The
            // closure's mutation cannot be serialized, so the WAL logs
            // the *outcome*: a plain insert for a fresh document, or a
            // whole-document replace of the unique match (replay keeps
            // its `_id`, matching apply_update's replace semantics).
            d.dur.commit_conditional(|| {
                let (inserted, result) = self.apply_upsert_mutate(unique, seed, mutate);
                let op = if inserted {
                    json!({"op": "insert", "coll": d.name.clone(), "doc": result.clone()})
                } else {
                    json!({
                        "op": "update",
                        "coll": d.name.clone(),
                        "filter": unique.clone(),
                        "update": result.clone(),
                    })
                };
                (Some(op), result)
            })
        } else {
            self.apply_upsert_mutate(unique, seed, mutate).1
        }
    }

    /// The locked core of [`Collection::upsert_mutate`]: returns whether a
    /// fresh document was inserted, plus the post-mutation document.
    fn apply_upsert_mutate(
        &self,
        unique: &Value,
        mut seed: Value,
        mutate: impl FnOnce(&mut Value),
    ) -> (bool, Value) {
        let mut docs = self.inner.docs.write();
        if let Some(existing) = docs.iter_mut().find(|d| matches_filter(d, unique)) {
            mutate(existing);
            return (false, existing.clone());
        }
        if !seed.is_object() {
            seed = serde_json::json!({ "value": seed });
        }
        let obj = seed.as_object_mut().expect("wrapped to object above");
        if obj.get("_id").and_then(Value::as_str).is_none() {
            let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
            obj.insert("_id".to_string(), Value::String(format!("oid-{n:08x}")));
        }
        mutate(&mut seed);
        docs.push(seed.clone());
        (true, seed)
    }

    /// All documents matching `filter`, in insertion order (cloned).
    pub fn find(&self, filter: &Value) -> Vec<Value> {
        let _timer = self.observe_op(|m| &m.finds);
        self.inner.docs.read().iter().filter(|d| matches_filter(d, filter)).cloned().collect()
    }

    /// The first matching document.
    pub fn find_one(&self, filter: &Value) -> Option<Value> {
        let _timer = self.observe_op(|m| &m.finds);
        self.inner.docs.read().iter().find(|d| matches_filter(d, filter)).cloned()
    }

    /// Fetch by `_id`.
    pub fn find_by_id(&self, id: &ObjectId) -> Option<Value> {
        self.find_one(&serde_json::json!({ "_id": id.as_str() }))
    }

    /// Number of matching documents.
    pub fn count(&self, filter: &Value) -> usize {
        let _timer = self.observe_op(|m| &m.finds);
        self.inner.docs.read().iter().filter(|d| matches_filter(d, filter)).count()
    }

    /// Total documents.
    pub fn len(&self) -> usize {
        self.inner.docs.read().len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `{"$set": {...}}` to every matching document; plain objects
    /// (no `$set`) replace matched documents wholesale, keeping their `_id`.
    /// Returns the number of documents updated.
    pub fn update_many(&self, filter: &Value, update: &Value) -> usize {
        let _timer = self.observe_op(|m| &m.updates);
        if let Some(d) = self.inner.durability.get() {
            let op = json!({
                "op": "update",
                "coll": d.name.clone(),
                "filter": filter.clone(),
                "update": update.clone(),
            });
            d.dur.commit(op, || self.apply_update(filter, update))
        } else {
            self.apply_update(filter, update)
        }
    }

    fn apply_update(&self, filter: &Value, update: &Value) -> usize {
        let mut docs = self.inner.docs.write();
        let mut n = 0;
        for doc in docs.iter_mut() {
            if !matches_filter(doc, filter) {
                continue;
            }
            if let Some(set) = update.get("$set").and_then(Value::as_object) {
                for (path, v) in set {
                    set_path(doc, path, v.clone());
                }
            } else if update.is_object() {
                let id = doc.get("_id").cloned();
                *doc = update.clone();
                if let (Some(obj), Some(id)) = (doc.as_object_mut(), id) {
                    obj.insert("_id".to_string(), id);
                }
            }
            n += 1;
        }
        n
    }

    /// Deletes matching documents, returning how many were removed.
    pub fn delete_many(&self, filter: &Value) -> usize {
        let _timer = self.observe_op(|m| &m.deletes);
        if let Some(d) = self.inner.durability.get() {
            let op = json!({"op": "delete", "coll": d.name.clone(), "filter": filter.clone()});
            d.dur.commit(op, || self.apply_delete(filter))
        } else {
            self.apply_delete(filter)
        }
    }

    fn apply_delete(&self, filter: &Value) -> usize {
        let mut docs = self.inner.docs.write();
        let before = docs.len();
        docs.retain(|d| !matches_filter(d, filter));
        before - docs.len()
    }

    /// Snapshot of all documents.
    pub fn all(&self) -> Vec<Value> {
        self.inner.docs.read().clone()
    }

    /// Replaces the whole contents (used by persistence loading).
    pub(crate) fn replace_all(&self, docs: Vec<Value>) {
        *self.inner.docs.write() = docs;
        self.sync_next_id();
    }

    /// Moves the id allocator past every stored oid, so documents that
    /// arrived with explicit `_id`s (persistence loads, WAL replay) can
    /// never collide with a freshly assigned id.
    pub(crate) fn sync_next_id(&self) {
        let mut max_seen = 0u64;
        for d in self.inner.docs.read().iter() {
            if let Some(id) = d.get("_id").and_then(Value::as_str) {
                if let Some(hex) = id.strip_prefix("oid-") {
                    if let Ok(n) = u64::from_str_radix(hex, 16) {
                        max_seen = max_seen.max(n + 1);
                    }
                }
            }
        }
        self.inner.next_id.fetch_max(max_seen, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn insert_assigns_unique_ids() {
        let c = Collection::new();
        let a = c.insert_one(json!({"x": 1}));
        let b = c.insert_one(json!({"x": 2}));
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.find_by_id(&a).unwrap()["x"], json!(1));
    }

    #[test]
    fn insert_preserves_explicit_id() {
        let c = Collection::new();
        let id = c.insert_one(json!({"_id": "custom", "x": 1}));
        assert_eq!(id.as_str(), "custom");
        assert!(c.find_by_id(&id).is_some());
    }

    #[test]
    fn insert_scalar_wraps() {
        let c = Collection::new();
        let id = c.insert_one(json!(42));
        let doc = c.find_by_id(&id).unwrap();
        assert_eq!(doc["value"], json!(42));
    }

    #[test]
    fn find_and_count() {
        let c = Collection::new();
        c.insert_many(vec![json!({"k": 1}), json!({"k": 2}), json!({"k": 3})]);
        assert_eq!(c.find(&json!({"k": {"$gte": 2}})).len(), 2);
        assert_eq!(c.count(&json!({"k": {"$lt": 2}})), 1);
        assert!(c.find_one(&json!({"k": 9})).is_none());
    }

    #[test]
    fn update_set_and_replace() {
        let c = Collection::new();
        let id = c.insert_one(json!({"status": "open", "meta": {"tries": 0}}));
        let n = c.update_many(
            &json!({"status": "open"}),
            &json!({"$set": {"status": "done", "meta.tries": 3}}),
        );
        assert_eq!(n, 1);
        let doc = c.find_by_id(&id).unwrap();
        assert_eq!(doc["status"], json!("done"));
        assert_eq!(doc["meta"]["tries"], json!(3));
        // Whole-document replace keeps _id.
        c.update_many(&json!({"status": "done"}), &json!({"fresh": true}));
        let doc = c.find_by_id(&id).unwrap();
        assert_eq!(doc["fresh"], json!(true));
        assert!(doc.get("status").is_none());
    }

    #[test]
    fn delete_many() {
        let c = Collection::new();
        c.insert_many(vec![json!({"k": 1}), json!({"k": 2}), json!({"k": 2})]);
        assert_eq!(c.delete_many(&json!({"k": 2})), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.delete_many(&json!({})), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_if_absent_is_idempotent() {
        let c = Collection::new();
        let key = json!({"test_id": "t", "contributor_id": "w", "submission_id": "s1"});
        let first = c
            .insert_if_absent(
                &key,
                json!({"test_id": "t", "contributor_id": "w", "submission_id": "s1", "x": 1}),
            )
            .expect("first insert goes through");
        let replay = c
            .insert_if_absent(
                &key,
                json!({"test_id": "t", "contributor_id": "w", "submission_id": "s1", "x": 2}),
            )
            .expect_err("replay must not insert");
        assert_eq!(first, replay);
        assert_eq!(c.len(), 1);
        assert_eq!(c.find_by_id(&first).unwrap()["x"], json!(1), "original wins");
        // A different key inserts fine.
        let other = json!({"test_id": "t", "contributor_id": "w", "submission_id": "s2"});
        assert!(c.insert_if_absent(&other, other.clone()).is_ok());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_if_absent_survives_concurrent_racers() {
        let c = Collection::new();
        let key = json!({"k": "unique"});
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                let key = key.clone();
                let winners = &winners;
                s.spawn(move || {
                    for i in 0..50 {
                        if c.insert_if_absent(&key, json!({"k": "unique", "t": t, "i": i})).is_ok()
                        {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1, "exactly one racer inserts");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn upsert_mutate_seeds_then_mutates_in_place() {
        let c = Collection::new();
        let key = json!({"sid": "s"});
        let first = c.upsert_mutate(&key, json!({"sid": "s", "beats": 0}), |d| {
            d["beats"] = json!(d["beats"].as_u64().unwrap_or(0) + 1);
        });
        assert_eq!(first["beats"], json!(1), "mutate runs on the seed too");
        assert!(first.get("_id").is_some(), "seed gets an id like any insert");
        let second = c.upsert_mutate(&key, json!({"sid": "s", "beats": 0}), |d| {
            d["beats"] = json!(d["beats"].as_u64().unwrap_or(0) + 1);
        });
        assert_eq!(second["beats"], json!(2));
        assert_eq!(second["_id"], first["_id"]);
        assert_eq!(c.len(), 1, "upsert never duplicates the key");
    }

    #[test]
    fn upsert_mutate_loses_no_concurrent_increments() {
        let c = Collection::new();
        let key = json!({"sid": "s"});
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let key = key.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.upsert_mutate(&key, json!({"sid": "s", "beats": 0}), |d| {
                            d["beats"] = json!(d["beats"].as_u64().unwrap_or(0) + 1);
                        });
                    }
                });
            }
        });
        assert_eq!(c.len(), 1);
        assert_eq!(c.find_one(&key).unwrap()["beats"], json!(800), "no lost updates");
    }

    #[test]
    fn clones_share_storage() {
        let a = Collection::new();
        let b = a.clone();
        a.insert_one(json!({"via": "a"}));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn concurrent_inserts() {
        let c = Collection::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        c.insert_one(json!({"t": t, "i": i}));
                    }
                });
            }
        });
        assert_eq!(c.len(), 800);
        // All ids unique.
        let mut ids: Vec<String> =
            c.all().iter().map(|d| d["_id"].as_str().unwrap().to_string()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }

    #[test]
    fn metrics_count_operations() {
        let registry = Registry::new();
        let c = Collection::new();
        c.attach_metrics(&registry, "tests");
        assert!(c.has_metrics());
        c.insert_one(json!({"k": 1}));
        c.insert_many(vec![json!({"k": 2}), json!({"k": 3})]);
        c.find(&json!({"k": {"$gte": 2}}));
        c.find_one(&json!({"k": 1}));
        c.count(&json!({}));
        c.update_many(&json!({"k": 1}), &json!({"$set": {"k": 9}}));
        c.delete_many(&json!({"k": 2}));

        let labels = [("collection", "tests")];
        assert_eq!(registry.counter_value("store.inserts_total", &labels), Some(3));
        assert_eq!(registry.counter_value("store.finds_total", &labels), Some(3));
        assert_eq!(registry.counter_value("store.updates_total", &labels), Some(1));
        assert_eq!(registry.counter_value("store.deletes_total", &labels), Some(1));
        let snap = registry.snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(k, _)| k.name == "store.op_latency_us")
            .expect("latency histogram registered");
        // insert_one + insert_many (one batched observation) + find
        // + find_one + count + update_many + delete_many = 7 observations.
        assert_eq!(hist.count(), 7, "every instrumented op observes latency");
        // Re-attaching is a no-op, not a reset.
        c.attach_metrics(&registry, "tests");
        assert_eq!(registry.counter_value("store.inserts_total", &labels), Some(3));
    }

    #[test]
    fn uninstrumented_collections_pay_nothing() {
        let c = Collection::new();
        assert!(!c.has_metrics());
        c.insert_one(json!({"x": 1}));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_all_bumps_id_counter() {
        let c = Collection::new();
        c.replace_all(vec![json!({"_id": "oid-000000ff"})]);
        let id = c.insert_one(json!({}));
        assert_eq!(id.as_str(), "oid-00000100");
    }
}
