//! The per-test file store.
//!
//! §III-B: "We create a new folder which is named after the test id, and all
//! related files of integrated webpages are stored in it. The core server
//! can access these resources, and serve them directly to participants."
//! [`GridStore`] reproduces that: a two-level keyspace (test id → file name)
//! of byte blobs, thread-safe, with directory persistence.

use crate::io::{escape_component, unescape_component, RealIo, StoreIo};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A thread-safe test-id-keyed file store.
#[derive(Debug, Clone, Default)]
pub struct GridStore {
    inner: Arc<RwLock<BTreeMap<String, BTreeMap<String, Bytes>>>>,
}

impl GridStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a file under `test_id/name`, replacing any previous contents.
    pub fn put(&self, test_id: &str, name: &str, data: impl Into<Bytes>) {
        self.inner
            .write()
            .entry(test_id.to_string())
            .or_default()
            .insert(name.to_string(), data.into());
    }

    /// Fetches a file.
    pub fn get(&self, test_id: &str, name: &str) -> Option<Bytes> {
        self.inner.read().get(test_id)?.get(name).cloned()
    }

    /// Fetches a file as UTF-8 text.
    pub fn get_text(&self, test_id: &str, name: &str) -> Option<String> {
        self.get(test_id, name).map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Lists file names under a test id (sorted).
    pub fn list(&self, test_id: &str) -> Vec<String> {
        self.inner
            .read()
            .get(test_id)
            .map(|files| files.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Lists all test ids (sorted).
    pub fn test_ids(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Deletes one file; returns whether it existed.
    pub fn delete(&self, test_id: &str, name: &str) -> bool {
        let mut inner = self.inner.write();
        match inner.get_mut(test_id) {
            Some(files) => files.remove(name).is_some(),
            None => false,
        }
    }

    /// Deletes a whole test folder; returns how many files were removed.
    pub fn delete_test(&self, test_id: &str) -> usize {
        self.inner.write().remove(test_id).map(|files| files.len()).unwrap_or(0)
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.inner.read().values().flat_map(|files| files.values()).map(|b| b.len()).sum()
    }

    /// Writes every file to `<dir>/<test_id>/<name>`, with both path
    /// components percent-escaped (a `..` or `/` in a test id or file name
    /// can therefore never escape `dir`).
    ///
    /// The save is crash-atomic: everything is written into a fresh
    /// sibling temp directory which then atomically replaces `dir`, so a
    /// crash mid-save leaves the previous snapshot intact, and files
    /// deleted since the last save do not resurrect on the next load.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.save_to_dir_with(dir, &RealIo)
    }

    /// [`GridStore::save_to_dir`] with an explicit I/O layer (the hook the
    /// fault-injection tests use).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn save_to_dir_with(&self, dir: &Path, io: &dyn StoreIo) -> std::io::Result<()> {
        let tmp = sibling(dir, ".tmp");
        let old = sibling(dir, ".old");
        io.remove_dir_all(&tmp)?;
        io.create_dir_all(&tmp)?;
        for (test_id, files) in self.inner.read().iter() {
            let test_dir = tmp.join(escape_component(test_id));
            io.create_dir_all(&test_dir)?;
            for (name, data) in files {
                io.write(&test_dir.join(escape_component(name)), data)?;
            }
            io.sync_dir(&test_dir)?;
        }
        io.sync_dir(&tmp)?;
        // Swap: demote the current snapshot to `.old`, promote the fresh
        // one, then discard `.old`. A crash between the renames leaves
        // `.old` behind, which `load_from_dir` falls back to.
        io.remove_dir_all(&old)?;
        if io.exists(dir) {
            io.rename(dir, &old)?;
        }
        io.rename(&tmp, dir)?;
        if let Some(parent) = dir.parent() {
            io.sync_dir(parent)?;
        }
        io.remove_dir_all(&old)?;
        Ok(())
    }

    /// Loads a store from a directory written by [`GridStore::save_to_dir`]
    /// (one subdirectory per test id; nested directories are skipped, and
    /// escaped path components are decoded). When `dir` is missing but a
    /// `<dir>.old` snapshot exists — a crash hit between the two renames of
    /// an atomic save — the old snapshot is loaded instead.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn load_from_dir(dir: &Path) -> std::io::Result<Self> {
        Self::load_from_dir_with(dir, &RealIo)
    }

    /// [`GridStore::load_from_dir`] with an explicit I/O layer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn load_from_dir_with(dir: &Path, io: &dyn StoreIo) -> std::io::Result<Self> {
        let old = sibling(dir, ".old");
        let dir = if !io.is_dir(dir) && io.is_dir(&old) { old.as_path() } else { dir };
        let store = GridStore::new();
        for entry in io.read_dir_names(dir)? {
            let test_path = dir.join(&entry);
            if !io.is_dir(&test_path) {
                continue;
            }
            let test_id = unescape_component(&entry);
            for file in io.read_dir_names(&test_path)? {
                let file_path = test_path.join(&file);
                if io.is_dir(&file_path) {
                    continue;
                }
                let name = unescape_component(&file);
                let data = io.read(&file_path)?;
                store.put(&test_id, &name, data);
            }
        }
        Ok(store)
    }
}

/// `<dir><suffix>` as a sibling path (e.g. `grid.tmp` next to `grid`).
fn sibling(dir: &Path, suffix: &str) -> PathBuf {
    let mut name =
        dir.file_name().map_or_else(|| "grid".to_string(), |n| n.to_string_lossy().into_owned());
    name.push_str(suffix);
    dir.parent().unwrap_or_else(|| Path::new(".")).join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let g = GridStore::new();
        g.put("test-1", "page-0.html", b"<html>".to_vec());
        assert_eq!(g.get("test-1", "page-0.html").unwrap(), Bytes::from_static(b"<html>"));
        assert_eq!(g.get_text("test-1", "page-0.html").as_deref(), Some("<html>"));
        assert!(g.get("test-1", "missing").is_none());
        assert!(g.get("other", "page-0.html").is_none());
    }

    #[test]
    fn listing() {
        let g = GridStore::new();
        g.put("t", "b", vec![1]);
        g.put("t", "a", vec![2]);
        g.put("u", "c", vec![3]);
        assert_eq!(g.list("t"), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(g.test_ids(), vec!["t".to_string(), "u".to_string()]);
        assert!(g.list("zzz").is_empty());
    }

    #[test]
    fn delete_file_and_test() {
        let g = GridStore::new();
        g.put("t", "a", vec![1]);
        g.put("t", "b", vec![2]);
        assert!(g.delete("t", "a"));
        assert!(!g.delete("t", "a"));
        assert_eq!(g.delete_test("t"), 1);
        assert_eq!(g.delete_test("t"), 0);
    }

    #[test]
    fn totals() {
        let g = GridStore::new();
        g.put("t", "a", vec![0; 10]);
        g.put("t", "b", vec![0; 5]);
        assert_eq!(g.total_bytes(), 15);
        g.put("t", "a", vec![0; 1]); // replace
        assert_eq!(g.total_bytes(), 6);
    }

    #[test]
    fn clones_share_storage() {
        let a = GridStore::new();
        let b = a.clone();
        a.put("t", "x", vec![1]);
        assert!(b.get("t", "x").is_some());
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kscope-grid-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hostile_ids_cannot_escape_the_store_directory() {
        let root = tempdir("traversal");
        let dir = root.join("grid");
        let g = GridStore::new();
        g.put("../escape", "../../name", b"attack".to_vec());
        g.put("..", "x", b"dotdot".to_vec());
        g.put("a/b", "c\\d", b"separators".to_vec());
        g.save_to_dir(&dir).unwrap();

        // Nothing was written outside the store directory…
        let mut outside: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        outside.sort();
        assert_eq!(outside, vec!["grid".to_string()], "only the grid dir exists in {root:?}");

        // …and the hostile names round-trip intact.
        let loaded = GridStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.get_text("../escape", "../../name").as_deref(), Some("attack"));
        assert_eq!(loaded.get_text("..", "x").as_deref(), Some("dotdot"));
        assert_eq!(loaded.get_text("a/b", "c\\d").as_deref(), Some("separators"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn deleted_files_do_not_resurrect_after_resave() {
        let root = tempdir("resurrect");
        let dir = root.join("grid");
        let g = GridStore::new();
        g.put("t", "keep.html", b"keep".to_vec());
        g.put("t", "gone.html", b"gone".to_vec());
        g.put("dead-test", "x.html", b"x".to_vec());
        g.save_to_dir(&dir).unwrap();

        g.delete("t", "gone.html");
        g.delete_test("dead-test");
        g.save_to_dir(&dir).unwrap();

        let loaded = GridStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.test_ids(), vec!["t".to_string()]);
        assert_eq!(loaded.list("t"), vec!["keep.html".to_string()]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_falls_back_to_old_snapshot_after_interrupted_swap() {
        let root = tempdir("oldfall");
        let dir = root.join("grid");
        let g = GridStore::new();
        g.put("t", "a.html", b"v1".to_vec());
        g.save_to_dir(&dir).unwrap();
        // Model a crash between `dir -> dir.old` and `tmp -> dir`.
        std::fs::rename(&dir, root.join("grid.old")).unwrap();
        let loaded = GridStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.get_text("t", "a.html").as_deref(), Some("v1"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kscope-grid-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = GridStore::new();
        g.put("test-abc", "integrated-0.html", b"<html>0".to_vec());
        g.put("test-abc", "integrated-1.html", b"<html>1".to_vec());
        g.put("test-def", "integrated-0.html", b"<html>x".to_vec());
        g.save_to_dir(&dir).unwrap();

        let loaded = GridStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.test_ids(), vec!["test-abc".to_string(), "test-def".to_string()]);
        assert_eq!(loaded.get_text("test-abc", "integrated-1.html").as_deref(), Some("<html>1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
