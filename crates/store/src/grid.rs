//! The per-test file store.
//!
//! §III-B: "We create a new folder which is named after the test id, and all
//! related files of integrated webpages are stored in it. The core server
//! can access these resources, and serve them directly to participants."
//! [`GridStore`] reproduces that: a two-level keyspace (test id → file name)
//! of byte blobs, thread-safe, with directory persistence.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// A thread-safe test-id-keyed file store.
#[derive(Debug, Clone, Default)]
pub struct GridStore {
    inner: Arc<RwLock<BTreeMap<String, BTreeMap<String, Bytes>>>>,
}

impl GridStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a file under `test_id/name`, replacing any previous contents.
    pub fn put(&self, test_id: &str, name: &str, data: impl Into<Bytes>) {
        self.inner
            .write()
            .entry(test_id.to_string())
            .or_default()
            .insert(name.to_string(), data.into());
    }

    /// Fetches a file.
    pub fn get(&self, test_id: &str, name: &str) -> Option<Bytes> {
        self.inner.read().get(test_id)?.get(name).cloned()
    }

    /// Fetches a file as UTF-8 text.
    pub fn get_text(&self, test_id: &str, name: &str) -> Option<String> {
        self.get(test_id, name).map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Lists file names under a test id (sorted).
    pub fn list(&self, test_id: &str) -> Vec<String> {
        self.inner
            .read()
            .get(test_id)
            .map(|files| files.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Lists all test ids (sorted).
    pub fn test_ids(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Deletes one file; returns whether it existed.
    pub fn delete(&self, test_id: &str, name: &str) -> bool {
        let mut inner = self.inner.write();
        match inner.get_mut(test_id) {
            Some(files) => files.remove(name).is_some(),
            None => false,
        }
    }

    /// Deletes a whole test folder; returns how many files were removed.
    pub fn delete_test(&self, test_id: &str) -> usize {
        self.inner.write().remove(test_id).map(|files| files.len()).unwrap_or(0)
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.inner.read().values().flat_map(|files| files.values()).map(|b| b.len()).sum()
    }

    /// Writes every file to `<dir>/<test_id>/<name>`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        for (test_id, files) in self.inner.read().iter() {
            let test_dir = dir.join(test_id);
            std::fs::create_dir_all(&test_dir)?;
            for (name, data) in files {
                std::fs::write(test_dir.join(name), data)?;
            }
        }
        Ok(())
    }

    /// Loads a store from a directory written by [`GridStore::save_to_dir`]
    /// (one subdirectory per test id; nested directories are skipped).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn load_from_dir(dir: &Path) -> std::io::Result<Self> {
        let store = GridStore::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let test_id = entry.file_name().to_string_lossy().into_owned();
            for file in std::fs::read_dir(entry.path())? {
                let file = file?;
                if !file.file_type()?.is_file() {
                    continue;
                }
                let name = file.file_name().to_string_lossy().into_owned();
                let data = std::fs::read(file.path())?;
                store.put(&test_id, &name, data);
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let g = GridStore::new();
        g.put("test-1", "page-0.html", b"<html>".to_vec());
        assert_eq!(g.get("test-1", "page-0.html").unwrap(), Bytes::from_static(b"<html>"));
        assert_eq!(g.get_text("test-1", "page-0.html").as_deref(), Some("<html>"));
        assert!(g.get("test-1", "missing").is_none());
        assert!(g.get("other", "page-0.html").is_none());
    }

    #[test]
    fn listing() {
        let g = GridStore::new();
        g.put("t", "b", vec![1]);
        g.put("t", "a", vec![2]);
        g.put("u", "c", vec![3]);
        assert_eq!(g.list("t"), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(g.test_ids(), vec!["t".to_string(), "u".to_string()]);
        assert!(g.list("zzz").is_empty());
    }

    #[test]
    fn delete_file_and_test() {
        let g = GridStore::new();
        g.put("t", "a", vec![1]);
        g.put("t", "b", vec![2]);
        assert!(g.delete("t", "a"));
        assert!(!g.delete("t", "a"));
        assert_eq!(g.delete_test("t"), 1);
        assert_eq!(g.delete_test("t"), 0);
    }

    #[test]
    fn totals() {
        let g = GridStore::new();
        g.put("t", "a", vec![0; 10]);
        g.put("t", "b", vec![0; 5]);
        assert_eq!(g.total_bytes(), 15);
        g.put("t", "a", vec![0; 1]); // replace
        assert_eq!(g.total_bytes(), 6);
    }

    #[test]
    fn clones_share_storage() {
        let a = GridStore::new();
        let b = a.clone();
        a.put("t", "x", vec![1]);
        assert!(b.get("t", "x").is_some());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kscope-grid-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = GridStore::new();
        g.put("test-abc", "integrated-0.html", b"<html>0".to_vec());
        g.put("test-abc", "integrated-1.html", b"<html>1".to_vec());
        g.put("test-def", "integrated-0.html", b"<html>x".to_vec());
        g.save_to_dir(&dir).unwrap();

        let loaded = GridStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.test_ids(), vec!["test-abc".to_string(), "test-def".to_string()]);
        assert_eq!(loaded.get_text("test-abc", "integrated-1.html").as_deref(), Some("<html>1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
