//! Crash-safe persistence: WAL-backed databases with atomic checkpoints.
//!
//! A durable [`Database`] lives in one directory:
//!
//! ```text
//! <dir>/
//!   CURRENT             # {"checkpoint":"ckpt-00000003","seq":3} — atomic pointer
//!   ckpt-00000003/      # the checkpoint: one <name>.jsonl per collection
//!   wal.log             # mutations appended since that checkpoint
//! ```
//!
//! **Commit protocol.** Every mutation serializes its operation, appends
//! it to `wal.log` (fsynced) *before* applying it in memory, all under one
//! commit lock so WAL order equals apply order. A write is durable the
//! moment its record is on disk.
//!
//! **Checkpoint protocol** ([`Database::checkpoint`]). Under the commit
//! lock: write every collection into a fresh `ckpt-N.tmp/` directory
//! (each file fsynced), rename it to `ckpt-N/`, then atomically replace
//! `CURRENT` (temp file + fsync + rename + directory fsync) — that rename
//! is the commit point — and finally truncate the WAL. Old checkpoint
//! directories are garbage-collected afterwards. A crash at *any* step
//! leaves either the old checkpoint + full WAL or the new checkpoint
//! (stale WAL records are skipped on replay via their sequence number).
//! Once the `CURRENT` rename lands, the checkpoint *has happened*: the
//! in-memory sequence advances immediately, and a failure in the
//! remaining housekeeping (directory fsync, WAL truncation, GC) is
//! reported but non-fatal — it is simply retried at the next checkpoint.
//!
//! **Recovery** ([`Database::open_durable`]). Load the checkpoint named
//! by `CURRENT` (or legacy root `*.jsonl` files when no checkpoint
//! exists), then replay the WAL. A torn or corrupt tail — the signature
//! of a crash mid-append — is *tolerated*: replay stops at the last valid
//! record, the tail is truncated away, and the [`RecoveryReport`] says
//! exactly what was dropped. Acknowledged writes are never lost; the one
//! in-flight unacknowledged record is the most a crash can cost.

use crate::database::{Database, PersistError};
use crate::index::IndexDef;
use crate::io::{escape_component, unescape_component, RealIo, StoreIo};
use crate::wal::{self, RecoveryReport, WAL_FILE};
use kscope_telemetry::{Counter, EventLevel, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

/// Checkpoint file persisting index *declarations* (contents are derived
/// state, rebuilt from the loaded documents). The name cannot collide with
/// a collection file: those always end in `.jsonl`.
const INDEXES_FILE: &str = "_indexes.json";

/// Millisecond buckets for `store.checkpoint_duration_ms`.
const CHECKPOINT_BUCKETS_MS: &[u64] =
    &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000];

/// Outcome of one [`Database::checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointStats {
    /// Sequence number of the new checkpoint.
    pub seq: u64,
    /// Collections written.
    pub collections: usize,
    /// Documents written.
    pub documents: usize,
    /// Bytes of checkpoint data written.
    pub bytes: u64,
    /// WAL bytes truncated away (everything the checkpoint superseded).
    pub wal_bytes_truncated: u64,
    /// Wall-clock duration of the checkpoint.
    pub duration: std::time::Duration,
}

impl std::fmt::Display for CheckpointStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint seq {}: {} collections, {} documents, {} bytes ({} WAL bytes folded) in {:?}",
            self.seq, self.collections, self.documents, self.bytes, self.wal_bytes_truncated,
            self.duration
        )
    }
}

/// A point-in-time view of a durable database's health.
#[derive(Debug, Clone)]
pub struct DurabilityStatus {
    /// Current checkpoint sequence number.
    pub seq: u64,
    /// `true` after a WAL append or fsync has failed: the database is in
    /// read-only mode, mutations are rejected with
    /// [`PersistError::ReadOnly`], and a checkpoint that truncates the
    /// WAL clears the flag.
    pub degraded: bool,
    /// Same condition as `degraded`, under the name the rest of the
    /// system uses: writes are rejected until a checkpoint frees space.
    pub read_only: bool,
    /// Bytes currently in the write-ahead log.
    pub wal_bytes: u64,
    /// Records currently in the write-ahead log.
    pub wal_records: u64,
    /// The directory backing this database.
    pub dir: PathBuf,
}

#[derive(Debug)]
struct WalState {
    seq: u64,
}

#[derive(Debug)]
struct DurabilityMetrics {
    registry: Arc<Registry>,
    wal_appends: Counter,
    wal_bytes: Counter,
    wal_errors: Counter,
    checkpoints: Counter,
    checkpoint_ms: Histogram,
    group_batches: Counter,
    group_ops: Counter,
    read_only: Gauge,
    disk_wal: Gauge,
    disk_ckpt: Gauge,
}

/// Group-commit bookkeeping: appended vs fsynced log sequence numbers,
/// guarded by a std mutex so the leader can block followers on the
/// condvar while it sleeps out the window and fsyncs.
#[derive(Debug, Default)]
struct GroupSync {
    appended_lsn: u64,
    synced_lsn: u64,
    /// Highest LSN covered by a *failed* group fsync: the waiters at or
    /// below it are released (`synced_lsn` advances past them) but must
    /// report [`PersistError::ReadOnly`] rather than acknowledge
    /// durability. Reset to 0 when a checkpoint folds every appended
    /// record into durable state.
    failed_lsn: u64,
    leader_busy: bool,
}

/// Shared durability engine attached to a [`Database`] and all its
/// collections: the commit lock, WAL writer, and checkpoint machinery.
#[derive(Debug)]
pub(crate) struct Durability {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    state: Mutex<WalState>,
    degraded: AtomicBool,
    report: RecoveryReport,
    metrics: OnceLock<DurabilityMetrics>,
    /// Group-commit window in nanoseconds; 0 disables group commit (every
    /// append fsyncs individually, the pre-group-commit behaviour).
    window_ns: AtomicU64,
    group: StdMutex<GroupSync>,
    group_cv: Condvar,
    /// Bytes currently sitting in the WAL (reset when a checkpoint
    /// truncates it) — the compaction trigger and `store.disk_bytes{wal}`.
    wal_bytes: AtomicU64,
    /// Records currently sitting in the WAL (reset on truncation).
    wal_records: AtomicU64,
    /// How many checkpoint directories the post-checkpoint GC keeps
    /// (newest first); clamped to ≥ 1 so `CURRENT` can never dangle.
    retain: AtomicUsize,
    /// `(seq, bytes)` of checkpoint directories still on disk, feeding
    /// `store.disk_bytes{checkpoints}`.
    ckpt_sizes: Mutex<Vec<(u64, u64)>>,
}

impl Durability {
    /// Appends `op` (stamped with the current checkpoint seq) to the WAL,
    /// then applies the in-memory mutation — both under the commit lock,
    /// so WAL order is exactly apply order. The append is strictly
    /// WAL-first: if it fails (ENOSPC, EIO, …) the database enters
    /// **read-only mode**, the mutation is *not* applied, and the caller
    /// gets [`PersistError::ReadOnly`] — never an acknowledged-but-
    /// unlogged write. Once read-only, every mutation is rejected until a
    /// checkpoint truncates the WAL: appending records after a hole would
    /// let replay run a suffix against state missing the unlogged op,
    /// reconstructing a state that never existed.
    ///
    /// With a group-commit window armed the append skips its own fsync;
    /// the caller is instead blocked *after* releasing the commit lock
    /// until a batch leader has fsynced past its record — same durability
    /// guarantee at ack time, one fsync per window of concurrent commits.
    /// A failed group fsync also yields `ReadOnly`: the record *was*
    /// applied in memory but is reported undurable, so the client must
    /// not treat it as acknowledged (it is at most replayed as the usual
    /// unacknowledged in-flight write).
    pub(crate) fn try_commit<R>(
        &self,
        op: Value,
        apply: impl FnOnce() -> R,
    ) -> Result<R, PersistError> {
        let window = self.window_ns.load(Ordering::SeqCst);
        if window == 0 {
            let state = self.state.lock();
            self.append_locked(state.seq, op)?;
            return Ok(apply());
        }
        let (lsn, result) = {
            let state = self.state.lock();
            let lsn = self.append_nosync_locked(state.seq, op)?;
            (lsn, apply())
        };
        self.wait_synced(lsn, window)?;
        Ok(result)
    }

    /// [`try_commit`] for callers with no error path: panics on
    /// [`PersistError::ReadOnly`]. Crash-only semantics — an internal
    /// mutation that cannot be made durable has no way to be rolled back,
    /// so dying (and recovering to the acknowledged prefix) is the honest
    /// outcome. Request-facing paths use the `try_` variant and surface
    /// 507 instead.
    ///
    /// [`try_commit`]: Durability::try_commit
    pub(crate) fn commit<R>(&self, op: Value, apply: impl FnOnce() -> R) -> R {
        match self.try_commit(op, apply) {
            Ok(result) => result,
            Err(e) => panic!("infallible commit path hit a persistence failure: {e}"),
        }
    }

    /// Commit variant for conditionally-admitted mutations (unique-key
    /// inserts, atomic upserts): `attempt` runs under the commit lock —
    /// it may acquire collection locks, which preserves the one global
    /// lock order (commit lock → collection lock) that [`try_commit`] and
    /// every other mutation path use — and returns the WAL op to log
    /// *iff* the mutation was admitted, plus the caller's result. The op
    /// is appended after apply, still under the commit lock, so WAL order
    /// is exactly apply order; a crash in the gap can only lose the one
    /// write that was never acknowledged.
    ///
    /// Read-only mode is checked *before* `attempt` runs, so a rejected
    /// call mutates nothing. The one asymmetric window: if the append
    /// itself fails *after* `attempt` already applied, the mutation stays
    /// in memory but the caller gets `ReadOnly` — safe, because logging
    /// is suspended from that instant (no later record can contradict
    /// the unlogged one), the write was never acknowledged, and the
    /// checkpoint that clears the mode folds the in-memory state —
    /// including this write — into durable state. Group commit applies
    /// exactly as in [`try_commit`]: the ack blocks outside the lock
    /// until fsynced.
    ///
    /// [`try_commit`]: Durability::try_commit
    pub(crate) fn try_commit_conditional<R>(
        &self,
        attempt: impl FnOnce() -> (Option<Value>, R),
    ) -> Result<R, PersistError> {
        let window = self.window_ns.load(Ordering::SeqCst);
        let (lsn, result) = {
            let state = self.state.lock();
            if self.degraded.load(Ordering::SeqCst) {
                return Err(PersistError::ReadOnly);
            }
            let (op, result) = attempt();
            let lsn = match op {
                Some(op) if window > 0 => Some(self.append_nosync_locked(state.seq, op)?),
                Some(op) => {
                    self.append_locked(state.seq, op)?;
                    None
                }
                None => None,
            };
            (lsn, result)
        };
        if let Some(lsn) = lsn {
            self.wait_synced(lsn, window)?;
        }
        Ok(result)
    }

    /// Sets the group-commit window; `Duration::ZERO` disables.
    pub(crate) fn set_group_window(&self, window: Duration) {
        let ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        self.window_ns.store(ns, Ordering::SeqCst);
    }

    fn group_lock(&self) -> std::sync::MutexGuard<'_, GroupSync> {
        self.group.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends without fsync (group-commit path), returning the record's
    /// log sequence number to wait on — or [`PersistError::ReadOnly`]
    /// when the append failed or the database already is read-only.
    fn append_nosync_locked(&self, seq: u64, mut op: Value) -> Result<u64, PersistError> {
        if self.degraded.load(Ordering::SeqCst) {
            return Err(PersistError::ReadOnly);
        }
        if let Some(obj) = op.as_object_mut() {
            obj.insert("seq".to_string(), json!(seq));
        }
        let payload = serde_json::to_string(&op).unwrap_or_default();
        let frame = wal::encode_frame(payload.as_bytes());
        match self.io.append_nosync(&self.dir.join(WAL_FILE), &frame) {
            Ok(()) => {
                self.note_appended(frame.len() as u64);
                let mut g = self.group_lock();
                g.appended_lsn += 1;
                Ok(g.appended_lsn)
            }
            Err(e) => {
                self.enter_read_only("append", &e.to_string());
                Err(PersistError::ReadOnly)
            }
        }
    }

    /// Blocks until the WAL is fsynced past `lsn`. The first arriving
    /// waiter becomes the batch leader: it sleeps out the window so
    /// concurrent commits can pile on, issues one fsync covering every
    /// record appended by then, and wakes all followers. A failed fsync
    /// turns the database read-only (durability can no longer be
    /// promised) and releases the waiters with
    /// [`PersistError::ReadOnly`] rather than hanging them.
    fn wait_synced(&self, lsn: u64, window_ns: u64) -> Result<(), PersistError> {
        let mut g = self.group_lock();
        loop {
            if g.synced_lsn >= lsn {
                // Released — but by a *successful* fsync? `failed_lsn`
                // covering this record means its batch leader could not
                // make it durable.
                if g.failed_lsn >= lsn {
                    return Err(PersistError::ReadOnly);
                }
                return Ok(());
            }
            if g.leader_busy {
                g = self.group_cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            g.leader_busy = true;
            drop(g);
            if window_ns > 0 {
                std::thread::sleep(Duration::from_nanos(window_ns));
            }
            let target = self.group_lock().appended_lsn;
            let sync_res = self.io.sync_file(&self.dir.join(WAL_FILE));
            let mut after = self.group_lock();
            after.leader_busy = false;
            match sync_res {
                Ok(()) => {
                    if target > after.synced_lsn {
                        if let Some(m) = self.metrics.get() {
                            m.group_batches.inc();
                            m.group_ops.add(target - after.synced_lsn);
                        }
                        after.synced_lsn = target;
                    }
                }
                Err(e) => {
                    self.enter_read_only("group fsync", &e.to_string());
                    after.failed_lsn = after.failed_lsn.max(target);
                    if target > after.synced_lsn {
                        after.synced_lsn = target;
                    }
                }
            }
            self.group_cv.notify_all();
            g = after;
        }
    }

    /// Marks every appended record as synced (the checkpoint folded them
    /// into durable state) and releases any group-commit waiters. Also
    /// clears the failure watermark: records the failed fsync could not
    /// cover are in the durable checkpoint now, so late waiters can
    /// acknowledge after all.
    fn mark_all_synced(&self) {
        let mut g = self.group_lock();
        g.synced_lsn = g.appended_lsn;
        g.failed_lsn = 0;
        self.group_cv.notify_all();
    }

    /// Stamps `op` with `seq` and appends it to the WAL (fsynced). Must
    /// be called with the commit (state) lock held. A failed append turns
    /// the database read-only and is rejected; once read-only, every
    /// append is refused until a checkpoint truncates the WAL (see
    /// [`Durability::try_commit`]).
    fn append_locked(&self, seq: u64, mut op: Value) -> Result<(), PersistError> {
        if self.degraded.load(Ordering::SeqCst) {
            return Err(PersistError::ReadOnly);
        }
        if let Some(obj) = op.as_object_mut() {
            obj.insert("seq".to_string(), json!(seq));
        }
        let payload = serde_json::to_string(&op).unwrap_or_default();
        let frame = wal::encode_frame(payload.as_bytes());
        match self.io.append(&self.dir.join(WAL_FILE), &frame) {
            Ok(()) => {
                self.note_appended(frame.len() as u64);
                Ok(())
            }
            Err(e) => {
                self.enter_read_only("append", &e.to_string());
                Err(PersistError::ReadOnly)
            }
        }
    }

    /// Accounts a successful append in the WAL pressure counters (the
    /// compaction trigger) and the disk/throughput metrics.
    fn note_appended(&self, bytes: u64) {
        let total = bytes + self.wal_bytes.fetch_add(bytes, Ordering::SeqCst);
        self.wal_records.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = self.metrics.get() {
            m.wal_appends.inc();
            m.wal_bytes.add(bytes);
            m.disk_wal.set(total as i64);
        }
    }

    /// Flips the database into read-only mode (mutations rejected with
    /// [`PersistError::ReadOnly`]) and surfaces it on the dashboards.
    pub(crate) fn enter_read_only(&self, step: &str, error: &str) {
        self.degraded.store(true, Ordering::SeqCst);
        if let Some(m) = self.metrics.get() {
            m.wal_errors.inc();
            m.read_only.set(1);
            m.registry.event(
                EventLevel::Error,
                "store",
                "WAL write failed; database is read-only until a checkpoint frees space",
                &[("step", step), ("error", error)],
            );
        }
    }

    /// Re-arms logging after a checkpoint left the WAL hole-free.
    pub(crate) fn clear_read_only(&self) {
        self.degraded.store(false, Ordering::SeqCst);
        if let Some(m) = self.metrics.get() {
            m.read_only.set(0);
        }
    }

    /// Current WAL pressure as `(bytes, records)` — what the background
    /// compactor polls against its thresholds.
    pub(crate) fn wal_pressure(&self) -> (u64, u64) {
        (self.wal_bytes.load(Ordering::SeqCst), self.wal_records.load(Ordering::SeqCst))
    }

    pub(crate) fn is_read_only(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    pub(crate) fn attach_metrics(&self, registry: &Arc<Registry>) {
        let created = self.metrics.get().is_none();
        let _ = self.metrics.set(DurabilityMetrics {
            registry: Arc::clone(registry),
            wal_appends: registry.counter("store.wal_appends_total"),
            wal_bytes: registry.counter("store.wal_bytes"),
            wal_errors: registry.counter("store.wal_append_errors_total"),
            checkpoints: registry.counter("store.checkpoints_total"),
            checkpoint_ms: registry.histogram_with_buckets(
                "store.checkpoint_duration_ms",
                &[],
                CHECKPOINT_BUCKETS_MS,
            ),
            group_batches: registry.counter("store.group_commit_batches"),
            group_ops: registry.counter("store.group_commit_ops"),
            read_only: registry.gauge("store.read_only"),
            disk_wal: registry.gauge_with("store.disk_bytes", &[("file", "wal")]),
            disk_ckpt: registry.gauge_with("store.disk_bytes", &[("file", "checkpoints")]),
        });
        if created {
            // Surface what recovery found on the operator's dashboards.
            registry
                .counter("store.recovery_dropped_records")
                .add(self.report.dropped_records as u64);
            if let Some(m) = self.metrics.get() {
                m.disk_wal.set(self.wal_bytes.load(Ordering::SeqCst) as i64);
                m.read_only.set(i64::from(self.degraded.load(Ordering::SeqCst)));
            }
        }
    }
}

fn ckpt_dir_name(seq: u64) -> String {
    format!("ckpt-{seq:08}")
}

fn parse_ckpt_seq(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-").and_then(|rest| rest.parse::<u64>().ok())
}

/// Loads every `<name>.jsonl` file of `dir` into `db` (strict parsing —
/// checkpoints are written atomically, so damage here is real corruption,
/// not a crash artifact).
fn load_collections(io: &dyn StoreIo, dir: &Path, db: &Database) -> Result<(), PersistError> {
    if !io.is_dir(dir) {
        return Err(PersistError::Corrupt(format!(
            "missing checkpoint directory {}",
            dir.display()
        )));
    }
    for entry in io.read_dir_names(dir).map_err(PersistError::Io)? {
        let Some(stem) = entry.strip_suffix(".jsonl") else { continue };
        let name = unescape_component(stem);
        let bytes = io.read(&dir.join(&entry)).map_err(PersistError::Io)?;
        let text = String::from_utf8_lossy(&bytes);
        let mut docs = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            docs.push(serde_json::from_str::<Value>(line).map_err(PersistError::Json)?);
        }
        db.collection(&name).replace_all(docs);
    }
    Ok(())
}

/// Applies one replayed WAL operation to `db` (durability is not yet
/// attached, so nothing is re-logged).
fn apply_wal_op(db: &Database, op: &Value) -> Result<(), PersistError> {
    let kind = op.get("op").and_then(Value::as_str).unwrap_or("");
    let coll = op.get("coll").and_then(Value::as_str).unwrap_or("");
    match kind {
        "insert" => {
            let doc = op.get("doc").cloned().unwrap_or(Value::Null);
            db.collection(coll).insert_one(doc);
            Ok(())
        }
        "insert_many" => {
            let docs = match op.get("docs") {
                Some(Value::Array(docs)) => docs.clone(),
                _ => Vec::new(),
            };
            db.collection(coll).insert_many(docs);
            Ok(())
        }
        "update" => {
            let filter = op.get("filter").cloned().unwrap_or(json!({}));
            let update = op.get("update").cloned().unwrap_or(json!({}));
            db.collection(coll).update_many(&filter, &update);
            Ok(())
        }
        "delete" => {
            let filter = op.get("filter").cloned().unwrap_or(json!({}));
            db.collection(coll).delete_many(&filter);
            Ok(())
        }
        "drop" => {
            db.drop_collection(coll);
            Ok(())
        }
        "ensure_index" => {
            let def = op.get("index").and_then(IndexDef::from_json).ok_or_else(|| {
                PersistError::Corrupt("ensure_index record carries no index definition".into())
            })?;
            db.collection(coll).apply_ensure_index(def);
            Ok(())
        }
        other => Err(PersistError::Corrupt(format!("unknown WAL operation {other:?}"))),
    }
}

impl Database {
    /// Opens (creating if needed) a crash-safe database backed by `dir`:
    /// loads the latest checkpoint, replays the write-ahead log on top —
    /// tolerating a torn/corrupt tail by truncating to the last valid
    /// record — and arms WAL-first commits for every future mutation.
    ///
    /// A directory of plain `*.jsonl` files (written by
    /// [`Database::save_to_dir`] before durability existed) is imported as
    /// the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on I/O failures or real corruption (a
    /// checkpoint that does not parse). A torn WAL tail is *not* an error.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<(Database, RecoveryReport), PersistError> {
        Self::open_durable_with(dir, Arc::new(RealIo))
    }

    /// [`Database::open_durable`] with an explicit I/O layer — the hook
    /// the fault-injection tests use.
    ///
    /// # Errors
    ///
    /// See [`Database::open_durable`].
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        io: Arc<dyn StoreIo>,
    ) -> Result<(Database, RecoveryReport), PersistError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir).map_err(PersistError::Io)?;
        let db = Database::new();
        let mut report = RecoveryReport::default();
        let current_path = dir.join("CURRENT");
        let mut seq = 0u64;
        if io.exists(&current_path) {
            let bytes = io.read(&current_path).map_err(PersistError::Io)?;
            let current: Value = serde_json::from_str(&String::from_utf8_lossy(&bytes))
                .map_err(PersistError::Json)?;
            let name = current
                .get("checkpoint")
                .and_then(Value::as_str)
                .filter(|n| parse_ckpt_seq(n).is_some())
                .ok_or_else(|| PersistError::Corrupt("CURRENT names no checkpoint".into()))?
                .to_string();
            seq = current.get("seq").and_then(Value::as_u64).unwrap_or(0);
            load_collections(&*io, &dir.join(&name), &db)?;
            // Re-declare checkpointed indexes *before* WAL replay, so the
            // replayed mutations maintain them exactly as live traffic
            // did — rebuilding contents deterministically from the docs.
            let idx_path = dir.join(&name).join(INDEXES_FILE);
            if io.exists(&idx_path) {
                let bytes = io.read(&idx_path).map_err(PersistError::Io)?;
                let spec: Value = serde_json::from_str(&String::from_utf8_lossy(&bytes))
                    .map_err(PersistError::Json)?;
                let decls = spec.as_object().ok_or_else(|| {
                    PersistError::Corrupt("checkpoint index file is not an object".into())
                })?;
                for (coll, defs) in decls {
                    for dv in defs.as_array().map(Vec::as_slice).unwrap_or_default() {
                        let def = IndexDef::from_json(dv).ok_or_else(|| {
                            PersistError::Corrupt(format!(
                                "checkpoint carries a malformed index definition for {coll:?}"
                            ))
                        })?;
                        db.collection(coll).apply_ensure_index(def);
                    }
                }
            }
            report.checkpoint_seq = seq;
        } else if io.is_dir(&dir) {
            // Legacy import: a pre-durability snapshot directory.
            for entry in io.read_dir_names(&dir).map_err(PersistError::Io)? {
                let Some(stem) = entry.strip_suffix(".jsonl") else { continue };
                if entry == WAL_FILE {
                    continue;
                }
                report.legacy_import = true;
                let name = unescape_component(stem);
                let bytes = io.read(&dir.join(&entry)).map_err(PersistError::Io)?;
                let text = String::from_utf8_lossy(&bytes);
                let mut docs = Vec::new();
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    docs.push(serde_json::from_str::<Value>(line).map_err(PersistError::Json)?);
                }
                db.collection(&name).replace_all(docs);
            }
        }

        // Replay the WAL over the checkpoint, skipping records already
        // folded into it (stale seq) and tolerating a torn tail.
        let scanned = wal::read(&*io, &dir).map_err(PersistError::Io)?;
        for record in &scanned.records {
            if record.seq < seq {
                report.stale_records += 1;
                continue;
            }
            apply_wal_op(&db, &record.op)?;
            report.replayed_records += 1;
        }
        if scanned.torn_bytes > 0 {
            report.dropped_records = 1;
            report.dropped_bytes = scanned.torn_bytes;
        }
        // Replayed inserts carry explicit `_id`s, which bypass the id
        // allocator — resync it so fresh inserts cannot collide.
        for name in db.collection_names() {
            db.collection(&name).sync_next_id();
        }
        // Compact the log if recovery dropped a tail or skipped stale
        // records: rewrite only the surviving frames, atomically.
        if scanned.torn_bytes > 0 || report.stale_records > 0 {
            let mut buf = Vec::new();
            for record in &scanned.records {
                if record.seq >= seq {
                    let payload = serde_json::to_string(&record.op).unwrap_or_default();
                    buf.extend_from_slice(&wal::encode_frame(payload.as_bytes()));
                }
            }
            let tmp = dir.join("wal.log.tmp");
            io.write(&tmp, &buf).map_err(PersistError::Io)?;
            io.rename(&tmp, &dir.join(WAL_FILE)).map_err(PersistError::Io)?;
            io.sync_dir(&dir).map_err(PersistError::Io)?;
            report.wal_rewritten = true;
        }

        // Seed the WAL pressure counters from what survived recovery, so
        // a compactor attached right after open sees the true backlog.
        let wal_path = dir.join(WAL_FILE);
        let wal_len = if io.exists(&wal_path) {
            io.read(&wal_path).map(|b| b.len() as u64).unwrap_or(0)
        } else {
            0
        };
        let wal_recs = scanned.records.iter().filter(|r| r.seq >= seq).count() as u64;
        let durability = Arc::new(Durability {
            dir,
            io,
            state: Mutex::new(WalState { seq }),
            degraded: AtomicBool::new(false),
            report: report.clone(),
            metrics: OnceLock::new(),
            window_ns: AtomicU64::new(0),
            group: StdMutex::new(GroupSync::default()),
            group_cv: Condvar::new(),
            wal_bytes: AtomicU64::new(wal_len),
            wal_records: AtomicU64::new(wal_recs),
            retain: AtomicUsize::new(2),
            ckpt_sizes: Mutex::new(Vec::new()),
        });
        db.attach_durability(&durability);
        Ok((db, report))
    }

    /// Atomically checkpoints a durable database: writes every collection
    /// into a fresh checkpoint directory (temp dir + fsync + rename),
    /// flips the `CURRENT` pointer, truncates the WAL, and removes
    /// superseded checkpoints. Blocks writers for the duration (reads
    /// proceed). A successful checkpoint clears the degraded flag.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotDurable`] when the database was not opened with
    /// [`Database::open_durable`]; otherwise I/O errors from the steps
    /// *before* the `CURRENT` rename, after which the on-disk state is
    /// still the old checkpoint + full WAL. Failures after the rename
    /// (directory fsync, WAL truncation, GC) do **not** fail the
    /// checkpoint — the commit already happened, so the sequence number
    /// advances and cleanup is retried at the next checkpoint.
    pub fn checkpoint(&self) -> Result<CheckpointStats, PersistError> {
        let d = self.durability_handle().ok_or(PersistError::NotDurable)?;
        let start = Instant::now();
        let mut state = d.state.lock();
        let next_seq = state.seq + 1;
        let name = ckpt_dir_name(next_seq);
        let tmp = d.dir.join(format!("{name}.tmp"));
        d.io.remove_dir_all(&tmp).map_err(PersistError::Io)?;
        d.io.create_dir_all(&tmp).map_err(PersistError::Io)?;

        let collections = self.collections_snapshot();
        let mut documents = 0usize;
        let mut bytes = 0u64;
        for (coll_name, coll) in &collections {
            let mut buf = String::new();
            for doc in coll.all() {
                buf.push_str(&serde_json::to_string(&doc).map_err(PersistError::Json)?);
                buf.push('\n');
                documents += 1;
            }
            let file = tmp.join(format!("{}.jsonl", escape_component(coll_name)));
            d.io.write(&file, buf.as_bytes()).map_err(PersistError::Io)?;
            bytes += buf.len() as u64;
        }
        // Persist index *declarations* (sorted, hence deterministic);
        // contents are derived state, rebuilt from the documents on load.
        let mut index_spec = serde_json::Map::new();
        for (coll_name, coll) in &collections {
            let defs = coll.index_defs();
            if !defs.is_empty() {
                index_spec.insert(
                    coll_name.clone(),
                    Value::Array(defs.iter().map(IndexDef::to_json).collect()),
                );
            }
        }
        if !index_spec.is_empty() {
            let body = serde_json::to_string(&Value::Object(index_spec)).unwrap_or_default();
            d.io.write(&tmp.join(INDEXES_FILE), body.as_bytes()).map_err(PersistError::Io)?;
            bytes += body.len() as u64;
        }
        d.io.sync_dir(&tmp).map_err(PersistError::Io)?;
        let final_dir = d.dir.join(&name);
        d.io.remove_dir_all(&final_dir).map_err(PersistError::Io)?;
        d.io.rename(&tmp, &final_dir).map_err(PersistError::Io)?;
        d.io.sync_dir(&d.dir).map_err(PersistError::Io)?;

        // Commit point: atomically swing CURRENT to the new checkpoint.
        let current = json!({ "checkpoint": name.clone(), "seq": next_seq });
        let current_tmp = d.dir.join("CURRENT.tmp");
        d.io.write(&current_tmp, serde_json::to_string(&current).unwrap_or_default().as_bytes())
            .map_err(PersistError::Io)?;
        d.io.rename(&current_tmp, &d.dir.join("CURRENT")).map_err(PersistError::Io)?;
        // CURRENT now names the new checkpoint, so the in-memory sequence
        // must advance with it before any fallible step below: returning
        // Err with a stale seq would stamp every later write with a
        // sequence number the next recovery skips as already folded in —
        // silent loss of acknowledged writes.
        state.seq = next_seq;

        // Post-commit housekeeping is best-effort; failures cannot unwind
        // the committed checkpoint and are retried at the next one. If the
        // directory fsync fails, the rename's durability is uncertain, so
        // the WAL is left intact (replay skips its records as stale) and
        // superseded checkpoints are kept in case the on-disk CURRENT
        // still points at one.
        let dir_synced = d.io.sync_dir(&d.dir).is_ok();
        let wal_path = d.dir.join(WAL_FILE);
        let mut wal_bytes_truncated = 0u64;
        let mut wal_truncated = false;
        if dir_synced {
            if d.io.exists(&wal_path) {
                wal_bytes_truncated = d.io.read(&wal_path).map(|b| b.len() as u64).unwrap_or(0);
            }
            wal_truncated = d.io.write(&wal_path, b"").is_ok();
            if !wal_truncated {
                wal_bytes_truncated = 0;
            }
        }
        if wal_truncated {
            // Only a truncated (hence hole-free) WAL re-arms logging.
            d.clear_read_only();
            d.wal_bytes.store(0, Ordering::SeqCst);
            d.wal_records.store(0, Ordering::SeqCst);
            if let Some(m) = d.metrics.get() {
                m.disk_wal.set(0);
            }
            // Every record appended so far is folded into the durable
            // checkpoint — release group-commit waiters still queued for
            // an fsync of WAL bytes that no longer exist.
            d.mark_all_synced();
        }
        drop(state);

        d.ckpt_sizes.lock().push((next_seq, bytes));
        if dir_synced {
            // Garbage-collect checkpoints beyond the retention window
            // (newest `retain_checkpoints(K)` survive; the one CURRENT
            // names is always the newest, so it can never dangle) plus
            // stale temp dirs.
            let retain = d.retain.load(Ordering::SeqCst).max(1);
            let mut seqs: Vec<u64> =
                d.io.read_dir_names(&d.dir)
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|e| parse_ckpt_seq(e))
                    .collect();
            seqs.sort_unstable_by(|a, b| b.cmp(a));
            let keep: Vec<u64> = seqs.into_iter().take(retain).collect();
            for entry in d.io.read_dir_names(&d.dir).unwrap_or_default() {
                let stale_ckpt = parse_ckpt_seq(&entry).is_some_and(|s| !keep.contains(&s));
                let stale_tmp = entry.ends_with(".tmp") && entry.starts_with("ckpt-");
                if stale_ckpt || (stale_tmp && entry != format!("{name}.tmp")) {
                    let _ = d.io.remove_dir_all(&d.dir.join(&entry));
                }
            }
            let mut sizes = d.ckpt_sizes.lock();
            sizes.retain(|(s, _)| keep.contains(s));
            if let Some(m) = d.metrics.get() {
                m.disk_ckpt.set(sizes.iter().map(|(_, b)| *b as i64).sum());
            }
        }
        if !wal_truncated {
            if let Some(m) = d.metrics.get() {
                m.registry.event(
                    EventLevel::Warn,
                    "store",
                    "checkpoint committed but post-commit WAL truncation/GC failed; retrying at next checkpoint",
                    &[("seq", &next_seq.to_string())],
                );
            }
        }

        let duration = start.elapsed();
        if let Some(m) = d.metrics.get() {
            m.checkpoints.inc();
            m.checkpoint_ms.observe(duration.as_millis() as u64);
        }
        Ok(CheckpointStats {
            seq: next_seq,
            collections: collections.len(),
            documents,
            bytes,
            wal_bytes_truncated,
            duration,
        })
    }

    /// Arms cross-collection WAL group commit: commits from *any*
    /// collection arriving within `window` of each other coalesce into a
    /// single fsync — a burst of 100 concurrent response uploads pays ~1
    /// fsync, not 100. Each commit is still acknowledged only after its
    /// record is on disk, so the durability guarantee is unchanged; the
    /// window only adds (bounded) ack latency. `Duration::ZERO` restores
    /// one-fsync-per-commit. Returns `false` on a non-durable database.
    pub fn set_group_commit_window(&self, window: Duration) -> bool {
        match self.durability_handle() {
            Some(d) => {
                d.set_group_window(window);
                true
            }
            None => false,
        }
    }

    /// Health of the durability layer, or `None` for an in-memory
    /// database.
    pub fn durability_status(&self) -> Option<DurabilityStatus> {
        self.durability_handle().map(|d| {
            let (wal_bytes, wal_records) = d.wal_pressure();
            let read_only = d.is_read_only();
            DurabilityStatus {
                seq: d.state.lock().seq,
                degraded: read_only,
                read_only,
                wal_bytes,
                wal_records,
                dir: d.dir.clone(),
            }
        })
    }

    /// Whether the database currently rejects mutations with
    /// [`PersistError::ReadOnly`]; always `false` for an in-memory
    /// database.
    pub fn is_read_only(&self) -> bool {
        self.durability_handle().is_some_and(|d| d.is_read_only())
    }

    /// Forces read-only mode on or off — the operational/testing hook for
    /// exercising the disk-pressure path end-to-end without a real
    /// ENOSPC. Returns `false` on a non-durable database.
    ///
    /// Clearing with `on = false` only flips the flag; a mode entered by
    /// a *real* append failure should instead be cleared by
    /// [`Database::checkpoint`], which truncates the (possibly holed) WAL
    /// before re-arming logging.
    pub fn force_read_only(&self, on: bool) -> bool {
        match self.durability_handle() {
            Some(d) => {
                if on {
                    d.enter_read_only("forced", "operator/test hook");
                } else {
                    d.clear_read_only();
                }
                true
            }
            None => false,
        }
    }

    /// Sets how many checkpoint directories the post-checkpoint GC keeps,
    /// newest first (default 2: the live checkpoint plus one predecessor
    /// for forensics). Clamped to ≥ 1 — the newest checkpoint is the one
    /// `CURRENT` names, so it is never collected and the pointer cannot
    /// dangle. Returns `false` on a non-durable database.
    pub fn retain_checkpoints(&self, k: usize) -> bool {
        match self.durability_handle() {
            Some(d) => {
                d.retain.store(k.max(1), Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// What recovery found when this database was opened, or `None` for
    /// an in-memory database.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.durability_handle().map(|d| d.report.clone())
    }

    /// Whether this database persists mutations through a WAL.
    pub fn is_durable(&self) -> bool {
        self.durability_handle().is_some()
    }
}
