//! The write-ahead log: length-prefixed, CRC32-checksummed records.
//!
//! Every mutation of a durable [`Database`](crate::Database) is appended
//! here *before* it is applied in memory, so an acknowledged write is on
//! disk even if the process dies before the next checkpoint. The format
//! is deliberately dumb:
//!
//! ```text
//! record  := len:u32-LE  crc:u32-LE  payload[len]
//! payload := one JSON object, e.g.
//!            {"seq":3,"op":"insert","coll":"responses","doc":{...}}
//! ```
//!
//! `crc` is CRC32 (IEEE) over the payload bytes. `seq` is the checkpoint
//! sequence number that was current when the record was appended; replay
//! skips records whose `seq` is older than the loaded checkpoint's (they
//! are already folded into it — this closes the crash window between the
//! checkpoint's atomic commit and the WAL truncation that follows it).
//!
//! **Torn tails are normal.** A crash mid-append leaves a partial record
//! at the end of the file. [`replay`] stops at the first record that does
//! not frame or checksum, reports what it dropped, and the opener
//! truncates the log back to the last valid boundary — recovery never
//! fails because of a torn tail.

use crate::io::StoreIo;
use serde_json::Value;
use std::path::Path;

/// File name of the write-ahead log inside a durable database directory.
pub const WAL_FILE: &str = "wal.log";

const HEADER_LEN: usize = 8;
/// Upper bound on a single record; larger length prefixes are treated as
/// corruption (protects replay from allocating on garbage).
const MAX_RECORD_LEN: u32 = 256 << 20;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Frames `payload` as one WAL record.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One decoded WAL record.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Checkpoint sequence number stamped at append time.
    pub seq: u64,
    /// The operation payload (still contains `seq`/`op`/... fields).
    pub op: Value,
    /// Byte offset of the *end* of this record in the log.
    pub end_offset: u64,
}

/// What recovery found while opening a durable database.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint the database was restored from
    /// (0 when no checkpoint existed yet).
    pub checkpoint_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: usize,
    /// WAL records skipped because their sequence number shows they were
    /// already folded into the loaded checkpoint (crash between checkpoint
    /// commit and WAL truncation).
    pub stale_records: usize,
    /// Records dropped from a torn/corrupt tail (a crash tears at most the
    /// one in-flight record, so this is normally 0 or 1).
    pub dropped_records: usize,
    /// Bytes discarded with the torn tail.
    pub dropped_bytes: u64,
    /// Whether the WAL was rewritten during recovery (tail truncated
    /// and/or stale records compacted away).
    pub wal_rewritten: bool,
    /// Whether the state came from legacy plain `*.jsonl` files in the
    /// directory root (a pre-durability snapshot) instead of a checkpoint.
    pub legacy_import: bool,
}

impl RecoveryReport {
    /// Whether recovery found any damage (torn tail) at all.
    pub fn clean(&self) -> bool {
        self.dropped_records == 0 && self.dropped_bytes == 0
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint seq {}, {} replayed, {} stale, {} dropped ({} bytes){}{}",
            self.checkpoint_seq,
            self.replayed_records,
            self.stale_records,
            self.dropped_records,
            self.dropped_bytes,
            if self.wal_rewritten { ", wal rewritten" } else { "" },
            if self.legacy_import { ", legacy import" } else { "" },
        )
    }
}

/// Result of scanning a WAL byte buffer.
#[derive(Debug)]
pub struct WalScan {
    /// Records that framed and checksummed correctly, in append order.
    pub records: Vec<WalRecord>,
    /// Offset of the last valid record boundary; bytes beyond this are a
    /// torn or corrupt tail.
    pub valid_len: u64,
    /// Bytes beyond `valid_len`.
    pub torn_bytes: u64,
}

/// Decodes every valid record from raw WAL bytes, stopping at the first
/// record that fails to frame, checksum, or parse. This is the
/// tolerate-the-torn-tail primitive: it cannot fail, it can only stop
/// early and say where.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < HEADER_LEN {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        if rest.len() < HEADER_LEN + len {
            break;
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != crc {
            break;
        }
        let op: Value = match std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(s).ok())
        {
            Some(v) if v.is_object() => v,
            _ => break,
        };
        let seq = op.get("seq").and_then(Value::as_u64).unwrap_or(0);
        offset += HEADER_LEN + len;
        records.push(WalRecord { seq, op, end_offset: offset as u64 });
    }
    WalScan { records, valid_len: offset as u64, torn_bytes: (bytes.len() - offset) as u64 }
}

/// Reads and scans the WAL at `dir/wal.log`; a missing file is an empty
/// log.
///
/// # Errors
///
/// Propagates I/O errors other than the file being absent (torn content
/// is not an error — see [`scan`]).
pub fn read(io: &dyn StoreIo, dir: &Path) -> std::io::Result<WalScan> {
    let path = dir.join(WAL_FILE);
    if !io.exists(&path) {
        return Ok(WalScan { records: Vec::new(), valid_len: 0, torn_bytes: 0 });
    }
    Ok(scan(&io.read(&path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn crc_known_vectors() {
        // IEEE CRC32 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = serde_json::to_string(&json!({"seq": 1, "op": "insert"})).unwrap();
        let mut bytes = encode_frame(payload.as_bytes());
        bytes.extend_from_slice(&encode_frame(
            serde_json::to_string(&json!({"seq": 1, "op": "drop"})).unwrap().as_bytes(),
        ));
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 2);
        assert_eq!(scanned.torn_bytes, 0);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.records[0].op["op"], json!("insert"));
        assert_eq!(scanned.records[1].op["op"], json!("drop"));
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let good = encode_frame(
            serde_json::to_string(&json!({"seq": 0, "op": "insert", "coll": "c", "doc": {}}))
                .unwrap()
                .as_bytes(),
        );
        let mut bytes = good.clone();
        let torn = encode_frame(b"{\"seq\":0,\"op\":\"insert\"}");
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.valid_len, good.len() as u64);
        assert_eq!(scanned.torn_bytes, (torn.len() / 2) as u64);
    }

    #[test]
    fn corrupt_crc_stops_scan() {
        let mut bytes = encode_frame(b"{\"seq\":0}");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload bit
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 0);
        assert_eq!(scanned.valid_len, 0);
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 0);
        assert_eq!(scanned.torn_bytes, bytes.len() as u64);
    }

    #[test]
    fn non_object_payload_is_corruption() {
        let bytes = encode_frame(b"42");
        let scanned = scan(&bytes);
        assert_eq!(scanned.records.len(), 0);
    }
}
