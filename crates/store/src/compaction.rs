//! Background checkpoint compaction: a throttled thread that runs the
//! crash-safe [`Database::checkpoint`] path *off* the write path whenever
//! WAL pressure crosses a threshold — so a long campaign can't be killed
//! by its own unbounded WAL growth — and that doubles as the escape hatch
//! from read-only mode: when a WAL append fails (ENOSPC, EIO, …) the
//! database rejects mutations until a checkpoint folds memory into a
//! durable snapshot and truncates the log, and the compactor is the thing
//! that runs that checkpoint without anyone asking.
//!
//! The thread polls [`Database::durability_status`] every
//! `poll_interval`; between polls it sleeps on a condvar so
//! [`CompactorHandle::nudge`] (wired to e.g. an operator endpoint or a
//! failed-write handler) can wake it immediately. Compactions are
//! throttled by `min_interval` — except when the database is read-only,
//! where waiting only prolongs the outage.

use crate::database::{Database, PersistError};
use crate::durable::CheckpointStats;
use kscope_telemetry::EventLevel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default WAL-bytes trigger (the `--compact-wal-bytes` default): 64 MiB.
pub const DEFAULT_COMPACT_WAL_BYTES: u64 = 64 * 1024 * 1024;

/// Default WAL-records trigger.
pub const DEFAULT_COMPACT_WAL_RECORDS: u64 = 100_000;

/// Millisecond buckets for `store.compaction_duration_ms`.
const COMPACTION_BUCKETS_MS: &[u64] =
    &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000];

/// Observer invoked after every successful compaction (test harness
/// beacons, operator logs).
pub type CompactObserver = Arc<dyn Fn(&CheckpointStats) + Send + Sync>;

/// When the background compactor triggers and how hard it is throttled.
#[derive(Clone)]
pub struct CompactionConfig {
    /// Checkpoint once the WAL holds at least this many bytes.
    pub wal_bytes_threshold: u64,
    /// Checkpoint once the WAL holds at least this many records.
    pub wal_records_threshold: u64,
    /// How often the thread re-examines WAL pressure.
    pub poll_interval: Duration,
    /// Minimum spacing between two compactions (ignored while the
    /// database is read-only — then a checkpoint is the cure, not load).
    pub min_interval: Duration,
    /// Observer invoked after every successful compaction.
    pub on_compact: Option<CompactObserver>,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            wal_bytes_threshold: DEFAULT_COMPACT_WAL_BYTES,
            wal_records_threshold: DEFAULT_COMPACT_WAL_RECORDS,
            poll_interval: Duration::from_millis(250),
            min_interval: Duration::from_secs(5),
            on_compact: None,
        }
    }
}

impl std::fmt::Debug for CompactionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactionConfig")
            .field("wal_bytes_threshold", &self.wal_bytes_threshold)
            .field("wal_records_threshold", &self.wal_records_threshold)
            .field("poll_interval", &self.poll_interval)
            .field("min_interval", &self.min_interval)
            .field("on_compact", &self.on_compact.as_ref().map(|_| "Fn"))
            .finish()
    }
}

#[derive(Debug, Default)]
struct Signal {
    stop: AtomicBool,
    nudged: Mutex<bool>,
    cv: Condvar,
}

/// Owner handle for a running compactor thread; stops and joins it on
/// [`CompactorHandle::stop`] or drop.
#[derive(Debug)]
pub struct CompactorHandle {
    signal: Arc<Signal>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Wakes the compactor now instead of at the next poll tick — e.g.
    /// right after a write was rejected with [`PersistError::ReadOnly`].
    pub fn nudge(&self) {
        *self.signal.nudged.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.signal.cv.notify_all();
    }

    /// Stops the thread and joins it (idempotent).
    pub fn stop(&mut self) {
        self.signal.stop.store(true, Ordering::SeqCst);
        self.signal.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns the background compaction thread for `db`.
///
/// # Errors
///
/// [`PersistError::NotDurable`] when `db` has no WAL to compact.
pub fn spawn_compactor(
    db: &Database,
    config: CompactionConfig,
) -> Result<CompactorHandle, PersistError> {
    if !db.is_durable() {
        return Err(PersistError::NotDurable);
    }
    let signal = Arc::new(Signal::default());
    let thread_signal = Arc::clone(&signal);
    let db = db.clone();
    let thread = std::thread::Builder::new()
        .name("kscope-compactor".into())
        .spawn(move || run(&db, &config, &thread_signal))
        .expect("spawn compactor thread");
    Ok(CompactorHandle { signal, thread: Some(thread) })
}

fn run(db: &Database, config: &CompactionConfig, signal: &Signal) {
    let metrics = db.telemetry().map(|r| {
        (
            r.counter("store.compactions_total"),
            r.histogram_with_buckets("store.compaction_duration_ms", &[], COMPACTION_BUCKETS_MS),
        )
    });
    let mut last_run: Option<Instant> = None;
    loop {
        // Sleep until the poll tick, a nudge, or stop.
        {
            let guard = signal.nudged.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !*guard && !signal.stop.load(Ordering::SeqCst) {
                let (mut guard, _) = signal
                    .cv
                    .wait_timeout(guard, config.poll_interval)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *guard = false;
            } else {
                let mut guard = guard;
                *guard = false;
            }
        }
        if signal.stop.load(Ordering::SeqCst) {
            return;
        }
        let Some(status) = db.durability_status() else { return };
        let due = status.read_only
            || status.wal_bytes >= config.wal_bytes_threshold
            || status.wal_records >= config.wal_records_threshold;
        if !due {
            continue;
        }
        // Throttle back-to-back compactions — unless the store is
        // read-only, where the checkpoint is what restores service.
        if !status.read_only {
            if let Some(t) = last_run {
                if t.elapsed() < config.min_interval {
                    continue;
                }
            }
        }
        let start = Instant::now();
        match db.checkpoint() {
            Ok(stats) => {
                if let Some((compactions, duration_ms)) = &metrics {
                    compactions.inc();
                    duration_ms.observe(start.elapsed().as_millis() as u64);
                }
                if let Some(r) = db.telemetry() {
                    r.event(
                        EventLevel::Info,
                        "store",
                        "background compaction checkpointed the WAL",
                        &[
                            ("seq", &stats.seq.to_string()),
                            ("wal_bytes_folded", &stats.wal_bytes_truncated.to_string()),
                            ("was_read_only", &status.read_only.to_string()),
                        ],
                    );
                }
                if let Some(hook) = &config.on_compact {
                    hook(&stats);
                }
            }
            Err(e) => {
                // Disk still full, most likely. Stay alive; the next
                // trigger retries — read-only mode keeps the store safe
                // in the meantime.
                if let Some(r) = db.telemetry() {
                    r.event(
                        EventLevel::Warn,
                        "store",
                        "background compaction failed; will retry",
                        &[("error", &e.to_string())],
                    );
                }
            }
        }
        last_run = Some(Instant::now());
    }
}
