//! A named set of collections with JSONL persistence.

use crate::collection::Collection;
use kscope_telemetry::Registry;
use parking_lot::RwLock;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// A database: named [`Collection`]s, thread-safe, optionally persisted to a
/// directory of JSONL files (one per collection).
///
/// The paper's deployment creates three collections — integrated webpages,
/// test information, and participant responses — which the core server
/// reads and writes concurrently.
#[derive(Debug, Clone, Default)]
pub struct Database {
    collections: Arc<RwLock<BTreeMap<String, Collection>>>,
    telemetry: Arc<OnceLock<Arc<Registry>>>,
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metric registry (builder style): existing collections
    /// and every collection created later get per-collection operation
    /// counters and an op-latency histogram (see
    /// [`Collection::attach_metrics`]). All clones of this database share
    /// the attachment; attaching twice keeps the first registry.
    pub fn with_telemetry(self, registry: &Arc<Registry>) -> Self {
        let _ = self.telemetry.set(Arc::clone(registry));
        if let Some(registry) = self.telemetry.get() {
            for (name, collection) in self.collections.read().iter() {
                collection.attach_metrics(registry, name);
            }
        }
        self
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.get()
    }

    /// Gets (creating if needed) a collection by name.
    pub fn collection(&self, name: &str) -> Collection {
        if let Some(c) = self.collections.read().get(name) {
            return c.clone();
        }
        let c = self.collections.write().entry(name.to_string()).or_default().clone();
        if let Some(registry) = self.telemetry.get() {
            c.attach_metrics(registry, name);
        }
        c
    }

    /// Names of existing collections (sorted).
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Drops a collection; returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Persists every collection as `<dir>/<name>.jsonl`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on any I/O failure.
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), PersistError> {
        std::fs::create_dir_all(dir).map_err(PersistError::io)?;
        for (name, coll) in self.collections.read().iter() {
            let path = dir.join(format!("{name}.jsonl"));
            let file = std::fs::File::create(&path).map_err(PersistError::io)?;
            let mut w = std::io::BufWriter::new(file);
            for doc in coll.all() {
                serde_json::to_writer(&mut w, &doc).map_err(PersistError::json)?;
                w.write_all(b"\n").map_err(PersistError::io)?;
            }
            w.flush().map_err(PersistError::io)?;
        }
        Ok(())
    }

    /// Loads a database from a directory written by [`Database::save_to_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on I/O failures or malformed JSON lines.
    pub fn load_from_dir(dir: &Path) -> Result<Self, PersistError> {
        let db = Database::new();
        let entries = std::fs::read_dir(dir).map_err(PersistError::io)?;
        for entry in entries {
            let entry = entry.map_err(PersistError::io)?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
                continue;
            }
            let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("unnamed").to_string();
            let file = std::fs::File::open(&path).map_err(PersistError::io)?;
            let reader = std::io::BufReader::new(file);
            let mut docs = Vec::new();
            for line in reader.lines() {
                let line = line.map_err(PersistError::io)?;
                if line.trim().is_empty() {
                    continue;
                }
                docs.push(serde_json::from_str::<Value>(&line).map_err(PersistError::json)?);
            }
            db.collection(&name).replace_all(docs);
        }
        Ok(db)
    }
}

/// Error saving or loading a database.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A stored line was not valid JSON.
    Json(serde_json::Error),
}

impl PersistError {
    fn io(e: std::io::Error) -> Self {
        Self::Io(e)
    }

    fn json(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "database persistence I/O error: {e}"),
            PersistError::Json(e) => write!(f, "database persistence JSON error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kscope-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn collection_identity() {
        let db = Database::new();
        let a = db.collection("tests");
        a.insert_one(json!({"x": 1}));
        // Fetching again returns the same storage.
        assert_eq!(db.collection("tests").len(), 1);
        assert_eq!(db.collection_names(), vec!["tests".to_string()]);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.collection("gone").insert_one(json!({}));
        assert!(db.drop_collection("gone"));
        assert!(!db.drop_collection("gone"));
        assert_eq!(db.collection("gone").len(), 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tempdir("roundtrip");
        let db = Database::new();
        db.collection("tests").insert_one(json!({"test_id": "t1", "n": 3}));
        db.collection("responses").insert_many(vec![
            json!({"worker": "w1", "answer": "Left"}),
            json!({"worker": "w2", "answer": "Same"}),
        ]);
        db.save_to_dir(&dir).unwrap();

        let loaded = Database::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.collection("tests").len(), 1);
        assert_eq!(loaded.collection("responses").len(), 2);
        let doc = loaded.collection("responses").find_one(&json!({"worker": "w2"})).unwrap();
        assert_eq!(doc["answer"], json!("Same"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_continues_id_sequence() {
        let dir = tempdir("ids");
        let db = Database::new();
        let first = db.collection("c").insert_one(json!({}));
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::load_from_dir(&dir).unwrap();
        let second = loaded.collection("c").insert_one(json!({}));
        assert_ne!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_bad_json() {
        let dir = tempdir("bad");
        std::fs::write(dir.join("broken.jsonl"), "{not json}\n").unwrap();
        let err = Database::load_from_dir(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Json(_)));
        assert!(err.to_string().contains("JSON"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_io_error() {
        let err = Database::load_from_dir(Path::new("/nonexistent/kscope-db")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn telemetry_covers_existing_and_future_collections() {
        let registry = Arc::new(Registry::new());
        let db = Database::new();
        db.collection("before").insert_one(json!({"n": 1}));
        let db = db.with_telemetry(&registry);

        // The pre-existing collection was instrumented retroactively…
        db.collection("before").insert_one(json!({"n": 2}));
        // …and collections created after attachment are instrumented too,
        // including through clones of the database handle.
        let clone = db.clone();
        clone.collection("after").insert_one(json!({"n": 3}));
        clone.collection("after").find(&json!({"n": 3}));

        let inserts =
            |coll: &str| registry.counter_value("store.inserts_total", &[("collection", coll)]);
        assert_eq!(inserts("before"), Some(1));
        assert_eq!(inserts("after"), Some(1));
        assert_eq!(
            registry.counter_value("store.finds_total", &[("collection", "after")]),
            Some(1)
        );
    }

    #[test]
    fn non_jsonl_files_ignored() {
        let dir = tempdir("ignore");
        std::fs::write(dir.join("README.txt"), "hello").unwrap();
        let db = Database::load_from_dir(&dir).unwrap();
        assert!(db.collection_names().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
