//! A named set of collections with JSONL persistence.

use crate::collection::Collection;
use crate::durable::Durability;
use crate::io::{escape_component, unescape_component};
use kscope_telemetry::Registry;
use parking_lot::RwLock;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// A database: named [`Collection`]s, thread-safe, optionally persisted to a
/// directory of JSONL files (one per collection).
///
/// The paper's deployment creates three collections — integrated webpages,
/// test information, and participant responses — which the core server
/// reads and writes concurrently.
#[derive(Debug, Clone, Default)]
pub struct Database {
    collections: Arc<RwLock<BTreeMap<String, Collection>>>,
    telemetry: Arc<OnceLock<Arc<Registry>>>,
    durability: Arc<OnceLock<Arc<Durability>>>,
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metric registry (builder style): existing collections
    /// and every collection created later get per-collection operation
    /// counters and an op-latency histogram (see
    /// [`Collection::attach_metrics`]). All clones of this database share
    /// the attachment; attaching twice keeps the first registry.
    pub fn with_telemetry(self, registry: &Arc<Registry>) -> Self {
        let _ = self.telemetry.set(Arc::clone(registry));
        if let Some(registry) = self.telemetry.get() {
            for (name, collection) in self.collections.read().iter() {
                collection.attach_metrics(registry, name);
            }
            if let Some(durability) = self.durability.get() {
                durability.attach_metrics(registry);
            }
        }
        self
    }

    /// The attached registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.get()
    }

    /// Gets (creating if needed) a collection by name.
    pub fn collection(&self, name: &str) -> Collection {
        if let Some(c) = self.collections.read().get(name) {
            return c.clone();
        }
        let c = self.collections.write().entry(name.to_string()).or_default().clone();
        if let Some(registry) = self.telemetry.get() {
            c.attach_metrics(registry, name);
        }
        if let Some(durability) = self.durability.get() {
            c.attach_durability(durability, name);
        }
        c
    }

    /// Arms durability on this database: existing collections and every
    /// collection created later log their mutations through `durability`.
    pub(crate) fn attach_durability(&self, durability: &Arc<Durability>) {
        let _ = self.durability.set(Arc::clone(durability));
        if let Some(durability) = self.durability.get() {
            for (name, collection) in self.collections.read().iter() {
                collection.attach_durability(durability, name);
            }
            if let Some(registry) = self.telemetry.get() {
                durability.attach_metrics(registry);
            }
        }
    }

    /// The attached durability engine, if this database was opened with
    /// [`Database::open_durable`].
    pub(crate) fn durability_handle(&self) -> Option<Arc<Durability>> {
        self.durability.get().cloned()
    }

    /// Snapshot of `(name, collection)` pairs (used by checkpointing).
    pub(crate) fn collections_snapshot(&self) -> Vec<(String, Collection)> {
        self.collections.read().iter().map(|(n, c)| (n.clone(), c.clone())).collect()
    }

    /// Names of existing collections (sorted).
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Drops a collection; returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        if let Some(durability) = self.durability.get() {
            let op = json!({"op": "drop", "coll": name.to_string()});
            durability.commit(op, || self.collections.write().remove(name).is_some())
        } else {
            self.collections.write().remove(name).is_some()
        }
    }

    /// Persists every collection as `<dir>/<name>.jsonl` (names
    /// percent-escaped so they cannot traverse out of `dir`).
    ///
    /// This is the legacy full-snapshot path: files are truncated in
    /// place, so a crash mid-save can destroy the previous snapshot.
    /// Prefer [`Database::open_durable`] + [`Database::checkpoint`] for
    /// crash-safe persistence.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on any I/O failure.
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), PersistError> {
        std::fs::create_dir_all(dir).map_err(PersistError::io)?;
        for (name, coll) in self.collections.read().iter() {
            let path = dir.join(format!("{}.jsonl", escape_component(name)));
            let file = std::fs::File::create(&path).map_err(PersistError::io)?;
            let mut w = std::io::BufWriter::new(file);
            for doc in coll.all() {
                serde_json::to_writer(&mut w, &doc).map_err(PersistError::json)?;
                w.write_all(b"\n").map_err(PersistError::io)?;
            }
            w.flush().map_err(PersistError::io)?;
        }
        Ok(())
    }

    /// Loads a database from a directory written by [`Database::save_to_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on I/O failures, malformed JSON lines, or
    /// a file whose stem is not valid UTF-8 ([`PersistError::InvalidName`]
    /// — mapping such files to a placeholder would silently merge distinct
    /// files into one collection).
    pub fn load_from_dir(dir: &Path) -> Result<Self, PersistError> {
        let db = Database::new();
        let entries = std::fs::read_dir(dir).map_err(PersistError::io)?;
        for entry in entries {
            let entry = entry.map_err(PersistError::io)?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
                continue;
            }
            let stem = path.file_stem().and_then(|s| s.to_str()).ok_or_else(|| {
                PersistError::InvalidName(path.file_name().map_or_else(
                    || path.display().to_string(),
                    |n| n.to_string_lossy().into_owned(),
                ))
            })?;
            let name = unescape_component(stem);
            let file = std::fs::File::open(&path).map_err(PersistError::io)?;
            let reader = std::io::BufReader::new(file);
            let mut docs = Vec::new();
            for line in reader.lines() {
                let line = line.map_err(PersistError::io)?;
                if line.trim().is_empty() {
                    continue;
                }
                docs.push(serde_json::from_str::<Value>(&line).map_err(PersistError::json)?);
            }
            db.collection(&name).replace_all(docs);
        }
        Ok(db)
    }
}

/// Error saving or loading a database.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A stored line was not valid JSON.
    Json(serde_json::Error),
    /// On-disk state is damaged in a way recovery cannot repair (e.g. a
    /// checkpoint named by `CURRENT` is missing, or a WAL record carries
    /// an unknown operation). Note a torn WAL *tail* is not corruption —
    /// recovery truncates it and reports it instead.
    Corrupt(String),
    /// A stored file name could not be mapped back to a collection name
    /// (non-UTF-8 stem). Loading it under a placeholder would silently
    /// merge distinct files into one collection.
    InvalidName(String),
    /// A durability-only operation (e.g. [`Database::checkpoint`]) was
    /// called on a database not opened with [`Database::open_durable`].
    NotDurable,
    /// The database is in read-only mode: a WAL append or fsync failed
    /// (ENOSPC, EIO, …), so durability can no longer be promised and
    /// mutations are rejected instead of being acknowledged non-durably.
    /// A successful checkpoint (usually driven by the background
    /// compactor) folds the in-memory state into a durable snapshot,
    /// truncates the WAL, and clears the mode.
    ReadOnly,
}

impl PersistError {
    fn io(e: std::io::Error) -> Self {
        Self::Io(e)
    }

    fn json(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "database persistence I/O error: {e}"),
            PersistError::Json(e) => write!(f, "database persistence JSON error: {e}"),
            PersistError::Corrupt(what) => write!(f, "database state corrupt: {what}"),
            PersistError::InvalidName(name) => {
                write!(f, "stored file name {name:?} is not a valid collection name")
            }
            PersistError::NotDurable => {
                write!(f, "operation requires a database opened with open_durable")
            }
            PersistError::ReadOnly => {
                write!(
                    f,
                    "database is read-only (WAL write failed; awaiting a checkpoint to free space)"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kscope-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn collection_identity() {
        let db = Database::new();
        let a = db.collection("tests");
        a.insert_one(json!({"x": 1}));
        // Fetching again returns the same storage.
        assert_eq!(db.collection("tests").len(), 1);
        assert_eq!(db.collection_names(), vec!["tests".to_string()]);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.collection("gone").insert_one(json!({}));
        assert!(db.drop_collection("gone"));
        assert!(!db.drop_collection("gone"));
        assert_eq!(db.collection("gone").len(), 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tempdir("roundtrip");
        let db = Database::new();
        db.collection("tests").insert_one(json!({"test_id": "t1", "n": 3}));
        db.collection("responses").insert_many(vec![
            json!({"worker": "w1", "answer": "Left"}),
            json!({"worker": "w2", "answer": "Same"}),
        ]);
        db.save_to_dir(&dir).unwrap();

        let loaded = Database::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.collection("tests").len(), 1);
        assert_eq!(loaded.collection("responses").len(), 2);
        let doc = loaded.collection("responses").find_one(&json!({"worker": "w2"})).unwrap();
        assert_eq!(doc["answer"], json!("Same"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_continues_id_sequence() {
        let dir = tempdir("ids");
        let db = Database::new();
        let first = db.collection("c").insert_one(json!({}));
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::load_from_dir(&dir).unwrap();
        let second = loaded.collection("c").insert_one(json!({}));
        assert_ne!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_bad_json() {
        let dir = tempdir("bad");
        std::fs::write(dir.join("broken.jsonl"), "{not json}\n").unwrap();
        let err = Database::load_from_dir(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Json(_)));
        assert!(err.to_string().contains("JSON"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_io_error() {
        let err = Database::load_from_dir(Path::new("/nonexistent/kscope-db")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn telemetry_covers_existing_and_future_collections() {
        let registry = Arc::new(Registry::new());
        let db = Database::new();
        db.collection("before").insert_one(json!({"n": 1}));
        let db = db.with_telemetry(&registry);

        // The pre-existing collection was instrumented retroactively…
        db.collection("before").insert_one(json!({"n": 2}));
        // …and collections created after attachment are instrumented too,
        // including through clones of the database handle.
        let clone = db.clone();
        clone.collection("after").insert_one(json!({"n": 3}));
        clone.collection("after").find(&json!({"n": 3}));

        let inserts =
            |coll: &str| registry.counter_value("store.inserts_total", &[("collection", coll)]);
        assert_eq!(inserts("before"), Some(1));
        assert_eq!(inserts("after"), Some(1));
        assert_eq!(
            registry.counter_value("store.finds_total", &[("collection", "after")]),
            Some(1)
        );
    }

    #[test]
    fn non_jsonl_files_ignored() {
        let dir = tempdir("ignore");
        std::fs::write(dir.join("README.txt"), "hello").unwrap();
        let db = Database::load_from_dir(&dir).unwrap();
        assert!(db.collection_names().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
