//! The pluggable storage I/O layer.
//!
//! Every durable-path filesystem operation in this crate goes through the
//! [`StoreIo`] trait: [`RealIo`] is the production implementation (plain
//! `std::fs` plus explicit fsync points), and — behind the `failpoints`
//! feature — [`fault::FaultIo`] deterministically injects failures (error
//! at the Nth operation, torn write, short write, simulated crash before
//! or after a rename) so crash consistency is *tested*, not assumed.
//!
//! The trait is path-based rather than handle-based on purpose: it keeps
//! implementations trivially stateless, makes failpoint accounting exact
//! (one trait call = one countable operation), and matches the access
//! pattern of a write-ahead log (append a frame, sync, done).

use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Filesystem operations used by the durable store.
///
/// All write-like operations are expected to be durable when they return:
/// [`StoreIo::append`] and [`StoreIo::write`] sync file contents,
/// [`StoreIo::sync_dir`] persists directory entries (needed after renames
/// and file creation for crash safety on POSIX systems).
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;

    /// Appends `data` to `path` (creating it if absent) and syncs the file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error. On error the file may contain
    /// a prefix of `data` (a torn write) — callers must tolerate that.
    fn append(&self, path: &Path, data: &[u8]) -> std::io::Result<()>;

    /// Appends `data` to `path` (creating it if absent) **without**
    /// forcing it to disk — the group-commit fast path; a later
    /// [`StoreIo::sync_file`] makes every appended byte durable. The
    /// default delegates to [`StoreIo::append`] (durable immediately), so
    /// implementations that don't split append from sync stay correct.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; the file may hold a prefix of
    /// `data` on error.
    fn append_nosync(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        self.append(path, data)
    }

    /// Forces previously appended data of `path` to disk. The default is
    /// a no-op, pairing with the default [`StoreIo::append_nosync`] which
    /// already synced.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        let _ = path;
        Ok(())
    }

    /// Creates/truncates `path` with `data` and syncs the file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn write(&self, path: &Path, data: &[u8]) -> std::io::Result<()>;

    /// Renames `from` to `to` (atomic on POSIX when same-filesystem).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Recursively creates a directory.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;

    /// Removes a file; missing files are not an error.
    ///
    /// # Errors
    ///
    /// Propagates unexpected I/O errors.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;

    /// Recursively removes a directory; missing directories are not an
    /// error.
    ///
    /// # Errors
    ///
    /// Propagates unexpected I/O errors.
    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()>;

    /// Fsyncs a directory so renames/creations inside it are durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn sync_dir(&self, path: &Path) -> std::io::Result<()>;

    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;

    /// Whether the path is a directory.
    fn is_dir(&self, path: &Path) -> bool;

    /// Entry names (not full paths) inside a directory, sorted.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>>;
}

/// The production [`StoreIo`]: `std::fs` with explicit durability points.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        fs::File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(data)?;
        file.sync_data()
    }

    fn append_nosync(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(data)
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        // A missing file has nothing to sync (the WAL may have just been
        // truncated away by a concurrent checkpoint).
        match fs::OpenOptions::new().write(true).open(path) {
            Ok(f) => f.sync_data(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(data)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        match fs::remove_dir_all(path) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    fn sync_dir(&self, path: &Path) -> std::io::Result<()> {
        // Directory fsync persists the entries (renames, creations)
        // themselves; on non-POSIX platforms opening a directory can fail,
        // which we treat as "nothing to do".
        match fs::File::open(path) {
            Ok(f) => f.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

/// Percent-escapes one path component so arbitrary collection names, test
/// ids, and file names can never escape their store directory or collide
/// with the store's own bookkeeping entries.
///
/// Escaped bytes: `%` (the escape itself), `/` and `\` (path separators),
/// ASCII control characters; the bare components `.` and `..` are escaped
/// wholesale, and the empty string encodes as `"%"` (which no other input
/// can produce, since literal `%` always escapes to `%25`).
pub fn escape_component(name: &str) -> String {
    if name.is_empty() {
        return "%".to_string();
    }
    if name == "." {
        return "%2E".to_string();
    }
    if name == ".." {
        return "%2E%2E".to_string();
    }
    // Build bytes, not chars: pushing an unescaped byte as a char would
    // Latin-1-ize UTF-8 continuation bytes ("é" → "Ã©"), which unescape's
    // byte-level decode cannot invert. Raw bytes round-trip exactly, and
    // the result stays valid UTF-8 because only ASCII bytes are rewritten.
    let mut out = Vec::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'%' | b'/' | b'\\' | 0x00..=0x1F | 0x7F => {
                out.push(b'%');
                out.extend_from_slice(format!("{b:02X}").as_bytes());
            }
            _ => out.push(b),
        }
    }
    String::from_utf8(out).expect("escaping rewrites only ASCII bytes")
}

/// Inverse of [`escape_component`]. Lenient: a `%` not followed by two hex
/// digits is kept literally, so legacy directories written before escaping
/// existed still load under their original names.
pub fn unescape_component(name: &str) -> String {
    if name == "%" {
        return String::new();
    }
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).and_then(|h| std::str::from_utf8(h).ok());
            if let Some(v) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Deterministic fault injection (enabled with the `failpoints` feature).
#[cfg(feature = "failpoints")]
pub mod fault {
    use super::StoreIo;
    use parking_lot::Mutex;
    use std::path::Path;
    use std::sync::Arc;

    /// Which [`StoreIo`] operation a [`Failpoint`] targets.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum OpKind {
        /// [`StoreIo::read`].
        Read,
        /// [`StoreIo::append`].
        Append,
        /// [`StoreIo::write`].
        Write,
        /// [`StoreIo::rename`].
        Rename,
        /// [`StoreIo::remove_file`] / [`StoreIo::remove_dir_all`].
        Remove,
        /// [`StoreIo::sync_dir`].
        SyncDir,
        /// [`StoreIo::sync_file`] (the group-commit fsync).
        SyncFile,
        /// Any operation (counted across all kinds).
        Any,
    }

    /// What happens when a failpoint fires.
    #[derive(Debug, Clone, Copy)]
    pub enum Fault {
        /// Return an injected error (e.g. ENOSPC) without touching disk.
        Err(&'static str),
        /// Write only the first `keep` bytes, then return an error — the
        /// classic torn write a crash mid-append produces.
        Torn {
            /// Bytes actually persisted before the failure.
            keep: usize,
        },
        /// Write only the first `keep` bytes but report success — a
        /// silently short write (buggy filesystem / lost ack).
        Short {
            /// Bytes actually persisted.
            keep: usize,
        },
        /// Simulate a crash *before* the operation takes effect: nothing
        /// is persisted and every subsequent operation fails.
        CrashBefore,
        /// Simulate a crash *after* the operation takes effect: the
        /// operation persists, then every subsequent operation fails.
        CrashAfter,
    }

    /// One armed failpoint: fire `fault` on the `nth` (0-based) operation
    /// of `kind`.
    #[derive(Debug, Clone, Copy)]
    pub struct Failpoint {
        /// Operation selector.
        pub kind: OpKind,
        /// 0-based occurrence index among operations of `kind`.
        pub nth: u64,
        /// Injected behaviour.
        pub fault: Fault,
    }

    #[derive(Debug, Default)]
    struct FaultState {
        counts: std::collections::BTreeMap<&'static str, u64>,
        total: u64,
        plan: Vec<Failpoint>,
        crashed: bool,
    }

    /// A [`StoreIo`] wrapper that injects deterministic faults.
    ///
    /// Operations are counted per kind and in total; when an armed
    /// [`Failpoint`] matches the current count, its [`Fault`] fires. After
    /// a crash fault, every subsequent operation fails with a "crashed"
    /// error — the test then reopens the directory with a fresh I/O layer
    /// to model a process restart.
    #[derive(Debug, Clone)]
    pub struct FaultIo {
        inner: Arc<dyn StoreIo>,
        state: Arc<Mutex<FaultState>>,
    }

    impl FaultIo {
        /// Wraps `inner` with an empty fault plan.
        pub fn new(inner: Arc<dyn StoreIo>) -> Self {
            Self { inner, state: Arc::new(Mutex::new(FaultState::default())) }
        }

        /// Arms a failpoint (builder style).
        #[must_use]
        pub fn with(self, fp: Failpoint) -> Self {
            self.state.lock().plan.push(fp);
            self
        }

        /// Total operations performed so far (including failed ones).
        pub fn ops_total(&self) -> u64 {
            self.state.lock().total
        }

        /// Whether a crash fault has fired.
        pub fn crashed(&self) -> bool {
            self.state.lock().crashed
        }

        fn injected(msg: &str) -> std::io::Error {
            std::io::Error::other(format!("injected fault: {msg}"))
        }

        /// Counts one operation and decides its fate. Returns `Some(fault)`
        /// when a failpoint fires, or an error when already crashed.
        fn check(&self, kind: OpKind, label: &'static str) -> std::io::Result<Option<Fault>> {
            let mut st = self.state.lock();
            if st.crashed {
                return Err(Self::injected("process crashed"));
            }
            let n = *st.counts.get(label).unwrap_or(&0);
            let total = st.total;
            *st.counts.entry(label).or_insert(0) += 1;
            st.total += 1;
            let hit = st
                .plan
                .iter()
                .find(|fp| {
                    (fp.kind == kind && fp.nth == n) || (fp.kind == OpKind::Any && fp.nth == total)
                })
                .copied();
            if let Some(fp) = hit {
                if matches!(fp.fault, Fault::CrashBefore | Fault::CrashAfter) {
                    st.crashed = true;
                }
                return Ok(Some(fp.fault));
            }
            Ok(None)
        }
    }

    impl StoreIo for FaultIo {
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            match self.check(OpKind::Read, "read")? {
                None => self.inner.read(path),
                Some(Fault::CrashAfter) => {
                    let out = self.inner.read(path);
                    out.and(Err(Self::injected("crash after read")))
                }
                Some(_) => Err(Self::injected("read failed")),
            }
        }

        fn append(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
            match self.check(OpKind::Append, "append")? {
                None => self.inner.append(path, data),
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(Fault::Torn { keep }) => {
                    let keep = keep.min(data.len());
                    let _ = self.inner.append(path, &data[..keep]);
                    Err(Self::injected("torn append"))
                }
                Some(Fault::Short { keep }) => {
                    let keep = keep.min(data.len());
                    self.inner.append(path, &data[..keep])
                }
                Some(Fault::CrashBefore) => Err(Self::injected("crash before append")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.append(path, data);
                    Err(Self::injected("crash after append"))
                }
            }
        }

        fn append_nosync(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
            // Counted under the same label/kind as `append` so an armed
            // Append failpoint fires whether or not group commit is on.
            match self.check(OpKind::Append, "append")? {
                None => self.inner.append_nosync(path, data),
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(Fault::Torn { keep }) => {
                    let keep = keep.min(data.len());
                    let _ = self.inner.append_nosync(path, &data[..keep]);
                    Err(Self::injected("torn append"))
                }
                Some(Fault::Short { keep }) => {
                    let keep = keep.min(data.len());
                    self.inner.append_nosync(path, &data[..keep])
                }
                Some(Fault::CrashBefore) => Err(Self::injected("crash before append")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.append_nosync(path, data);
                    Err(Self::injected("crash after append"))
                }
            }
        }

        fn sync_file(&self, path: &Path) -> std::io::Result<()> {
            match self.check(OpKind::SyncFile, "sync_file")? {
                None => self.inner.sync_file(path),
                Some(Fault::CrashBefore) => Err(Self::injected("crash before sync_file")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.sync_file(path);
                    Err(Self::injected("crash after sync_file"))
                }
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(_) => Err(Self::injected("sync_file failed")),
            }
        }

        fn write(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
            match self.check(OpKind::Write, "write")? {
                None => self.inner.write(path, data),
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(Fault::Torn { keep }) => {
                    let keep = keep.min(data.len());
                    let _ = self.inner.write(path, &data[..keep]);
                    Err(Self::injected("torn write"))
                }
                Some(Fault::Short { keep }) => {
                    let keep = keep.min(data.len());
                    self.inner.write(path, &data[..keep])
                }
                Some(Fault::CrashBefore) => Err(Self::injected("crash before write")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.write(path, data);
                    Err(Self::injected("crash after write"))
                }
            }
        }

        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            match self.check(OpKind::Rename, "rename")? {
                None => self.inner.rename(from, to),
                Some(Fault::CrashBefore) => Err(Self::injected("crash before rename")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.rename(from, to);
                    Err(Self::injected("crash after rename"))
                }
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(_) => Err(Self::injected("rename failed")),
            }
        }

        fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
            // Directory creation is not an interesting fault target on its
            // own but still counts toward `Any` and dies after a crash.
            match self.check(OpKind::Any, "create_dir")? {
                None | Some(Fault::CrashAfter) => {
                    let out = self.inner.create_dir_all(path);
                    if self.crashed() {
                        out.and(Err(Self::injected("crash after create_dir")))
                    } else {
                        out
                    }
                }
                Some(Fault::CrashBefore) => Err(Self::injected("crash before create_dir")),
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(_) => Err(Self::injected("create_dir failed")),
            }
        }

        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            match self.check(OpKind::Remove, "remove_file")? {
                None => self.inner.remove_file(path),
                Some(Fault::CrashBefore) => Err(Self::injected("crash before remove")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.remove_file(path);
                    Err(Self::injected("crash after remove"))
                }
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(_) => Err(Self::injected("remove failed")),
            }
        }

        fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
            match self.check(OpKind::Remove, "remove_dir")? {
                None => self.inner.remove_dir_all(path),
                Some(Fault::CrashBefore) => Err(Self::injected("crash before remove")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.remove_dir_all(path);
                    Err(Self::injected("crash after remove"))
                }
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(_) => Err(Self::injected("remove failed")),
            }
        }

        fn sync_dir(&self, path: &Path) -> std::io::Result<()> {
            match self.check(OpKind::SyncDir, "sync_dir")? {
                None => self.inner.sync_dir(path),
                Some(Fault::CrashBefore) => Err(Self::injected("crash before sync")),
                Some(Fault::CrashAfter) => {
                    let _ = self.inner.sync_dir(path);
                    Err(Self::injected("crash after sync"))
                }
                Some(Fault::Err(msg)) => Err(Self::injected(msg)),
                Some(_) => Err(Self::injected("sync failed")),
            }
        }

        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }

        fn is_dir(&self, path: &Path) -> bool {
            self.inner.is_dir(path)
        }

        fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>> {
            if self.state.lock().crashed {
                return Err(Self::injected("process crashed"));
            }
            self.inner.read_dir_names(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        for name in [
            "plain.html",
            "a/b.html",
            "..",
            ".",
            "",
            "%2E",
            "has%percent",
            "back\\slash",
            "x\ny",
            "é",
            "naïve/page.html",
            "日本語",
        ] {
            let enc = escape_component(name);
            assert!(!enc.contains('/'), "{enc} must not contain a separator");
            assert!(!enc.contains('\\'), "{enc} must not contain a separator");
            assert_ne!(enc, "..");
            assert_ne!(enc, ".");
            assert!(!enc.is_empty());
            assert_eq!(unescape_component(&enc), name, "round-trip of {name:?}");
        }
    }

    #[test]
    fn escape_is_injective_on_tricky_pairs() {
        let pairs = [("..", "%2E%2E"), (".", "%2E"), ("", "%"), ("%2E", "%252E")];
        for (input, expected) in pairs {
            assert_eq!(escape_component(input), expected);
        }
    }

    #[test]
    fn unescape_is_lenient_on_legacy_names() {
        // Names written before escaping existed pass through unchanged.
        assert_eq!(unescape_component("plain-file.html"), "plain-file.html");
        assert_eq!(unescape_component("50%done"), "50%done");
    }

    #[test]
    fn real_io_basics() {
        let dir = std::env::temp_dir().join(format!("kscope-io-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = RealIo;
        io.create_dir_all(&dir).unwrap();
        let f = dir.join("a.bin");
        io.write(&f, b"hello").unwrap();
        io.append(&f, b" world").unwrap();
        assert_eq!(io.read(&f).unwrap(), b"hello world");
        assert!(io.exists(&f));
        assert!(io.is_dir(&dir));
        assert_eq!(io.read_dir_names(&dir).unwrap(), vec!["a.bin".to_string()]);
        let g = dir.join("b.bin");
        io.rename(&f, &g).unwrap();
        assert!(!io.exists(&f));
        io.sync_dir(&dir).unwrap();
        io.remove_file(&g).unwrap();
        io.remove_file(&g).unwrap(); // missing file is fine
        io.remove_dir_all(&dir).unwrap();
        io.remove_dir_all(&dir).unwrap(); // missing dir is fine
    }
}
