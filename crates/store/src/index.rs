//! Secondary indexes over collections.
//!
//! An index is declared per collection ([`Collection::ensure_index`]) on a
//! list of dotted field paths, e.g. `("test_id", "contributor_id",
//! "submission_id")` for the intake dedup key or `("test_id",
//! "deadline_ms")` for lease-expiry sweeps. Internally each document's key
//! columns are encoded as a [`KeyPart`] tuple with a *total* order — the
//! same numeric order the filter layer uses, exact for integers — and the
//! index maps each key tuple to the postings (insertion sequence numbers)
//! of the documents holding it.
//!
//! Indexes are maintained transactionally: every mutation updates postings
//! while still holding the shard write locks of the documents it touched,
//! under the same durability commit as the mutation itself. They are
//! *derived* state — checkpoints persist only the declarations
//! (`_indexes.json`), and recovery rebuilds contents deterministically
//! from the loaded documents plus WAL replay.
//!
//! A missing field is encoded as [`KeyPart::Null`], matching the filter
//! layer's `{field: null}` semantics; point lookups therefore find both
//! explicit-null and absent values. Lookups through the planner always
//! re-verify candidates against the full filter, so index order being
//! *wider* than filter comparability (which never matches across types)
//! costs a candidate check, never a wrong answer.
//!
//! [`Collection::ensure_index`]: crate::Collection::ensure_index

use crate::filter::{cmp_numbers_exact, lookup_path, NumRepr};
use serde_json::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Declaration of one secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within its collection.
    pub name: String,
    /// Dotted field paths forming the (composite) key, in order.
    pub keys: Vec<String>,
    /// Whether the key is intended to be unique. Uniqueness is enforced at
    /// admission time by [`Collection::insert_if_absent`]; the flag lets
    /// the planner prefer unique indexes for point lookups.
    ///
    /// [`Collection::insert_if_absent`]: crate::Collection::insert_if_absent
    pub unique: bool,
}

impl IndexDef {
    /// Serializes the declaration for checkpoints and WAL records.
    pub(crate) fn to_json(&self) -> Value {
        serde_json::json!({
            "name": self.name.clone(),
            "keys": self.keys.clone(),
            "unique": self.unique,
        })
    }

    /// Parses a declaration serialized by [`IndexDef::to_json`].
    pub(crate) fn from_json(v: &Value) -> Option<IndexDef> {
        let name = v.get("name")?.as_str()?.to_string();
        let keys = v
            .get("keys")?
            .as_array()?
            .iter()
            .map(|k| k.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        if keys.is_empty() {
            return None;
        }
        let unique = v.get("unique").and_then(Value::as_bool).unwrap_or(false);
        Some(IndexDef { name, keys, unique })
    }
}

/// One column of an encoded index key, with a total order across all JSON
/// scalar types: `Min < Null < Bool < Number < String < Other < Max`.
/// `Min`/`Max` never come from documents — they pad partial keys into
/// range bounds. Numbers compare *exactly* (integer vs integer as i128,
/// integer vs float without rounding through f64), so keys derived from
/// values above 2^53 order correctly.
#[derive(Debug, Clone)]
pub enum KeyPart {
    /// Below every document-derived part (range-bound padding).
    Min,
    /// JSON `null`, or the field was absent.
    Null,
    /// JSON booleans (`false < true`).
    Bool(bool),
    /// An exact integer (covers the full i64 and u64 ranges).
    Int(i128),
    /// A genuine float.
    Float(f64),
    /// A string.
    Str(String),
    /// A non-scalar (array/object), keyed by its canonical serialization.
    Other(String),
    /// Above every document-derived part (range-bound padding).
    Max,
}

impl KeyPart {
    /// Encodes one document field value (or its absence) as a key column.
    pub fn from_value(v: Option<&Value>) -> KeyPart {
        match v {
            None | Some(Value::Null) => KeyPart::Null,
            Some(Value::Bool(b)) => KeyPart::Bool(*b),
            Some(Value::Number(n)) => match NumRepr::of(n) {
                NumRepr::Int(i) => KeyPart::Int(i),
                NumRepr::Float(f) => KeyPart::Float(f),
            },
            Some(Value::String(s)) => KeyPart::Str(s.clone()),
            Some(other) => KeyPart::Other(serde_json::to_string(other).unwrap_or_default()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            KeyPart::Min => 0,
            KeyPart::Null => 1,
            KeyPart::Bool(_) => 2,
            KeyPart::Int(_) | KeyPart::Float(_) => 3,
            KeyPart::Str(_) => 4,
            KeyPart::Other(_) => 5,
            KeyPart::Max => 6,
        }
    }
}

impl PartialEq for KeyPart {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for KeyPart {}

impl PartialOrd for KeyPart {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyPart {
    fn cmp(&self, other: &Self) -> Ordering {
        use KeyPart::{Bool, Float, Int, Other, Str};
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_numbers_exact(NumRepr::Int(*a), NumRepr::Float(*b)),
            (Float(a), Int(b)) => cmp_numbers_exact(NumRepr::Float(*a), NumRepr::Int(*b)),
            (Str(a), Str(b)) => a.cmp(b),
            (Other(a), Other(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

/// A posting: where an indexed document lives — its insertion sequence
/// number (which is also the collection-wide ordering key) and the shard
/// holding it. Ordered by sequence, i.e. insertion order.
pub(crate) type Posting = (u64, usize);

/// One index: declaration plus the key → postings map.
#[derive(Debug)]
pub(crate) struct Index {
    pub(crate) def: IndexDef,
    map: BTreeMap<Vec<KeyPart>, BTreeSet<Posting>>,
}

impl Index {
    pub(crate) fn new(def: IndexDef) -> Self {
        Self { def, map: BTreeMap::new() }
    }

    /// Encodes `doc`'s key columns for this index.
    pub(crate) fn key_for(&self, doc: &Value) -> Vec<KeyPart> {
        self.def.keys.iter().map(|p| KeyPart::from_value(lookup_path(doc, p))).collect()
    }

    pub(crate) fn add(&mut self, doc: &Value, posting: Posting) {
        self.map.entry(self.key_for(doc)).or_default().insert(posting);
    }

    pub(crate) fn remove(&mut self, doc: &Value, posting: Posting) {
        let key = self.key_for(doc);
        if let Some(set) = self.map.get_mut(&key) {
            set.remove(&posting);
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Postings within `[lo, hi]`, in key order then insertion order.
    pub(crate) fn range(&self, lo: Bound<Vec<KeyPart>>, hi: Bound<Vec<KeyPart>>) -> Vec<Posting> {
        let mut out = Vec::new();
        for (_, set) in self.map.range((lo, hi)) {
            out.extend(set.iter().copied());
        }
        out
    }

    /// Postings for an exact (possibly partial-prefix) key, in insertion
    /// order.
    pub(crate) fn point(&self, prefix: &[KeyPart]) -> Vec<Posting> {
        let lo = pad(prefix.to_vec(), self.def.keys.len(), KeyPart::Min);
        let hi = pad(prefix.to_vec(), self.def.keys.len(), KeyPart::Max);
        let mut out = self.range(Bound::Included(lo), Bound::Included(hi));
        out.sort_unstable();
        out
    }
}

/// Pads a partial key out to `len` columns with `fill` (range bounds for
/// prefix lookups).
pub(crate) fn pad(mut parts: Vec<KeyPart>, len: usize, fill: KeyPart) -> Vec<KeyPart> {
    while parts.len() < len {
        parts.push(fill.clone());
    }
    parts
}

/// Every index declared on one collection, by name.
#[derive(Debug, Default)]
pub(crate) struct IndexSet {
    pub(crate) indexes: BTreeMap<String, Index>,
}

impl IndexSet {
    pub(crate) fn get(&self, name: &str) -> Option<&Index> {
        self.indexes.get(name)
    }

    /// Adds a posting for `doc` to every index.
    pub(crate) fn add_doc(&mut self, doc: &Value, posting: Posting) {
        for idx in self.indexes.values_mut() {
            idx.add(doc, posting);
        }
    }

    /// Removes `doc`'s posting from every index.
    pub(crate) fn remove_doc(&mut self, doc: &Value, posting: Posting) {
        for idx in self.indexes.values_mut() {
            idx.remove(doc, posting);
        }
    }

    /// Re-keys a document that changed in place (or moved shards).
    pub(crate) fn update_doc(
        &mut self,
        old_doc: &Value,
        old_posting: Posting,
        new_doc: &Value,
        new_posting: Posting,
    ) {
        for idx in self.indexes.values_mut() {
            idx.remove(old_doc, old_posting);
            idx.add(new_doc, new_posting);
        }
    }

    pub(crate) fn defs(&self) -> Vec<IndexDef> {
        self.indexes.values().map(|i| i.def.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn part(v: Value) -> KeyPart {
        KeyPart::from_value(Some(&v))
    }

    #[test]
    fn type_order_is_total() {
        let ordered = vec![
            KeyPart::Min,
            KeyPart::Null,
            KeyPart::Bool(false),
            KeyPart::Bool(true),
            part(json!(-5)),
            part(json!(1.5)),
            part(json!(2)),
            part(json!("a")),
            part(json!("b")),
            part(json!([1, 2])),
            KeyPart::Max,
        ];
        for (i, a) in ordered.iter().enumerate() {
            for (j, b) in ordered.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn numbers_compare_exactly_above_2_53() {
        // Adjacent u64s that collapse to the same f64.
        let a = part(json!(9_007_199_254_740_993u64));
        let b = part(json!(9_007_199_254_740_992u64));
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_ne!(a, b);
        // Int/float cross-comparison is exact too.
        assert_eq!(part(json!(3)).cmp(&part(json!(3.5))), Ordering::Less);
        assert_eq!(part(json!(4)).cmp(&part(json!(3.5))), Ordering::Greater);
        assert_eq!(part(json!(3)).cmp(&part(json!(3.0))), Ordering::Equal);
    }

    #[test]
    fn missing_field_encodes_as_null() {
        assert_eq!(KeyPart::from_value(None), KeyPart::Null);
        assert_eq!(part(json!(null)), KeyPart::Null);
    }

    #[test]
    fn point_lookup_honors_prefixes() {
        let mut idx = Index::new(IndexDef {
            name: "k".into(),
            keys: vec!["a".into(), "b".into()],
            unique: false,
        });
        idx.add(&json!({"a": "x", "b": 1}), (0, 0));
        idx.add(&json!({"a": "x", "b": 2}), (1, 1));
        idx.add(&json!({"a": "y", "b": 1}), (2, 2));
        assert_eq!(idx.point(&[KeyPart::Str("x".into())]), vec![(0, 0), (1, 1)]);
        assert_eq!(idx.point(&[KeyPart::Str("x".into()), KeyPart::Int(2)]), vec![(1, 1)]);
        assert!(idx.point(&[KeyPart::Str("z".into())]).is_empty());
    }

    #[test]
    fn def_roundtrips_through_json() {
        let def = IndexDef {
            name: "intake".into(),
            keys: vec!["test_id".into(), "contributor_id".into(), "submission_id".into()],
            unique: true,
        };
        assert_eq!(IndexDef::from_json(&def.to_json()), Some(def));
        assert_eq!(IndexDef::from_json(&json!({"name": "x", "keys": []})), None);
    }
}
