//! Mongo-style filter matching over JSON documents.
//!
//! Supported syntax (the subset Kaleidoscope's queries use):
//!
//! * `{field: value}` — deep equality (dotted paths descend into objects).
//! * `{field: {"$gt": v}}` and `$gte`, `$lt`, `$lte`, `$ne`, `$in`,
//!   `$exists`.
//! * `{"$and": [f1, f2]}`, `{"$or": [f1, f2]}`, `{"$not": f}`.
//! * Multiple top-level fields are an implicit `$and`.

use serde_json::Value;
use std::cmp::Ordering;

/// Whether `doc` satisfies `filter`.
///
/// Unknown `$operators` never match (a conservative default: a typo'd query
/// returns nothing rather than everything).
///
/// ```
/// use serde_json::json;
/// let doc = json!({"a": {"b": 3}});
/// assert!(kscope_store::matches_filter(&doc, &json!({"a.b": {"$gt": 2}})));
/// assert!(!kscope_store::matches_filter(&doc, &json!({"a.b": 4})));
/// ```
pub fn matches_filter(doc: &Value, filter: &Value) -> bool {
    let obj = match filter.as_object() {
        Some(o) => o,
        // A non-object filter matches only by equality against the document.
        None => return doc == filter,
    };
    obj.iter().all(|(key, cond)| match key.as_str() {
        "$and" => {
            cond.as_array().map(|fs| fs.iter().all(|f| matches_filter(doc, f))).unwrap_or(false)
        }
        "$or" => {
            cond.as_array().map(|fs| fs.iter().any(|f| matches_filter(doc, f))).unwrap_or(false)
        }
        "$not" => !matches_filter(doc, cond),
        _ => field_matches(lookup_path(doc, key), cond),
    })
}

/// Resolves a dotted path inside a JSON value.
pub fn lookup_path<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for seg in path.split('.') {
        match cur {
            Value::Object(map) => cur = map.get(seg)?,
            Value::Array(items) => {
                let idx: usize = seg.parse().ok()?;
                cur = items.get(idx)?;
            }
            _ => return None,
        }
    }
    Some(cur)
}

/// Sets a dotted path inside a JSON object, creating intermediate objects.
/// Returns false (and leaves the doc unchanged) if a non-object intermediate
/// blocks the path.
pub fn set_path(doc: &mut Value, path: &str, value: Value) -> bool {
    let mut cur = doc;
    let segs: Vec<&str> = path.split('.').collect();
    for (i, seg) in segs.iter().enumerate() {
        let last = i == segs.len() - 1;
        let map = match cur.as_object_mut() {
            Some(m) => m,
            None => return false,
        };
        if last {
            map.insert((*seg).to_string(), value);
            return true;
        }
        cur =
            map.entry((*seg).to_string()).or_insert_with(|| Value::Object(serde_json::Map::new()));
    }
    false
}

fn field_matches(actual: Option<&Value>, cond: &Value) -> bool {
    // Operator object?
    if let Some(ops) = cond.as_object() {
        if ops.keys().any(|k| k.starts_with('$')) {
            return ops.iter().all(|(op, rhs)| apply_op(actual, op, rhs));
        }
    }
    // Plain equality.
    match actual {
        Some(v) => v == cond,
        None => cond.is_null(),
    }
}

fn apply_op(actual: Option<&Value>, op: &str, rhs: &Value) -> bool {
    match op {
        "$exists" => {
            let want = rhs.as_bool().unwrap_or(true);
            actual.is_some() == want
        }
        "$ne" => match actual {
            Some(v) => v != rhs,
            None => !rhs.is_null(),
        },
        "$in" => match (actual, rhs.as_array()) {
            (Some(v), Some(items)) => items.contains(v),
            _ => false,
        },
        "$gt" | "$gte" | "$lt" | "$lte" => {
            let v = match actual {
                Some(v) => v,
                None => return false,
            };
            match compare(v, rhs) {
                Some(ord) => match op {
                    "$gt" => ord == Ordering::Greater,
                    "$gte" => ord != Ordering::Less,
                    "$lt" => ord == Ordering::Less,
                    "$lte" => ord != Ordering::Greater,
                    _ => unreachable!(),
                },
                None => false,
            }
        }
        _ => false,
    }
}

/// Orders two JSON scalars of compatible types.
fn compare(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => {
            Some(cmp_numbers_exact(NumRepr::of(x), NumRepr::of(y)))
        }
        (Value::String(x), Value::String(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// A JSON number classified for exact comparison: any value representable
/// as an integer keeps full precision in an `i128` (covering the whole
/// i64 and u64 ranges); only genuine floats use `f64`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NumRepr {
    /// An exact integer.
    Int(i128),
    /// A genuine float.
    Float(f64),
}

impl NumRepr {
    pub(crate) fn of(n: &serde_json::Number) -> NumRepr {
        if let Some(u) = n.as_u64() {
            NumRepr::Int(i128::from(u))
        } else if let Some(i) = n.as_i64() {
            NumRepr::Int(i128::from(i))
        } else {
            NumRepr::Float(n.as_f64().unwrap_or(0.0))
        }
    }
}

/// Compares two classified numbers *exactly*: integer pairs as i128
/// (coercing `9007199254740993` and `9007199254740992` through f64 would
/// call them equal), and int/float pairs by comparing the float's integer
/// part and fraction separately, which is lossless because truncating an
/// f64 is exact. Only float/float pairs use floating comparison.
pub(crate) fn cmp_numbers_exact(a: NumRepr, b: NumRepr) -> Ordering {
    match (a, b) {
        (NumRepr::Int(x), NumRepr::Int(y)) => x.cmp(&y),
        (NumRepr::Float(x), NumRepr::Float(y)) => x.total_cmp(&y),
        (NumRepr::Int(x), NumRepr::Float(y)) => cmp_int_float(x, y),
        (NumRepr::Float(x), NumRepr::Int(y)) => cmp_int_float(y, x).reverse(),
    }
}

/// Exact ordering of an i128 against an f64 (no i128 → f64 rounding).
fn cmp_int_float(i: i128, f: f64) -> Ordering {
    if f.is_nan() {
        // Unreachable for JSON-derived numbers; order ints below NaN so the
        // relation stays total.
        return Ordering::Less;
    }
    // 2^127 bounds: any float at or beyond them is outside i128's range.
    if f >= 1.7014118346046923e38 {
        return Ordering::Less;
    }
    if f <= -1.7014118346046923e38 {
        return Ordering::Greater;
    }
    let trunc = f.trunc();
    // |trunc| < 2^127, and truncating an f64 is exact, so this cast is too.
    let t = trunc as i128;
    match i.cmp(&t) {
        Ordering::Equal => {
            let frac = f - trunc;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn equality() {
        let doc = json!({"name": "kaleidoscope", "n": 5});
        assert!(matches_filter(&doc, &json!({"name": "kaleidoscope"})));
        assert!(matches_filter(&doc, &json!({"n": 5})));
        assert!(!matches_filter(&doc, &json!({"n": 6})));
        assert!(!matches_filter(&doc, &json!({"missing": 1})));
    }

    #[test]
    fn implicit_and() {
        let doc = json!({"a": 1, "b": 2});
        assert!(matches_filter(&doc, &json!({"a": 1, "b": 2})));
        assert!(!matches_filter(&doc, &json!({"a": 1, "b": 3})));
    }

    #[test]
    fn dotted_paths() {
        let doc = json!({"test": {"id": "t1", "pages": [{"path": "a"}, {"path": "b"}]}});
        assert!(matches_filter(&doc, &json!({"test.id": "t1"})));
        assert!(matches_filter(&doc, &json!({"test.pages.1.path": "b"})));
        assert!(!matches_filter(&doc, &json!({"test.pages.2.path": "c"})));
    }

    #[test]
    fn comparison_operators() {
        let doc = json!({"n": 10, "s": "m"});
        assert!(matches_filter(&doc, &json!({"n": {"$gt": 9}})));
        assert!(matches_filter(&doc, &json!({"n": {"$gte": 10}})));
        assert!(matches_filter(&doc, &json!({"n": {"$lt": 11}})));
        assert!(matches_filter(&doc, &json!({"n": {"$lte": 10}})));
        assert!(!matches_filter(&doc, &json!({"n": {"$gt": 10}})));
        assert!(matches_filter(&doc, &json!({"s": {"$gt": "a", "$lt": "z"}})));
    }

    #[test]
    fn integer_comparisons_are_exact_above_2_53() {
        // 2^53 and 2^53 + 1 collapse to the same f64; comparing through
        // as_f64 called them equal, so $gt missed and $lte lied.
        let doc = json!({"n": 9_007_199_254_740_993u64});
        assert!(matches_filter(&doc, &json!({"n": {"$gt": 9_007_199_254_740_992u64}})));
        assert!(!matches_filter(&doc, &json!({"n": {"$lte": 9_007_199_254_740_992u64}})));
        assert!(matches_filter(&doc, &json!({"n": {"$gte": 9_007_199_254_740_993u64}})));
        // Large negative i64s have the same precision cliff.
        let neg = json!({"n": -9_007_199_254_740_993i64});
        assert!(matches_filter(&neg, &json!({"n": {"$lt": -9_007_199_254_740_992i64}})));
        // u64 values beyond i64::MAX order correctly against small ints.
        let big = json!({"n": u64::MAX});
        assert!(matches_filter(&big, &json!({"n": {"$gt": 1}})));
        assert!(matches_filter(&big, &json!({"n": {"$gt": -1}})));
    }

    #[test]
    fn int_float_comparisons_are_exact() {
        let doc = json!({"n": 9_007_199_254_740_993u64});
        // The float 9007199254740992.0 is exactly representable; the doc's
        // integer is one above it.
        assert!(matches_filter(&doc, &json!({"n": {"$gt": 9_007_199_254_740_992.0}})));
        assert!(matches_filter(&json!({"n": 3}), &json!({"n": {"$lt": 3.5}})));
        assert!(matches_filter(&json!({"n": 4}), &json!({"n": {"$gt": 3.5}})));
        assert!(matches_filter(&json!({"n": 3}), &json!({"n": {"$lte": 3.0}})));
    }

    #[test]
    fn mixed_type_comparison_never_matches() {
        let doc = json!({"n": 10});
        assert!(!matches_filter(&doc, &json!({"n": {"$gt": "9"}})));
    }

    #[test]
    fn ne_in_exists() {
        let doc = json!({"status": "done", "tags": "x"});
        assert!(matches_filter(&doc, &json!({"status": {"$ne": "open"}})));
        assert!(matches_filter(&doc, &json!({"status": {"$in": ["done", "open"]}})));
        assert!(!matches_filter(&doc, &json!({"status": {"$in": ["open"]}})));
        assert!(matches_filter(&doc, &json!({"status": {"$exists": true}})));
        assert!(matches_filter(&doc, &json!({"nope": {"$exists": false}})));
        assert!(!matches_filter(&doc, &json!({"nope": {"$exists": true}})));
        // $ne on a missing field matches (field differs from the value).
        assert!(matches_filter(&doc, &json!({"nope": {"$ne": 5}})));
    }

    #[test]
    fn logical_operators() {
        let doc = json!({"a": 1, "b": 2});
        assert!(matches_filter(&doc, &json!({"$or": [{"a": 9}, {"b": 2}]})));
        assert!(!matches_filter(&doc, &json!({"$or": [{"a": 9}, {"b": 9}]})));
        assert!(matches_filter(&doc, &json!({"$and": [{"a": 1}, {"b": 2}]})));
        assert!(matches_filter(&doc, &json!({"$not": {"a": 9}})));
        assert!(!matches_filter(&doc, &json!({"$not": {"a": 1}})));
    }

    #[test]
    fn unknown_operator_matches_nothing() {
        let doc = json!({"a": 1});
        assert!(!matches_filter(&doc, &json!({"a": {"$regex": "x"}})));
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(matches_filter(&json!({"x": 1}), &json!({})));
    }

    #[test]
    fn null_equality_for_missing_field() {
        assert!(matches_filter(&json!({}), &json!({"gone": null})));
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut doc = json!({});
        assert!(set_path(&mut doc, "a.b.c", json!(7)));
        assert_eq!(doc, json!({"a": {"b": {"c": 7}}}));
        // Blocked by a scalar intermediate.
        let mut doc2 = json!({"a": 3});
        assert!(!set_path(&mut doc2, "a.b", json!(1)));
        assert_eq!(doc2, json!({"a": 3}));
    }

    #[test]
    fn lookup_array_indices() {
        let doc = json!({"xs": [10, 20]});
        assert_eq!(lookup_path(&doc, "xs.0"), Some(&json!(10)));
        assert_eq!(lookup_path(&doc, "xs.5"), None);
        assert_eq!(lookup_path(&doc, "xs.notanum"), None);
    }
}
